//! Edge cases the compound transformation must leave behaviourally
//! intact, proven by the differential verifier: zero-trip loops,
//! single-iteration loops, fusion across loop-independent dependences,
//! and idempotence of the whole pipeline.

use cmt_ir::affine::Affine;
use cmt_ir::build::ProgramBuilder;
use cmt_ir::expr::Expr;
use cmt_ir::pretty::program_to_source;
use cmt_ir::program::Program;
use cmt_locality::{CompoundOptions, CostModel};
use cmt_obs::NullObs;
use cmt_verify::{fingerprint, verify_compound, VerifyOptions};

fn run_verified(program: &mut Program) -> cmt_verify::VerifyReport {
    let (_, v) = verify_compound(
        program,
        &CostModel::new(4),
        &CompoundOptions::default(),
        &VerifyOptions::default(),
        &mut NullObs,
    );
    assert!(
        v.is_clean(),
        "divergences: {:?}",
        v.divergences
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    v
}

/// A zero-trip nest (`DO I = 5, 4`) must survive the pipeline executing
/// zero iterations — no transformation may conjure stores out of it.
#[test]
fn zero_trip_nest_stays_a_no_op() {
    let mut b = ProgramBuilder::new("zerotrip");
    let n = b.param("N");
    let a = b.matrix("A", n);
    let c = b.matrix("C", n);
    // Zero-trip: lower bound above upper bound, positive step.
    b.loop_("I", 5, 4, |b| {
        b.loop_("J", 1, n, |b| {
            let (i, j) = (b.var("I"), b.var("J"));
            let lhs = b.at(a, [i, j]);
            b.assign(lhs, Expr::Const(7.0));
        });
    });
    // A live column-order nest so the driver has something to permute.
    b.loop_("I", 1, n, |b| {
        b.loop_("J", 1, n, |b| {
            let (i, j) = (b.var("I"), b.var("J"));
            let lhs = b.at(c, [i, j]);
            b.assign(lhs, Expr::load(b.at(a, [i, j])));
        });
    });
    let mut p = b.finish();
    let before = fingerprint(&p, &[6]).unwrap();
    assert!(
        !before.stores.is_empty() && before.stores.len() == before.reads.len(),
        "only the copy nest runs; the zero-trip nest contributes nothing"
    );
    run_verified(&mut p);
    let after = fingerprint(&p, &[6]).unwrap();
    assert_eq!(before.arrays, after.arrays);
    assert_eq!(before.stores, after.stores);
}

/// Single-iteration loops (`DO I = 3, 3`) are degenerate but legal:
/// every direction vector entry over them is `=`, so any permutation is
/// legal and the body must run exactly once.
#[test]
fn single_iteration_loops_run_exactly_once() {
    let mut b = ProgramBuilder::new("once");
    let n = b.param("N");
    let a = b.matrix("A", n);
    b.loop_("I", 3, 3, |b| {
        b.loop_("J", 1, n, |b| {
            let (i, j) = (b.var("I"), b.var("J"));
            let lhs = b.at(a, [i, j]);
            let rhs =
                Expr::load(b.at_vec(a, vec![Affine::var(i), Affine::var(j)])) + Expr::Const(1.0);
            b.assign(lhs, rhs);
        });
    });
    let mut p = b.finish();
    let before = fingerprint(&p, &[6]).unwrap();
    assert_eq!(before.stores.len(), 6, "one row of A, N=6 elements");
    run_verified(&mut p);
    let after = fingerprint(&p, &[6]).unwrap();
    assert_eq!(before.arrays, after.arrays);
}

/// Two conformable nests linked by a loop-independent flow dependence
/// (`B(I)` reads `A(I)` written at the same iteration) fuse legally;
/// the verifier holds the fusion step to the same differential
/// contract as any other.
#[test]
fn fusion_across_loop_independent_dependence_is_verified() {
    let mut b = ProgramBuilder::new("fuseli");
    let n = b.param("N");
    let a = b.array("A", vec![n.into()]);
    let c = b.array("B", vec![n.into()]);
    b.loop_("I", 1, n, |b| {
        let i = b.var("I");
        let lhs = b.at(a, [i]);
        b.assign(lhs, Expr::Const(2.0));
    });
    b.loop_("I", 1, n, |b| {
        let i = b.var("I");
        let lhs = b.at(c, [i]);
        b.assign(lhs, Expr::load(b.at(a, [i])) + Expr::Const(1.0));
    });
    let mut p = b.finish();
    let v = run_verified(&mut p);
    assert_eq!(p.nests().len(), 1, "the two nests should have fused");
    assert!(
        v.steps_checked >= 1,
        "the fusion rewrite must have passed through the verifier"
    );
}

/// The compound algorithm is idempotent: a second run over its own
/// output applies nothing (and therefore the verifier sees zero steps).
#[test]
fn compound_is_idempotent_on_its_own_output() {
    // Use a shape that triggers several passes on the first run.
    let mut p = cmt_verify::generate(9);
    run_verified(&mut p);
    let settled = program_to_source(&p);
    let v2 = run_verified(&mut p);
    assert_eq!(
        v2.steps_checked, 0,
        "second run must not apply (or re-verify) any step"
    );
    assert_eq!(
        program_to_source(&p),
        settled,
        "second run must leave the program untouched"
    );
}
