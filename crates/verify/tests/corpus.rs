//! The tentpole acceptance tests: the full committed corpus verifies
//! cleanly, and a deliberately illegal transformation step is caught
//! and dumped as a minimized reproducer artifact.

use cmt_ir::affine::Affine;
use cmt_ir::build::ProgramBuilder;
use cmt_ir::expr::Expr;
use cmt_ir::program::Program;
use cmt_locality::permute::interchange_adjacent;
use cmt_verify::{
    corpus_seeds, run_corpus, write_reproducer, DiffVerifier, DivergenceKind, VerifyOptions,
};

/// All ≥200 corpus seeds run the generator + compound driver +
/// per-step differential checks with zero divergences.
#[test]
fn full_corpus_has_zero_divergences() {
    let seeds = corpus_seeds();
    assert!(seeds.len() >= 200);
    let report = run_corpus(&seeds, &VerifyOptions::default());
    assert_eq!(report.programs, seeds.len());
    assert!(
        report.steps_checked > 0,
        "corpus exercised no transformation steps at all"
    );
    let shown: Vec<String> = report
        .divergences
        .iter()
        .take(5)
        .map(|(s, d)| format!("seed {s}: {d}"))
        .collect();
    assert!(
        report.divergences.is_empty(),
        "{} divergence(s), first: {:?}",
        report.divergences.len(),
        shown
    );
}

/// `A(I,J) = A(I-1,J+1) + 1`: dependence vector `(1,-1)`, so the I/J
/// interchange is illegal — the verifier must refuse it.
fn skewed_dep() -> Program {
    let mut b = ProgramBuilder::new("skew");
    let n = b.param("N");
    let a = b.matrix("A", n);
    b.loop_("I", 2, Affine::param(n) - 1, |b| {
        b.loop_("J", 2, Affine::param(n) - 1, |b| {
            let (i, j) = (b.var("I"), b.var("J"));
            let lhs = b.at(a, [i, j]);
            let rhs = Expr::load(b.at_vec(a, vec![Affine::var(i) - 1, Affine::var(j) + 1]))
                + Expr::Const(1.0);
            b.assign(lhs, rhs);
        });
    });
    b.finish()
}

/// Injects an illegal interchange as a hand-built provenance step (the
/// real driver would never apply it — that's the point of the test) and
/// checks the verifier catches it and the reproducer artifact is
/// written with everything needed to replay.
#[test]
fn injected_illegal_permutation_is_caught_with_reproducer() {
    let before = skewed_dep();
    let mut after = before.clone();
    interchange_adjacent(after.body_mut()[0].as_loop_mut().unwrap(), 0).unwrap();

    let mut v = DiffVerifier::new(VerifyOptions::default());
    v.check_step("permute", 0, &[], &before, &after);
    assert_eq!(v.report.divergences.len(), 1, "must catch the bad step");
    let div = &v.report.divergences[0];
    assert!(
        matches!(div.kind, DivergenceKind::IllegalPermutation { .. }),
        "static legality check should fire first, got: {}",
        div.kind
    );

    let dir = std::env::temp_dir().join("cmt-verify-test-repro");
    let _ = std::fs::remove_dir_all(&dir);
    let path = write_reproducer(&dir, 999_001, &before, div).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("seed: 999001"), "{text}");
    assert!(text.contains("illegal permutation"), "{text}");
    assert!(text.contains("== IR before permute step =="), "{text}");
    assert!(text.contains("== IR after permute step =="), "{text}");
    // Both snapshots are dumped as re-parseable source.
    assert_eq!(text.matches("PROGRAM skew").count(), 3, "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Even with the static legality check disabled, the differential
/// execution alone rejects the illegal interchange (array values
/// change), so the two detection layers are genuinely independent.
#[test]
fn differential_execution_alone_catches_the_illegal_interchange() {
    let before = skewed_dep();
    let mut after = before.clone();
    interchange_adjacent(after.body_mut()[0].as_loop_mut().unwrap(), 0).unwrap();

    let mut v = DiffVerifier::new(VerifyOptions {
        check_legality: false,
        ..VerifyOptions::default()
    });
    v.check_step("permute", 0, &[], &before, &after);
    assert_eq!(v.report.divergences.len(), 1);
    assert!(
        matches!(
            v.report.divergences[0].kind,
            DivergenceKind::ArrayState { .. }
        ),
        "got: {}",
        v.report.divergences[0].kind
    );
}
