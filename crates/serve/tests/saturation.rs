//! Saturating replay: the full 256-seed corpus with fault seeds, a
//! deliberately tiny admission queue, and aggressive degradation,
//! hammered by concurrent clients. Every single request must come back
//! as a structured reply — `ok`, `overloaded`, or `error` — and the
//! process must never abort.

use cmt_obs::json::{self, Value};
use cmt_serve::{ServeConfig, Server};
use std::sync::Arc;

fn quote(s: &str) -> String {
    let mut out = String::from("\"");
    json::escape_into(&mut out, s);
    out.push('"');
    out
}

#[test]
fn saturating_fault_injected_replay_never_aborts() {
    let server = Server::start(ServeConfig {
        workers: 4,
        queue_capacity: 8,
        degrade_depth: 2,
        memo_capacity: 64,
        ..ServeConfig::default()
    });
    let seeds = cmt_verify::corpus_seeds();
    let clients = 8usize;
    let mut handles = Vec::new();
    for c in 0..clients {
        let chunk: Vec<u64> = seeds.iter().skip(c).step_by(clients).copied().collect();
        let srv = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let mut statuses = Vec::new();
            for seed in chunk {
                let program = cmt_ir::pretty::program_to_source(&cmt_verify::generate(seed));
                let line = format!(
                    "{{\"id\":{seed},\"program\":{},\"n\":8,\"fault_seed\":{seed}}}",
                    quote(&program)
                );
                let reply = srv.handle_line(&line);
                let v = json::parse(&reply).expect("every reply is valid JSON");
                let status = v
                    .get("status")
                    .and_then(Value::as_str)
                    .expect("every reply carries a status")
                    .to_string();
                statuses.push(status);
            }
            statuses
        }));
    }
    let mut counts = std::collections::BTreeMap::new();
    for h in handles {
        for status in h.join().expect("client thread finished") {
            *counts.entry(status).or_insert(0u64) += 1;
        }
    }
    let total: u64 = counts.values().sum();
    assert_eq!(total, seeds.len() as u64, "{counts:?}");
    for status in counts.keys() {
        assert!(
            ["ok", "overloaded", "error"].contains(&status.as_str()),
            "unexpected status {status}"
        );
    }
    // Under saturation most requests still succeed, and no request is
    // ever allowed to take a worker down.
    assert!(counts.get("ok").copied().unwrap_or(0) > 0, "{counts:?}");
    assert_eq!(server.obs().counter_value("server.panics"), 0);
    server.shutdown();
}
