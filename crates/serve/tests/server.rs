//! Behavior tests for the compile server: memoization, the degradation
//! ladder, backpressure, panic containment, drain-on-shutdown, and the
//! TCP front end.

use cmt_obs::json::{self, Value};
use cmt_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

fn source(seed: u64) -> String {
    cmt_ir::pretty::program_to_source(&cmt_verify::generate(seed))
}

fn compile_line(id: u64, program: &str, extra: &str) -> String {
    let mut w = json::ObjectWriter::new();
    w.field_u64("id", id).field_str("program", program);
    let line = w.finish();
    if extra.is_empty() {
        line
    } else {
        format!("{},{extra}}}", &line[..line.len() - 1])
    }
}

fn field<'a>(v: &'a Value, k: &str) -> &'a str {
    v.get(k).and_then(Value::as_str).unwrap_or("")
}

fn temp_obs_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cmt-serve-test-{}-{tag}", std::process::id()))
}

#[test]
fn cold_then_cached_and_stats_counters() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let line = compile_line(1, &source(3), "\"n\":8");
    let first = json::parse(&server.handle_line(&line)).expect("valid json");
    assert_eq!(field(&first, "status"), "ok");
    assert_eq!(field(&first, "fidelity"), "simulated");
    assert_eq!(first.get("id").and_then(Value::as_u64), Some(1));
    assert!(!field(&first, "key").is_empty());

    let second = json::parse(&server.handle_line(&line)).expect("valid json");
    assert_eq!(field(&second, "status"), "ok");
    assert_eq!(field(&second, "fidelity"), "cached");
    // The cached reply reproduces the original computation's numbers.
    assert_eq!(
        first.get("misses").and_then(Value::as_u64),
        second.get("misses").and_then(Value::as_u64)
    );

    let stats = json::parse(&server.handle_line(r#"{"op":"stats","id":9}"#)).expect("valid json");
    assert_eq!(field(&stats, "op"), "stats");
    let memo = stats.get("memo").expect("memo object");
    assert_eq!(memo.get("hits").and_then(Value::as_u64), Some(1));
    assert_eq!(memo.get("misses").and_then(Value::as_u64), Some(1));

    let pong = json::parse(&server.handle_line(r#"{"op":"ping"}"#)).expect("valid json");
    assert_eq!(field(&pong, "op"), "pong");
    server.shutdown();
}

#[test]
fn malformed_and_oversized_lines_get_structured_errors() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    for bad in [
        "{",
        "42",
        r#"{"id":1}"#,
        r#"{"program":7}"#,
        r#"{"op":"nope"}"#,
    ] {
        let v = json::parse(&server.handle_line(bad)).expect("valid json");
        assert_eq!(field(&v, "status"), "error", "for {bad}");
    }
    let huge = format!(
        r#"{{"program":"{}"}}"#,
        "x".repeat(cmt_serve::MAX_LINE_BYTES)
    );
    let v = json::parse(&server.handle_line(&huge)).expect("valid json");
    assert_eq!(field(&v, "status"), "error");
    // A bad n and an unparseable program are structured errors too.
    let v =
        json::parse(&server.handle_line(r#"{"id":2,"program":"PROGRAM x\nDO I = 1, N","n":8}"#))
            .expect("valid json");
    assert_eq!(field(&v, "status"), "error");
    assert!(field(&v, "error").contains("parse"), "{v:?}");
    server.shutdown();
}

#[test]
fn panicking_request_is_contained_and_quarantined() {
    let dir = temp_obs_dir("panic");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        workers: 2,
        chaos_ops: true,
        obs_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let v = json::parse(&server.handle_line(r#"{"op":"panic","id":5}"#)).expect("valid json");
    assert_eq!(field(&v, "status"), "error");
    assert!(field(&v, "error").contains("panic"), "{v:?}");

    // The server keeps serving after the panic.
    let ok = json::parse(&server.handle_line(&compile_line(6, &source(4), "\"n\":8")))
        .expect("valid json");
    assert_eq!(field(&ok, "status"), "ok");
    assert_eq!(server.obs().counter_value("server.panics"), 1);

    // The poisoned request left a reproducer.
    let quarantine = dir.join("quarantine");
    let entries: Vec<_> = std::fs::read_dir(&quarantine)
        .expect("quarantine dir exists")
        .filter_map(Result::ok)
        .collect();
    assert_eq!(entries.len(), 1);
    let body = std::fs::read_to_string(entries[0].path()).expect("readable");
    assert!(body.contains(r#""op":"panic""#), "{body}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_with_explicit_backpressure() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        chaos_ops: true,
        ..ServeConfig::default()
    });
    // Occupy the single worker, then fill the single queue slot.
    let occupy = {
        let srv = Arc::clone(&server);
        std::thread::spawn(move || srv.handle_line(r#"{"op":"sleep","ms":400,"id":1}"#))
    };
    std::thread::sleep(Duration::from_millis(100));
    let fill = {
        let srv = Arc::clone(&server);
        std::thread::spawn(move || srv.handle_line(r#"{"op":"sleep","ms":50,"id":2}"#))
    };
    std::thread::sleep(Duration::from_millis(100));
    let v = json::parse(&server.handle_line(&compile_line(3, &source(5), ""))).expect("valid json");
    assert_eq!(field(&v, "status"), "overloaded", "{v:?}");
    assert_eq!(field(&v, "reason"), "queue full");
    assert_eq!(v.get("limit").and_then(Value::as_u64), Some(1));
    assert!(server.obs().counter_value("server.shed") >= 1);
    for h in [occupy, fill] {
        let v = json::parse(&h.join().expect("thread ok")).expect("valid json");
        assert_eq!(field(&v, "status"), "ok");
    }
    server.shutdown();
}

#[test]
fn drain_finishes_in_flight_and_refuses_new_work() {
    let server = Server::start(ServeConfig {
        workers: 1,
        chaos_ops: true,
        ..ServeConfig::default()
    });
    let in_flight = {
        let srv = Arc::clone(&server);
        std::thread::spawn(move || srv.handle_line(r#"{"op":"sleep","ms":300,"id":1}"#))
    };
    std::thread::sleep(Duration::from_millis(100));
    let ack = json::parse(&server.handle_line(r#"{"op":"shutdown","id":2}"#)).expect("valid json");
    assert_eq!(field(&ack, "op"), "draining");
    assert!(!server.accepting());
    // New work is refused with a structured overload reply...
    let refused =
        json::parse(&server.handle_line(&compile_line(3, &source(6), ""))).expect("valid json");
    assert_eq!(field(&refused, "status"), "overloaded");
    assert_eq!(field(&refused, "reason"), "draining");
    // ...while the in-flight request still completes.
    let v = json::parse(&in_flight.join().expect("thread ok")).expect("valid json");
    assert_eq!(field(&v, "status"), "ok");
    server.shutdown();
}

#[test]
fn pressure_and_spent_deadlines_degrade_to_analytic() {
    // degrade_depth 0: every cold request sees pressure and takes the
    // analytic rung — deterministically.
    let server = Server::start(ServeConfig {
        workers: 1,
        degrade_depth: 0,
        ..ServeConfig::default()
    });
    let v = json::parse(&server.handle_line(&compile_line(1, &source(7), "\"n\":8")))
        .expect("valid json");
    assert_eq!(field(&v, "status"), "ok");
    assert_eq!(field(&v, "fidelity"), "analytic", "{v:?}");
    server.shutdown();

    // deadline_ms 0 is an already-expired budget: the supervised
    // pipeline degrades (rolls back) and the answer falls back to the
    // analytic rung — also deterministically.
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let v =
        json::parse(&server.handle_line(&compile_line(2, &source(7), "\"n\":8,\"deadline_ms\":0")))
            .expect("valid json");
    assert_eq!(field(&v, "status"), "ok");
    assert_eq!(field(&v, "fidelity"), "analytic", "{v:?}");
    assert_eq!(v.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("steps").and_then(Value::as_u64), Some(0));
    server.shutdown();
}

#[test]
fn memo_capacity_bound_evicts_lru() {
    let server = Server::start(ServeConfig {
        workers: 1,
        memo_capacity: 2,
        ..ServeConfig::default()
    });
    for seed in [10, 11, 12] {
        let v = json::parse(&server.handle_line(&compile_line(seed, &source(seed), "\"n\":8")))
            .expect("valid json");
        assert_eq!(field(&v, "fidelity"), "simulated");
    }
    // Seed 10 was evicted (capacity 2), so it recomputes; 12 is warm.
    let v = json::parse(&server.handle_line(&compile_line(20, &source(10), "\"n\":8")))
        .expect("valid json");
    assert_eq!(field(&v, "fidelity"), "simulated", "{v:?}");
    let v = json::parse(&server.handle_line(&compile_line(21, &source(12), "\"n\":8")))
        .expect("valid json");
    assert_eq!(field(&v, "fidelity"), "cached", "{v:?}");
    let stats = server.memo_stats();
    assert_eq!(stats.entries, 2);
    assert!(stats.evictions >= 2, "{stats:?}");
    server.shutdown();
}

#[test]
fn fault_injected_requests_still_answer_structurally() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    for seed in 0..8u64 {
        let line = compile_line(
            seed,
            &source(seed),
            &format!("\"n\":8,\"fault_seed\":{seed}"),
        );
        let v = json::parse(&server.handle_line(&line)).expect("valid json");
        let status = field(&v, "status");
        assert!(status == "ok" || status == "error", "{v:?}");
    }
    server.shutdown();
}

#[test]
fn tcp_round_trip_and_oversized_line_cutoff() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let acceptor = {
        let srv = Arc::clone(&server);
        std::thread::spawn(move || srv.listen(listener))
    };

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();

    writer
        .write_all((compile_line(1, &source(9), "\"n\":8") + "\n").as_bytes())
        .expect("send");
    reader.read_line(&mut reply).expect("recv");
    let v = json::parse(reply.trim()).expect("valid json");
    assert_eq!(field(&v, "status"), "ok");
    assert_eq!(field(&v, "fidelity"), "simulated");

    // Same request over a second connection: served from the memo.
    let stream2 = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer2 = stream2.try_clone().expect("clone");
    let mut reader2 = BufReader::new(stream2);
    writer2
        .write_all((compile_line(2, &source(9), "\"n\":8") + "\n").as_bytes())
        .expect("send");
    reply.clear();
    reader2.read_line(&mut reply).expect("recv");
    let v = json::parse(reply.trim()).expect("valid json");
    assert_eq!(field(&v, "fidelity"), "cached");

    // An unterminated line past the bound gets an error reply and the
    // connection is cut — server memory stays bounded.
    let stream3 = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer3 = stream3.try_clone().expect("clone");
    let mut reader3 = BufReader::new(stream3);
    let chunk = vec![b'x'; cmt_serve::MAX_LINE_BYTES + 64];
    writer3.write_all(&chunk).expect("send");
    writer3.flush().expect("flush");
    reply.clear();
    reader3.read_line(&mut reply).expect("recv");
    let v = json::parse(reply.trim()).expect("valid json");
    assert_eq!(field(&v, "status"), "error");
    assert!(field(&v, "error").contains("too long"), "{v:?}");
    reply.clear();
    assert_eq!(reader3.read_line(&mut reply).expect("eof"), 0);

    server.begin_shutdown();
    acceptor.join().expect("acceptor ok").expect("listen ok");
    server.shutdown();
}

#[test]
fn artifact_flush_writes_server_counters() {
    let dir = temp_obs_dir("flush");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        workers: 1,
        obs_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let line = compile_line(1, &source(13), "\"n\":8");
    server.handle_line(&line);
    server.handle_line(&line);
    server.shutdown();
    server.flush_artifacts("serve").expect("flush");
    let metrics = std::fs::read_to_string(dir.join("serve.metrics.json")).expect("metrics");
    let v = json::parse(&metrics).expect("valid json");
    let counters = v.get("counters").expect("counters");
    assert_eq!(
        counters.get("server.requests").and_then(Value::as_u64),
        Some(2)
    );
    assert_eq!(
        counters.get("server.memo.hits").and_then(Value::as_u64),
        Some(1)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
