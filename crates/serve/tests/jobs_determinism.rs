//! Worker-count independence: the same two-pass request schedule must
//! yield byte-identical per-request replies and identical memo-cache
//! statistics whether the server runs 1 worker or 4. Single-flight
//! admission makes hits/misses schedule-independent; answers are pure
//! functions of (program, n, fault seed).
//!
//! This file owns the `CMT_JOBS` environment variable — integration
//! tests run as separate processes, so setting it here cannot race
//! with other tests.

use cmt_serve::{MemoStats, ServeConfig, Server};
use std::collections::BTreeMap;
use std::sync::Arc;

fn schedule() -> Vec<(u64, String)> {
    // Pass 1: sixteen distinct programs, some with fault seeds.
    // Pass 2: the same sixteen again under fresh ids — all cache hits.
    let mut lines = Vec::new();
    for pass in 0..2u64 {
        for (k, seed) in (40..56u64).enumerate() {
            let id = (pass << 16) | k as u64;
            let program = cmt_ir::pretty::program_to_source(&cmt_verify::generate(seed));
            let fault = if k % 3 == 0 {
                format!(",\"fault_seed\":{seed}")
            } else {
                String::new()
            };
            lines.push((
                id,
                format!(
                    "{{\"id\":{id},\"program\":{},\"n\":8{fault}}}",
                    quote(&program)
                ),
            ));
        }
    }
    lines
}

fn quote(s: &str) -> String {
    let mut out = String::from("\"");
    cmt_obs::json::escape_into(&mut out, s);
    out.push('"');
    out
}

/// Runs the schedule with `clients` concurrent submitters against a
/// server with `workers` workers; returns replies keyed by request id
/// plus the final memo statistics.
fn run(workers: usize, clients: usize) -> (BTreeMap<u64, String>, MemoStats) {
    let server = Server::start(ServeConfig {
        workers,
        ..ServeConfig::default()
    });
    let all = schedule();
    let (pass1, pass2): (Vec<_>, Vec<_>) = all.into_iter().partition(|(id, _)| id >> 16 == 0);
    let mut replies = BTreeMap::new();
    for pass in [pass1, pass2] {
        let mut handles = Vec::new();
        for c in 0..clients {
            let chunk: Vec<(u64, String)> = pass.iter().skip(c).step_by(clients).cloned().collect();
            let srv = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                chunk
                    .into_iter()
                    .map(|(id, line)| (id, srv.handle_line(&line)))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            replies.extend(h.join().expect("client thread ok"));
        }
    }
    let stats = server.memo_stats();
    server.shutdown();
    (replies, stats)
}

#[test]
fn replies_and_memo_stats_identical_across_worker_counts() {
    std::env::set_var("CMT_JOBS", "4");
    let (serial, serial_stats) = run(1, 1);
    let (parallel, parallel_stats) = run(4, 4);
    assert_eq!(serial.len(), 32);
    assert_eq!(parallel.len(), 32);
    for (id, reply) in &serial {
        assert_eq!(
            Some(reply),
            parallel.get(id),
            "reply for request {id} differs between 1 and 4 workers"
        );
    }
    assert_eq!(serial_stats, parallel_stats, "memo stats diverged");
    // Sanity on the shape: 16 distinct programs, each computed once,
    // each hit at least once on the second pass.
    assert_eq!(serial_stats.misses, 16);
    assert_eq!(serial_stats.inserted, 16);
    assert!(serial_stats.hits >= 16, "{serial_stats:?}");
}
