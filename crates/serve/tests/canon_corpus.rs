//! Property tests for the canonical structural hash ([`cmt_ir::canon`])
//! over the full 256-seed verification corpus plus the paper kernels:
//! the memo cache is only sound if renaming and re-serialization
//! preserve keys while structurally distinct programs never collide.

use cmt_ir::canon::{canonical_source, nest_key};
use cmt_ir::parse::parse_program;
use cmt_ir::pretty::program_to_source;
use cmt_ir::program::Program;
use cmt_verify::{corpus_seeds, generate};
use std::collections::HashMap;

fn corpus() -> Vec<Program> {
    let mut programs: Vec<Program> = corpus_seeds().into_iter().map(generate).collect();
    programs.extend(cmt_suite::kernels::paper_kernels());
    programs
}

const KEYWORDS: [&str; 9] = [
    "PROGRAM", "PARAM", "REAL", "DO", "ENDDO", "SQRT", "ABS", "MIN", "MAX",
];

/// Rewrites every identifier in a program source to a fresh name
/// (`W0`, `W1`, …) with a consistent mapping. Loop variables, arrays,
/// parameters, and the program name all get renamed — none of them may
/// influence the structural key.
fn alpha_rename(source: &str) -> String {
    let mut mapping: HashMap<String, String> = HashMap::new();
    let mut out = String::new();
    let mut word = String::new();
    let mut flush = |word: &mut String, out: &mut String, mapping: &mut HashMap<String, String>| {
        if word.is_empty() {
            return;
        }
        let is_ident = word.chars().next().is_some_and(|c| c.is_ascii_alphabetic());
        if is_ident && !KEYWORDS.contains(&word.as_str()) {
            let next = format!("W{}", mapping.len());
            out.push_str(mapping.entry(word.clone()).or_insert(next));
        } else {
            out.push_str(word);
        }
        word.clear();
    };
    for ch in source.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            word.push(ch);
        } else {
            flush(&mut word, &mut out, &mut mapping);
            out.push(ch);
        }
    }
    flush(&mut word, &mut out, &mut mapping);
    out
}

/// Splits the array list of a `REAL` declaration line on top-level
/// commas (commas inside extent parentheses don't count).
fn split_arrays(list: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in list.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Re-emits the source with the array declarations reversed, one
/// `REAL` line per array.
fn reorder_declarations(source: &str) -> String {
    let mut arrays: Vec<String> = Vec::new();
    let mut body: Vec<String> = Vec::new();
    for line in source.lines() {
        let trimmed = line.trim_start();
        if let Some(list) = trimmed.strip_prefix("REAL ") {
            arrays.extend(split_arrays(list));
        } else {
            body.push(line.to_string());
        }
    }
    arrays.reverse();
    // Re-insert after the header and PARAM lines (array extents may
    // reference parameters) but before the body.
    let insert_at = body
        .iter()
        .rposition(|l| {
            let t = l.trim_start();
            t.starts_with("PROGRAM") || t.starts_with("PARAM")
        })
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut out = body;
    for a in arrays {
        out.insert(insert_at, format!("REAL {a}"));
    }
    out.join("\n")
}

#[test]
fn alpha_renaming_preserves_keys_corpus_wide() {
    for p in corpus() {
        let source = program_to_source(&p);
        let renamed = parse_program(&alpha_rename(&source))
            .unwrap_or_else(|e| panic!("renamed {} does not parse: {e}\n{source}", p.name()));
        assert_eq!(
            nest_key(&p),
            nest_key(&renamed),
            "alpha-renaming changed the key of {}",
            p.name()
        );
    }
}

#[test]
fn array_declaration_order_does_not_affect_keys() {
    for p in corpus() {
        let source = program_to_source(&p);
        let reordered = parse_program(&reorder_declarations(&source))
            .unwrap_or_else(|e| panic!("reordered {} does not parse: {e}\n{source}", p.name()));
        assert_eq!(
            nest_key(&p),
            nest_key(&reordered),
            "declaration order changed the key of {}",
            p.name()
        );
    }
}

#[test]
fn reserialization_round_trip_preserves_keys() {
    for p in corpus() {
        let round = parse_program(&program_to_source(&p))
            .unwrap_or_else(|e| panic!("{} does not round-trip: {e}", p.name()));
        assert_eq!(
            nest_key(&p),
            nest_key(&round),
            "pretty/parse round trip changed the key of {}",
            p.name()
        );
        assert_eq!(canonical_source(&p), canonical_source(&round));
    }
}

#[test]
fn distinct_structures_never_collide_across_the_corpus() {
    // Equal keys must imply equal canonical renderings: a collision
    // between structurally distinct programs would silently answer one
    // request with another's result.
    let mut by_key: HashMap<[u64; 2], (String, String)> = HashMap::new();
    let mut distinct = 0usize;
    for p in corpus() {
        let key = nest_key(&p).0;
        let canon = canonical_source(&p);
        match by_key.get(&key) {
            Some((seen_canon, seen_name)) => assert_eq!(
                seen_canon,
                &canon,
                "key collision between {} and {}",
                seen_name,
                p.name()
            ),
            None => {
                distinct += 1;
                by_key.insert(key, (canon, p.name().to_string()));
            }
        }
    }
    // Sanity: the corpus is not degenerate — nearly every program is
    // structurally distinct.
    assert!(distinct > 250, "only {distinct} distinct keys");
}
