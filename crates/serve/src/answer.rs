//! The cold path: one supervised optimization run plus a cache-cost
//! evaluation at the requested fidelity.
//!
//! The ladder has two cold rungs. Off-pressure, the transformed program
//! is executed through the set-sharded cache simulator (measured
//! misses). Under pressure — admission depth past the degrade mark, or
//! the request's deadline already spent — the server folds the analytic
//! miss model instead, a microsecond-scale evaluation that keeps
//! latency bounded while staying on the same cache geometry
//! (`rs6000`), so `miss_rate` is comparable across fidelities.

use crate::protocol::{Answer, CompileRequest, Fidelity};
use cmt_analytic::{predict_program, MissModel};
use cmt_cache::{CacheConfig, ShardedCache};
use cmt_interp::{Machine, TraceSink};
use cmt_ir::canon::nest_key;
use cmt_ir::ids::ArrayId;
use cmt_ir::parse::parse_program;
use cmt_ir::program::Program;
use cmt_locality::model::CostModel;
use cmt_obs::{CollectSink, ObsSink};
use cmt_resilience::{
    supervise, Deadline, FaultPlan, PipelineSpec, SupervisePolicy, SupervisedRun,
};
use cmt_verify::VerifyMode;
use std::time::Duration;

struct Into2<'a> {
    caches: &'a mut [ShardedCache; 2],
}

impl TraceSink for Into2<'_> {
    fn access(&mut self, addr: u64, is_write: bool) {
        self.caches[0].access(addr, is_write);
        self.caches[1].access(addr, is_write);
    }

    fn access_batch(&mut self, batch: &[u64]) {
        self.caches[0].access_batch(batch);
        self.caches[1].access_batch(batch);
    }
}

/// Simulates every access of `program` at size `n` through the paper's
/// primary geometry (`rs6000`; the secondary `i860` stream feeds the
/// same sink so counters stay comparable with the bench harness).
/// Execution failures (e.g. out-of-bounds at this `n`) are structured
/// errors, never panics.
pub fn simulate(program: &Program, n: i64) -> Result<(u64, u64), String> {
    let params = vec![n; program.params().len()];
    let mut m = Machine::new(program, &params).map_err(|e| format!("allocation: {e}"))?;
    let mut caches = [
        ShardedCache::new(CacheConfig::rs6000()),
        ShardedCache::new(CacheConfig::i860()),
    ];
    for (k, _) in program.arrays().iter().enumerate() {
        let id = ArrayId(k as u32);
        let start = m.storage(id).address_of(0);
        let bytes = m.array_data(id).len() as u64 * 8;
        for c in &mut caches {
            c.reserve_region(start, bytes);
        }
    }
    let mut sink = Into2 {
        caches: &mut caches,
    };
    m.run(program, &mut sink)
        .map_err(|e| format!("execution: {e}"))?;
    let stats = caches[0].stats();
    Ok((stats.accesses, stats.misses))
}

/// Folds the analytic miss model over `program` at size `n` on the same
/// geometry the simulator reports.
pub fn analytic_fold(program: &Program, n: i64, obs: &mut dyn ObsSink) -> (u64, u64) {
    let model = MissModel::new(CacheConfig::rs6000());
    let preds = predict_program(program, n, &model, obs);
    let (mut accesses, mut misses) = (0u64, 0u64);
    for p in &preds {
        accesses += p.stats.accesses;
        misses += p.stats.misses;
    }
    (accesses, misses)
}

/// Everything [`compute_cold`] decided and produced, for counter
/// accounting by the server.
pub struct ColdOutcome {
    /// The final answer.
    pub answer: Answer,
    /// The supervised run (degradation detail for remarks/counters).
    pub run: SupervisedRun,
}

/// Runs the full cold path for one parsed request: supervised
/// optimization under the request's deadline and fault plan, then the
/// fidelity-appropriate cost evaluation. `pressure` selects the
/// analytic rung up front; an expired deadline after the supervised
/// stage also degrades to analytic (never skipping the answer).
pub fn compute_cold(
    req: &CompileRequest,
    program: &Program,
    n: i64,
    default_deadline_ms: u64,
    pressure: bool,
    obs: &mut CollectSink,
) -> Result<ColdOutcome, String> {
    let deadline_ms = req.deadline_ms.or(if default_deadline_ms > 0 {
        Some(default_deadline_ms)
    } else {
        None
    });
    let deadline = deadline_ms.map(|ms| Deadline::after(Duration::from_millis(ms)));
    let policy = SupervisePolicy {
        deadline,
        ..Default::default()
    };
    let mut faults = match req.fault_seed {
        Some(seed) => FaultPlan::seeded(seed),
        None => FaultPlan::none(),
    };
    let mut optimized = program.clone();
    let model = CostModel::new(CacheConfig::rs6000().cls_elements());
    let run = supervise(
        &mut optimized,
        &model,
        &PipelineSpec::default(),
        &VerifyMode::Off,
        &policy,
        &mut faults,
        obs,
    );

    let deadline_spent = deadline.map(|d| d.expired()).unwrap_or(false);
    let (fidelity, accesses, misses) = if pressure || deadline_spent {
        let (a, m) = analytic_fold(&optimized, n, obs);
        (Fidelity::Analytic, a, m)
    } else {
        let (a, m) = simulate(&optimized, n)?;
        (Fidelity::Simulated, a, m)
    };

    let answer = Answer {
        key: nest_key(program).to_hex(),
        n,
        computed: fidelity,
        degraded: run.degraded(),
        failures: run.failures.len() as u64,
        steps: run.steps_committed as u64,
        accesses,
        misses,
    };
    Ok(ColdOutcome { answer, run })
}

/// Parses the request's program source; the error string carries the
/// parser's line-numbered message.
pub fn parse_request_program(req: &CompileRequest) -> Result<Program, String> {
    parse_program(&req.program).map_err(|e| format!("parse: {e}"))
}
