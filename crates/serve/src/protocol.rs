//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, always in
//! order. Two request shapes share the stream:
//!
//! * **compile requests** — `{"id":1,"program":"PROGRAM …","n":64,
//!   "deadline_ms":500,"fault_seed":7}`. `program` is loop-nest IR in
//!   the `cmt_ir::parse` surface syntax (what
//!   [`cmt_ir::pretty::program_to_source`] emits); everything but
//!   `program` is optional.
//! * **admin ops** — `{"op":"ping"}`, `{"op":"stats"}`,
//!   `{"op":"shutdown"}`; plus the chaos ops `{"op":"panic"}` and
//!   `{"op":"sleep","ms":25}` which exist only when the server was
//!   started with [`crate::ServeConfig::chaos_ops`] (fault-injection
//!   surface for tests and the load harness).
//!
//! Every response carries a `status` of `ok`, `overloaded`, or
//! `error`; `ok` compile responses carry a `fidelity` of `cached`,
//! `simulated`, or `analytic` (the degradation ladder, see
//! `docs/SERVICE.md`). The server replies to *every* line it reads —
//! malformed JSON and oversized lines get structured `error` replies.

use cmt_obs::json::{self, ObjectWriter, Value};

/// Upper bound on one request line, in bytes. Longer lines get a
/// structured `error` reply (and a TCP connection streaming an
/// unterminated line past this is cut) — the server's memory use is
/// bounded by `line limit × connections`.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// An optimization request for one program.
    Compile(CompileRequest),
    /// An admin / chaos operation.
    Op {
        /// Operation name (`ping`, `stats`, `shutdown`, …).
        op: String,
        /// `ms` argument of `sleep`, when present.
        ms: u64,
        /// Echoed request id.
        id: u64,
    },
}

/// The body of a compile request.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileRequest {
    /// Client-chosen id, echoed verbatim in the response (0 when
    /// omitted).
    pub id: u64,
    /// Loop-nest IR source (see [`cmt_ir::parse::parse_program`]).
    pub program: String,
    /// Problem size the answer is computed at; server default when
    /// omitted.
    pub n: Option<i64>,
    /// Per-request wall-clock budget in milliseconds. `0` is an
    /// already-expired deadline (deterministically exercises the
    /// degraded path); omitted means the server default.
    pub deadline_ms: Option<u64>,
    /// Seed for a deterministic [`cmt_resilience::FaultPlan`] injected
    /// into the supervised pipeline; omitted means no injected faults.
    pub fault_seed: Option<u64>,
}

impl Request {
    /// Parses one request line. `Err` is a human-readable reason that
    /// becomes the `error` field of the reply.
    pub fn parse(line: &str) -> Result<Request, String> {
        if line.len() > MAX_LINE_BYTES {
            return Err(format!(
                "request line exceeds {MAX_LINE_BYTES} bytes ({})",
                line.len()
            ));
        }
        let v = json::parse(line).map_err(|e| format!("malformed request JSON: {e}"))?;
        if !matches!(v, Value::Object(_)) {
            return Err("request must be a JSON object".to_string());
        }
        let id = v.get("id").and_then(Value::as_u64).unwrap_or(0);
        if let Some(op) = v.get("op").and_then(Value::as_str) {
            return Ok(Request::Op {
                op: op.to_string(),
                ms: v.get("ms").and_then(Value::as_u64).unwrap_or(0),
                id,
            });
        }
        let program = v
            .get("program")
            .and_then(Value::as_str)
            .ok_or("request needs a string \"program\" field (or an \"op\")")?
            .to_string();
        let n = v.get("n").and_then(Value::as_u64).map(|x| x as i64);
        Ok(Request::Compile(CompileRequest {
            id,
            program,
            n,
            deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
            fault_seed: v.get("fault_seed").and_then(Value::as_u64),
        }))
    }
}

/// How an `ok` answer was produced — the degradation ladder's rungs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fidelity {
    /// Answered from the memo cache (or by waiting on an identical
    /// in-flight computation).
    Cached,
    /// Cold path, full `ShardedCache` simulation.
    Simulated,
    /// Cold path under pressure: the analytic miss-model fold.
    Analytic,
}

impl Fidelity {
    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Fidelity::Cached => "cached",
            Fidelity::Simulated => "simulated",
            Fidelity::Analytic => "analytic",
        }
    }
}

/// The memoized result of one cold computation; everything a cache hit
/// needs to answer without recomputing. All fields are deterministic
/// for a given request, which is what makes memo-cache stats and
/// response bodies byte-identical across worker counts.
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    /// Canonical structural key, lower-case hex.
    pub key: String,
    /// Problem size the answer was computed at.
    pub n: i64,
    /// `simulated` or `analytic` — how the cold computation ran.
    pub computed: Fidelity,
    /// Whether the supervised pipeline degraded (rolled back stages).
    pub degraded: bool,
    /// Number of rolled-back stages.
    pub failures: u64,
    /// Transformation steps that committed.
    pub steps: u64,
    /// Cache accesses (measured or predicted, per `computed`).
    pub accesses: u64,
    /// Cache misses (measured or predicted, per `computed`).
    pub misses: u64,
}

impl Answer {
    /// Miss rate over all accesses (0 for an empty trace).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Renders the `ok` response line for `answer`. `fidelity` is the rung
/// this *reply* used (`cached` for hits), while `answer.computed` says
/// how the underlying result was originally produced.
pub fn ok_response(id: u64, fidelity: Fidelity, answer: &Answer) -> String {
    let mut w = ObjectWriter::new();
    w.field_u64("id", id)
        .field_str("status", "ok")
        .field_str("fidelity", fidelity.as_str())
        .field_str("computed", answer.computed.as_str())
        .field_str("key", &answer.key)
        .field_u64("n", answer.n.max(0) as u64)
        .field_bool("degraded", answer.degraded)
        .field_u64("failures", answer.failures)
        .field_u64("steps", answer.steps)
        .field_u64("accesses", answer.accesses)
        .field_u64("misses", answer.misses)
        .field_f64("miss_rate", answer.miss_rate());
    w.finish()
}

/// Renders a structured `error` reply.
pub fn error_response(id: u64, error: &str) -> String {
    let mut w = ObjectWriter::new();
    w.field_u64("id", id)
        .field_str("status", "error")
        .field_str("error", error);
    w.finish()
}

/// Renders the backpressure reply: admission refused, try again.
pub fn overloaded_response(id: u64, reason: &str, depth: usize, limit: usize) -> String {
    let mut w = ObjectWriter::new();
    w.field_u64("id", id)
        .field_str("status", "overloaded")
        .field_str("reason", reason)
        .field_u64("depth", depth as u64)
        .field_u64("limit", limit as u64);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_request_round_trip() {
        let r = Request::parse(
            r#"{"id":7,"program":"PROGRAM x","n":32,"deadline_ms":100,"fault_seed":9}"#,
        )
        .unwrap();
        match r {
            Request::Compile(c) => {
                assert_eq!(c.id, 7);
                assert_eq!(c.program, "PROGRAM x");
                assert_eq!(c.n, Some(32));
                assert_eq!(c.deadline_ms, Some(100));
                assert_eq!(c.fault_seed, Some(9));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn op_request_parses() {
        assert_eq!(
            Request::parse(r#"{"op":"sleep","ms":25,"id":3}"#).unwrap(),
            Request::Op {
                op: "sleep".to_string(),
                ms: 25,
                id: 3
            }
        );
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        assert!(Request::parse("{").is_err());
        assert!(Request::parse("42").is_err());
        assert!(Request::parse(r#"{"program":7}"#).is_err());
        assert!(Request::parse(r#"{"id":1}"#).is_err());
        let long = format!(r#"{{"program":"{}"}}"#, "x".repeat(MAX_LINE_BYTES));
        assert!(Request::parse(&long).is_err());
    }

    #[test]
    fn responses_are_single_line_json() {
        let a = Answer {
            key: "deadbeef".to_string(),
            n: 64,
            computed: Fidelity::Simulated,
            degraded: false,
            failures: 0,
            steps: 3,
            accesses: 100,
            misses: 25,
        };
        for s in [
            ok_response(1, Fidelity::Cached, &a),
            error_response(2, "parse: line 3"),
            overloaded_response(3, "queue full", 9, 8),
        ] {
            assert!(!s.contains('\n'));
            cmt_obs::json::parse(&s).expect("valid json");
        }
        assert!(ok_response(1, Fidelity::Cached, &a).contains(r#""fidelity":"cached""#));
        assert!(ok_response(1, Fidelity::Cached, &a).contains(r#""computed":"simulated""#));
        assert!((a.miss_rate() - 0.25).abs() < 1e-12);
    }
}
