//! The eviction-bounded memo cache, with single-flight admission.
//!
//! Keys are canonical structural hashes ([`cmt_ir::canon::nest_key`])
//! paired with the problem size, so alpha-renamed / re-serialized /
//! declaration-shuffled programs all hit the same entry. Admission is
//! **single-flight**: for any cold key, exactly one worker computes
//! while duplicates wait on the in-flight slot and are answered from
//! its published result. That is what makes hit/miss totals a function
//! of the request stream alone — never of worker count or scheduling —
//! which the determinism tests pin across `CMT_JOBS` {1,4}.
//!
//! Eviction is LRU with a hard capacity bound, counted in entries;
//! hits, misses, insertions, and evictions are all counted and
//! exported both as `server.*` counters and in the `stats` op reply.

use crate::protocol::Answer;
use cmt_ir::canon::NestKey;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

/// Memo-cache key: structural program hash × problem size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemoKey {
    /// Canonical structural hash of the program.
    pub key: NestKey,
    /// Problem size of the answer.
    pub n: i64,
}

/// Deterministic counters of one cache's lifetime, the payload of the
/// byte-identical-across-`CMT_JOBS` guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache or a coalesced in-flight
    /// computation.
    pub hits: u64,
    /// Lookups that started a cold computation.
    pub misses: u64,
    /// Entries inserted.
    pub inserted: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Live entries.
    pub entries: u64,
    /// Capacity bound.
    pub capacity: u64,
}

impl MemoStats {
    /// Stable one-line JSON rendering (field order fixed).
    pub fn to_json(&self) -> String {
        let mut w = cmt_obs::json::ObjectWriter::new();
        w.field_u64("hits", self.hits)
            .field_u64("misses", self.misses)
            .field_u64("inserted", self.inserted)
            .field_u64("evictions", self.evictions)
            .field_u64("entries", self.entries)
            .field_u64("capacity", self.capacity);
        w.finish()
    }
}

/// One in-flight cold computation; duplicates block on it.
#[derive(Debug, Default)]
pub struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
enum FlightState {
    #[default]
    Pending,
    Done(Answer),
    Failed(String),
}

impl Flight {
    /// Publishes the computation's outcome and wakes every waiter.
    pub fn publish(&self, result: Result<Answer, String>) {
        let mut st = lock_ok(&self.state);
        *st = match result {
            Ok(a) => FlightState::Done(a),
            Err(e) => FlightState::Failed(e),
        };
        self.cv.notify_all();
    }

    /// Blocks until the owner publishes; `Err` is the owner's failure
    /// message (the waiter reports it as its own structured error).
    pub fn wait(&self) -> Result<Answer, String> {
        let mut st = lock_ok(&self.state);
        loop {
            match &*st {
                FlightState::Done(a) => return Ok(a.clone()),
                FlightState::Failed(e) => return Err(e.clone()),
                FlightState::Pending => {
                    st = match self.cv.wait(st) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            }
        }
    }
}

/// Where a lookup routed the request.
#[derive(Debug)]
pub enum Route {
    /// Warm: answer straight from the cache.
    Hit(Answer),
    /// An identical computation is in flight; wait on it.
    Wait(Arc<Flight>),
    /// Cold and unclaimed: the caller owns the computation and must
    /// [`MemoCache::publish`] (success or failure) exactly once.
    Compute(Arc<Flight>),
}

struct Slot {
    answer: Answer,
    stamp: u64,
}

/// The LRU memo cache plus the single-flight table, behind one lock so
/// hit/miss/coalesce decisions are atomic.
#[derive(Debug)]
pub struct MemoCache {
    inner: Mutex<Inner>,
}

struct Inner {
    capacity: usize,
    map: HashMap<MemoKey, Slot>,
    lru: BTreeMap<u64, MemoKey>,
    clock: u64,
    flights: HashMap<MemoKey, Arc<Flight>>,
    stats: MemoStats,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("capacity", &self.capacity)
            .field("entries", &self.map.len())
            .field("stats", &self.stats)
            .finish()
    }
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl MemoCache {
    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        MemoCache {
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                map: HashMap::new(),
                lru: BTreeMap::new(),
                clock: 0,
                flights: HashMap::new(),
                stats: MemoStats::default(),
            }),
        }
    }

    /// Routes one request: cache hit, coalesce onto an in-flight
    /// computation, or claim the cold computation. Hit/miss counting
    /// happens here, atomically.
    pub fn route(&self, key: MemoKey) -> Route {
        let mut g = lock_ok(&self.inner);
        g.clock += 1;
        let stamp = g.clock;
        if let Some(slot) = g.map.get_mut(&key) {
            let old = std::mem::replace(&mut slot.stamp, stamp);
            let answer = slot.answer.clone();
            g.lru.remove(&old);
            g.lru.insert(stamp, key);
            g.stats.hits += 1;
            return Route::Hit(answer);
        }
        if let Some(flight) = g.flights.get(&key).map(Arc::clone) {
            g.stats.hits += 1;
            return Route::Wait(flight);
        }
        g.stats.misses += 1;
        let flight = Arc::new(Flight::default());
        g.flights.insert(key, Arc::clone(&flight));
        Route::Compute(flight)
    }

    /// Completes a computation claimed via [`Route::Compute`]: inserts
    /// on success (evicting LRU entries past capacity), clears the
    /// in-flight slot, and wakes waiters with the outcome. Failures are
    /// never cached — a later retry recomputes.
    pub fn publish(&self, key: MemoKey, flight: &Arc<Flight>, result: Result<Answer, String>) {
        let mut g = lock_ok(&self.inner);
        if let Ok(answer) = &result {
            g.clock += 1;
            let stamp = g.clock;
            g.map.insert(
                key,
                Slot {
                    answer: answer.clone(),
                    stamp,
                },
            );
            g.lru.insert(stamp, key);
            g.stats.inserted += 1;
            while g.map.len() > g.capacity {
                let Some((&oldest, &victim)) = g.lru.iter().next() else {
                    break;
                };
                g.lru.remove(&oldest);
                g.map.remove(&victim);
                g.stats.evictions += 1;
            }
        }
        g.flights.remove(&key);
        drop(g);
        flight.publish(result);
    }

    /// Deterministic counters snapshot.
    pub fn stats(&self) -> MemoStats {
        let g = lock_ok(&self.inner);
        let mut s = g.stats;
        s.entries = g.map.len() as u64;
        s.capacity = g.capacity as u64;
        s
    }
}

/// Clears the in-flight slot with a failure when the owning worker
/// panics before publishing, so waiters get a structured error instead
/// of hanging. Defuse with [`FlightGuard::defuse`] after a normal
/// publish.
pub struct FlightGuard<'a> {
    cache: &'a MemoCache,
    key: MemoKey,
    flight: Arc<Flight>,
    armed: bool,
}

impl<'a> FlightGuard<'a> {
    /// Arms a guard for a claimed computation.
    pub fn new(cache: &'a MemoCache, key: MemoKey, flight: Arc<Flight>) -> Self {
        FlightGuard {
            cache,
            key,
            flight,
            armed: true,
        }
    }

    /// The computation published normally; the guard stands down.
    pub fn defuse(&mut self) {
        self.armed = false;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.publish(
                self.key,
                &self.flight,
                Err("request computation panicked before publishing".to_string()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Fidelity;

    fn answer(tag: u64) -> Answer {
        Answer {
            key: format!("{tag:032x}"),
            n: 8,
            computed: Fidelity::Simulated,
            degraded: false,
            failures: 0,
            steps: 1,
            accesses: tag,
            misses: 0,
        }
    }

    fn key(tag: u64) -> MemoKey {
        MemoKey {
            key: cmt_ir::canon::NestKey([tag, !tag]),
            n: 8,
        }
    }

    #[test]
    fn miss_then_hit_then_lru_eviction() {
        let c = MemoCache::new(2);
        for tag in 0..3u64 {
            match c.route(key(tag)) {
                Route::Compute(f) => c.publish(key(tag), &f, Ok(answer(tag))),
                other => panic!("expected compute, got {other:?}"),
            }
        }
        // Capacity 2: key 0 was evicted, 1 and 2 live.
        assert!(matches!(c.route(key(2)), Route::Hit(_)));
        assert!(matches!(c.route(key(1)), Route::Hit(_)));
        assert!(matches!(c.route(key(0)), Route::Compute(_)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserted, s.evictions), (2, 4, 3, 1));
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn touching_an_entry_protects_it_from_eviction() {
        let c = MemoCache::new(2);
        for tag in 0..2u64 {
            match c.route(key(tag)) {
                Route::Compute(f) => c.publish(key(tag), &f, Ok(answer(tag))),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Touch 0 so 1 is now the LRU victim.
        assert!(matches!(c.route(key(0)), Route::Hit(_)));
        match c.route(key(2)) {
            Route::Compute(f) => c.publish(key(2), &f, Ok(answer(2))),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(c.route(key(0)), Route::Hit(_)));
        assert!(matches!(c.route(key(1)), Route::Compute(_)));
    }

    #[test]
    fn coalesced_waiters_get_the_published_answer() {
        let c = Arc::new(MemoCache::new(8));
        let k = key(5);
        let Route::Compute(owner) = c.route(k) else {
            panic!("expected compute");
        };
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || match c.route(k) {
                Route::Wait(f) => f.wait(),
                Route::Hit(a) => Ok(a),
                Route::Compute(_) => panic!("single-flight violated"),
            })
        };
        // Give the waiter a moment to coalesce, then publish.
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.publish(k, &owner, Ok(answer(5)));
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got.accesses, 5);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn failed_computation_is_not_cached_and_guard_unblocks_waiters() {
        let c = MemoCache::new(8);
        let k = key(9);
        let Route::Compute(f) = c.route(k) else {
            panic!("expected compute");
        };
        // Simulate a panicking owner: the guard fires on drop.
        drop(FlightGuard::new(&c, k, Arc::clone(&f)));
        assert!(f.wait().is_err());
        // The key is computable again (failures are not cached).
        assert!(matches!(c.route(k), Route::Compute(_)));
    }
}
