//! cmt-serve — the memoizing optimization service.
//!
//! A long-running, multi-threaded compile server for loop-nest IR:
//! requests arrive as newline-delimited JSON (over TCP or the
//! in-process [`Server::handle_line`] client), warm requests answer
//! from a canonical-hash memo cache, and cold requests run through the
//! supervised optimization pipeline with a per-request deadline.
//!
//! The robustness story is graceful degradation under pressure, not
//! peak throughput:
//!
//! * **bounded admission** — a fixed-capacity queue; past the
//!   high-water mark clients get an explicit `overloaded` reply
//!   instead of unbounded queueing;
//! * **degradation ladder** — `cached` → `simulated` → `analytic` →
//!   `overloaded`; under load or a spent deadline the cold path trades
//!   measured simulation for the analytic miss model, and every reply
//!   says which rung it used (`fidelity`);
//! * **panic containment** — each request runs under `catch_unwind`; a
//!   poisoned request is quarantined with a reproducer and answered
//!   with a structured error, never taking down the server;
//! * **deterministic memoization** — single-flight admission makes
//!   memo hit/miss counters a function of the request stream alone,
//!   identical across `CMT_JOBS` settings;
//! * **clean drain** — shutdown stops admission, finishes in-flight
//!   requests, and flushes `server.*` observability artifacts.
//!
//! Protocol and tuning knobs are documented in `docs/SERVICE.md`.
//!
//! ```
//! use cmt_serve::{Server, ServeConfig};
//!
//! let server = Server::start(ServeConfig::default());
//! let req = r#"{"id":1,"program":"PROGRAM p\nPARAM N\nREAL A(N)\nDO I = 1, N\n  A(I) = 0.0","n":8}"#;
//! let reply = server.handle_line(req);
//! assert!(reply.contains("\"status\":\"ok\""));
//! let again = server.handle_line(req);
//! assert!(again.contains("\"fidelity\":\"cached\""));
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod answer;
pub mod memo;
pub mod protocol;
pub mod server;

pub use answer::{analytic_fold, compute_cold, simulate, ColdOutcome};
pub use memo::{Flight, FlightGuard, MemoCache, MemoKey, MemoStats, Route};
pub use protocol::{
    error_response, ok_response, overloaded_response, Answer, CompileRequest, Fidelity, Request,
    MAX_LINE_BYTES,
};
pub use server::{ServeConfig, Server};
