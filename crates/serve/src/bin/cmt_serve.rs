//! `cmt-serve` — the memoizing optimization server, TCP front end.
//!
//! ```text
//! cmt-serve [--port P] [--workers W] [--queue Q] [--degrade D]
//!           [--memo M] [--deadline-ms MS] [--n N] [--chaos]
//!           [--port-file PATH] [--obs-dir DIR] [--name NAME]
//! ```
//!
//! Listens on `127.0.0.1:P` (`--port 0` picks a free port; the bound
//! port is printed on stdout as `PORT=<p>` and, with `--port-file`,
//! written there for scripts to pick up). On SIGTERM/SIGINT — or a
//! `{"op":"shutdown"}` request — the server drains: admission stops,
//! in-flight requests finish, `server.*` artifacts are flushed under
//! the observability directory, and the process exits 0.

use cmt_serve::{ServeConfig, Server};
use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; the accept loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Hand-rolled signal(2) binding: the workspace is dependency-free,
    // so no libc crate. The handler only flips an AtomicBool, which is
    // async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Args {
    port: u16,
    port_file: Option<PathBuf>,
    name: String,
    cfg: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 0,
        port_file: None,
        name: "serve".to_string(),
        cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |what: &str| it.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--port" => args.port = parse_num(&val("--port")?)? as u16,
            "--workers" => args.cfg.workers = parse_num(&val("--workers")?)? as usize,
            "--queue" => args.cfg.queue_capacity = parse_num(&val("--queue")?)?.max(1) as usize,
            "--degrade" => args.cfg.degrade_depth = parse_num(&val("--degrade")?)? as usize,
            "--memo" => args.cfg.memo_capacity = parse_num(&val("--memo")?)?.max(1) as usize,
            "--deadline-ms" => args.cfg.default_deadline_ms = parse_num(&val("--deadline-ms")?)?,
            "--n" => args.cfg.default_n = parse_num(&val("--n")?)?.max(1) as i64,
            "--chaos" => args.cfg.chaos_ops = true,
            "--port-file" => args.port_file = Some(PathBuf::from(val("--port-file")?)),
            "--obs-dir" => args.cfg.obs_dir = Some(PathBuf::from(val("--obs-dir")?)),
            "--name" => args.name = val("--name")?,
            "--help" | "-h" => {
                return Err(
                    "usage: cmt-serve [--port P] [--workers W] [--queue Q] [--degrade D] \
                     [--memo M] [--deadline-ms MS] [--n N] [--chaos] [--port-file PATH] \
                     [--obs-dir DIR] [--name NAME]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("not a number: {s}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers();

    let listener = match TcpListener::bind(("127.0.0.1", args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cmt-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let port = listener.local_addr().map(|a| a.port()).unwrap_or(0);
    println!("PORT={port}");
    let _ = std::io::stdout().flush();
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{port}\n")) {
            eprintln!("cmt-serve: cannot write port file: {e}");
            return ExitCode::FAILURE;
        }
    }

    let server = Server::start(args.cfg.clone());
    // The accept loop exits when admission stops; a watchdog thread
    // turns the signal flag into begin_shutdown so both the op-based
    // and signal-based paths drain identically.
    let watchdog = {
        let srv = std::sync::Arc::clone(&server);
        std::thread::spawn(move || loop {
            if SHUTDOWN.load(Ordering::SeqCst) {
                srv.begin_shutdown();
                return;
            }
            if !srv.accepting() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        })
    };

    let listen_result = server.listen(listener);
    server.shutdown();
    let _ = watchdog.join();
    if let Err(e) = server.flush_artifacts(&args.name) {
        eprintln!("cmt-serve: artifact flush failed: {e}");
    }
    match listen_result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cmt-serve: listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}
