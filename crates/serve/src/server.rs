//! The hardened compile server: bounded admission, worker pool,
//! degradation ladder, panic containment, and drain-on-shutdown.
//!
//! Request flow, end to end:
//!
//! 1. **Admission** ([`Server::handle_line`]): oversized or malformed
//!    lines get structured `error` replies; past the queue's high-water
//!    mark (or once draining) requests are shed with `overloaded` —
//!    backpressure is explicit, never a hang or a drop.
//! 2. **Queue → worker**: admitted jobs wait on the bounded queue; the
//!    worker pool (sized by `CMT_JOBS`, the shared cmt-obs knob) pops
//!    in FIFO order.
//! 3. **Memoization** (single-flight, see [`crate::memo`]): warm keys
//!    answer `cached`; duplicates of an in-flight key wait for its
//!    result instead of recomputing.
//! 4. **Cold path**: the supervised pipeline under the request's
//!    deadline/fault plan, then `ShardedCache` simulation — or the
//!    analytic fold when the admission depth sat past the degrade mark
//!    or the deadline is already spent (`fidelity: analytic`).
//! 5. **Containment**: the whole job runs under `catch_unwind`; a
//!    poisoned request writes a quarantine reproducer, answers a
//!    structured `error`, and the server keeps serving.
//! 6. **Drain**: [`Server::begin_shutdown`] stops admission,
//!    [`Server::shutdown`] waits for the queue to empty, joins the
//!    workers (in-flight requests all get their replies), and
//!    [`Server::flush_artifacts`] persists `server.*` counters.

use crate::answer::{compute_cold, parse_request_program};
use crate::memo::{FlightGuard, MemoCache, MemoKey, MemoStats, Route};
use crate::protocol::{
    error_response, ok_response, overloaded_response, CompileRequest, Fidelity, Request,
    MAX_LINE_BYTES,
};
use cmt_ir::canon::nest_key;
use cmt_obs::json::ObjectWriter;
use cmt_obs::{cmt_jobs, CollectSink, ObsSink, SharedSink};
use cmt_resilience::silence_supervised_panics;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs. Defaults are sized for the load harness; the
/// binary exposes each as a flag (see `docs/SERVICE.md`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads; `0` means the shared `CMT_JOBS` pool width.
    pub workers: usize,
    /// Admission high-water mark: requests arriving while this many
    /// are queued are shed with `overloaded`.
    pub queue_capacity: usize,
    /// Degrade mark: cold requests admitted at a depth strictly above
    /// this run the analytic rung instead of simulation.
    pub degrade_depth: usize,
    /// Memo cache bound, in entries (LRU eviction past it).
    pub memo_capacity: usize,
    /// Default per-request deadline in milliseconds (`0` = none).
    pub default_deadline_ms: u64,
    /// Problem size when a request omits `n`.
    pub default_n: i64,
    /// Enable the `panic`/`sleep` chaos ops (tests and load harness
    /// only; the binary requires `--chaos`).
    pub chaos_ops: bool,
    /// Artifact directory override; `None` uses `CMT_OBS_DIR` or
    /// `results/`.
    pub obs_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            degrade_depth: 8,
            memo_capacity: 4096,
            default_deadline_ms: 2000,
            default_n: 64,
            chaos_ops: false,
            obs_dir: None,
        }
    }
}

struct Job {
    req: Request,
    raw: String,
    id: u64,
    /// Queue depth at admission (this job included) — the pressure
    /// signal for the degradation ladder.
    depth: usize,
    reply: mpsc::Sender<String>,
}

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The long-running optimization service. Create with
/// [`Server::start`], talk to it with [`Server::handle_line`] (the
/// in-process client) or [`Server::listen`] (TCP).
pub struct Server {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    memo: MemoCache,
    obs: SharedSink,
    accepting: AtomicBool,
    stop: AtomicBool,
    quarantine_seq: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Starts the worker pool and returns the running server.
    pub fn start(cfg: ServeConfig) -> Arc<Server> {
        silence_supervised_panics();
        let workers = if cfg.workers == 0 {
            cmt_jobs()
        } else {
            cfg.workers
        };
        let server = Arc::new(Server {
            memo: MemoCache::new(cfg.memo_capacity),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            obs: SharedSink::new(),
            accepting: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            quarantine_seq: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let srv = Arc::clone(&server);
            handles.push(std::thread::spawn(move || srv.worker_loop()));
        }
        *lock_ok(&server.workers) = handles;
        server
    }

    /// Whether the server still admits new requests.
    pub fn accepting(&self) -> bool {
        self.accepting.load(Ordering::SeqCst)
    }

    /// Stops admission; queued and in-flight requests still finish.
    pub fn begin_shutdown(&self) {
        self.accepting.store(false, Ordering::SeqCst);
    }

    /// Full drain: stop admission, let the queue empty, join every
    /// worker. Every request admitted before the call gets its reply.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        loop {
            if lock_ok(&self.queue).is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.stop.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        let handles = std::mem::take(&mut *lock_ok(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }

    /// The shared observability sink (counters, remarks, spans).
    pub fn obs(&self) -> &SharedSink {
        &self.obs
    }

    /// Deterministic memo-cache counters.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// The in-process client: one request line in, one response line
    /// out (no trailing newline). Never panics, never blocks past the
    /// in-flight work it admitted.
    pub fn handle_line(&self, line: &str) -> String {
        let t0 = Instant::now();
        let mut obs = self.obs.clone();
        obs.counter("server.requests", 1);
        if line.len() > MAX_LINE_BYTES {
            obs.counter("server.errors", 1);
            return error_response(0, "request line too long");
        }
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => {
                obs.counter("server.errors", 1);
                return error_response(0, &e);
            }
        };
        let resp = match req {
            Request::Op { ref op, id, .. } => match op.as_str() {
                "ping" => {
                    let mut w = ObjectWriter::new();
                    w.field_u64("id", id)
                        .field_str("status", "ok")
                        .field_str("op", "pong");
                    w.finish()
                }
                "stats" => self.stats_response(id),
                "shutdown" => {
                    self.begin_shutdown();
                    let mut w = ObjectWriter::new();
                    w.field_u64("id", id)
                        .field_str("status", "ok")
                        .field_str("op", "draining");
                    w.finish()
                }
                "panic" | "sleep" if self.cfg.chaos_ops => self.enqueue(req, line, id, &mut obs),
                other => {
                    obs.counter("server.errors", 1);
                    error_response(id, &format!("unknown op: {other}"))
                }
            },
            Request::Compile(ref c) => {
                let id = c.id;
                self.enqueue(req, line, id, &mut obs)
            }
        };
        obs.span_ns("server.latency.ns", t0.elapsed().as_nanos() as u64);
        resp
    }

    /// Bounded admission: shed past the high-water mark or once
    /// draining, otherwise queue and wait for the worker's reply.
    fn enqueue(&self, req: Request, raw: &str, id: u64, obs: &mut SharedSink) -> String {
        if !self.accepting() {
            obs.counter("server.shed", 1);
            return overloaded_response(id, "draining", 0, self.cfg.queue_capacity);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock_ok(&self.queue);
            let depth = q.len();
            if depth >= self.cfg.queue_capacity {
                drop(q);
                obs.counter("server.shed", 1);
                return overloaded_response(id, "queue full", depth, self.cfg.queue_capacity);
            }
            q.push_back(Job {
                req,
                raw: raw.to_string(),
                id,
                depth: depth + 1,
                reply: tx,
            });
        }
        self.queue_cv.notify_one();
        match rx.recv() {
            Ok(resp) => resp,
            Err(_) => {
                // A worker vanished without replying — only possible if
                // the pool was torn down around an in-flight job.
                obs.counter("server.errors", 1);
                error_response(id, "worker pool unavailable")
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock_ok(&self.queue);
                loop {
                    if let Some(j) = q.pop_front() {
                        break Some(j);
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    q = match self.queue_cv.wait_timeout(q, Duration::from_millis(50)) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            };
            let Some(job) = job else { return };
            let response = self.run_contained(&job);
            let _ = job.reply.send(response);
        }
    }

    /// Per-request panic containment: a poisoned request quarantines
    /// its reproducer and answers a structured error; the worker (and
    /// the server) keep going.
    fn run_contained(&self, job: &Job) -> String {
        match catch_unwind(AssertUnwindSafe(|| self.process(job))) {
            Ok(resp) => resp,
            Err(payload) => {
                let msg = payload_message(payload.as_ref());
                let mut obs = self.obs.clone();
                obs.counter("server.panics", 1);
                obs.counter("server.errors", 1);
                self.quarantine_request(&job.raw, &msg);
                error_response(job.id, &format!("panic: {msg}"))
            }
        }
    }

    fn process(&self, job: &Job) -> String {
        match &job.req {
            Request::Op { op, ms, id } => match op.as_str() {
                "panic" => panic!("injected request panic (chaos op)"),
                "sleep" => {
                    std::thread::sleep(Duration::from_millis((*ms).min(10_000)));
                    let mut w = ObjectWriter::new();
                    w.field_u64("id", *id)
                        .field_str("status", "ok")
                        .field_str("op", "slept");
                    w.finish()
                }
                other => error_response(*id, &format!("unknown op: {other}")),
            },
            Request::Compile(c) => self.process_compile(c, job.depth),
        }
    }

    fn process_compile(&self, c: &CompileRequest, depth: usize) -> String {
        let mut obs = self.obs.clone();
        let program = match parse_request_program(c) {
            Ok(p) => p,
            Err(e) => {
                obs.counter("server.errors", 1);
                return error_response(c.id, &e);
            }
        };
        let n = c.n.unwrap_or(self.cfg.default_n);
        if n < 1 {
            obs.counter("server.errors", 1);
            return error_response(c.id, "n must be >= 1");
        }
        let key = MemoKey {
            key: nest_key(&program),
            n,
        };
        match self.memo.route(key) {
            Route::Hit(answer) => {
                obs.counter("server.fidelity.cached", 1);
                ok_response(c.id, Fidelity::Cached, &answer)
            }
            Route::Wait(flight) => {
                obs.counter("server.coalesced", 1);
                match flight.wait() {
                    Ok(answer) => {
                        obs.counter("server.fidelity.cached", 1);
                        ok_response(c.id, Fidelity::Cached, &answer)
                    }
                    Err(e) => {
                        obs.counter("server.errors", 1);
                        error_response(c.id, &e)
                    }
                }
            }
            Route::Compute(flight) => {
                let mut guard = FlightGuard::new(&self.memo, key, Arc::clone(&flight));
                let t0 = Instant::now();
                let pressure = depth > self.cfg.degrade_depth;
                let mut sink = CollectSink::new();
                let outcome = compute_cold(
                    c,
                    &program,
                    n,
                    self.cfg.default_deadline_ms,
                    pressure,
                    &mut sink,
                );
                self.obs.absorb(sink);
                let resp = match outcome {
                    Ok(cold) => {
                        self.memo.publish(key, &flight, Ok(cold.answer.clone()));
                        guard.defuse();
                        match cold.answer.computed {
                            Fidelity::Analytic => obs.counter("server.fidelity.analytic", 1),
                            _ => obs.counter("server.fidelity.simulated", 1),
                        }
                        if cold.run.degraded() {
                            obs.counter("server.degraded", 1);
                        }
                        ok_response(c.id, cold.answer.computed, &cold.answer)
                    }
                    Err(e) => {
                        self.memo.publish(key, &flight, Err(e.clone()));
                        guard.defuse();
                        obs.counter("server.errors", 1);
                        error_response(c.id, &e)
                    }
                };
                obs.span_ns("server.cold.ns", t0.elapsed().as_nanos() as u64);
                resp
            }
        }
    }

    fn stats_response(&self, id: u64) -> String {
        let m = self.memo_stats();
        let snap = self.obs.snapshot();
        let c = |name: &str| snap.metrics.counter_value(name);
        let mut w = ObjectWriter::new();
        w.field_u64("id", id)
            .field_str("status", "ok")
            .field_str("op", "stats")
            .field_u64("requests", c("server.requests"))
            .field_u64("shed", c("server.shed"))
            .field_u64("errors", c("server.errors"))
            .field_u64("panics", c("server.panics"))
            .field_u64("degraded", c("server.degraded"))
            .field_u64("cached", c("server.fidelity.cached"))
            .field_u64("simulated", c("server.fidelity.simulated"))
            .field_u64("analytic", c("server.fidelity.analytic"))
            .field_raw("memo", &m.to_json());
        w.finish()
    }

    fn obs_dir(&self) -> PathBuf {
        match &self.cfg.obs_dir {
            Some(d) => d.clone(),
            None => std::env::var_os("CMT_OBS_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("results")),
        }
    }

    /// Writes a self-contained reproducer for a request that panicked
    /// its worker: the raw line plus the panic message, under
    /// `<obs-dir>/quarantine/`. Failures to write are swallowed —
    /// quarantine must never take down the containment path itself.
    fn quarantine_request(&self, raw: &str, message: &str) {
        let seq = self.quarantine_seq.fetch_add(1, Ordering::SeqCst);
        let dir = self.obs_dir().join("quarantine");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("serve_request_{seq}.txt"));
        let body = format!(
            "cmt-serve quarantined request reproducer\npanic: {message}\n\n== request line ==\n{raw}\n",
        );
        let _ = std::fs::write(path, body);
    }

    /// Persists `{name}.metrics.json` (server counters, latency
    /// histograms, memo stats) and `{name}.remarks.jsonl` under the
    /// artifact directory — the flush step of drain-on-shutdown.
    pub fn flush_artifacts(&self, name: &str) -> std::io::Result<()> {
        let dir = self.obs_dir();
        std::fs::create_dir_all(&dir)?;
        let mut snap = self.obs.snapshot();
        let m = self.memo_stats();
        snap.metrics.counter("server.memo.hits", m.hits);
        snap.metrics.counter("server.memo.misses", m.misses);
        snap.metrics.counter("server.memo.inserted", m.inserted);
        snap.metrics.counter("server.memo.evictions", m.evictions);
        snap.metrics.counter("server.memo.entries", m.entries);
        std::fs::write(
            dir.join(format!("{name}.metrics.json")),
            snap.metrics.to_json(),
        )?;
        std::fs::write(
            dir.join(format!("{name}.remarks.jsonl")),
            snap.remarks_jsonl(),
        )?;
        Ok(())
    }

    /// TCP front end: accepts connections until shutdown begins, one
    /// thread per connection, newline-delimited requests in, responses
    /// out in order. Returns once draining and every connection thread
    /// has exited.
    pub fn listen(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while self.accepting() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let srv = Arc::clone(self);
                    conns.push(std::thread::spawn(move || srv.serve_conn(stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => break,
            }
        }
        for c in conns {
            let _ = c.join();
        }
        Ok(())
    }

    fn serve_conn(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = LineReader::new(stream);
        loop {
            match reader.next_line() {
                LineRead::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let resp = self.handle_line(&line);
                    if writer
                        .write_all(format!("{resp}\n").as_bytes())
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                LineRead::NotYet => {
                    if !self.accepting() {
                        return;
                    }
                }
                LineRead::TooLong => {
                    let resp = error_response(0, "request line too long");
                    let _ = writer.write_all(format!("{resp}\n").as_bytes());
                    return;
                }
                LineRead::Eof | LineRead::Closed => return,
            }
        }
    }
}

enum LineRead {
    Line(String),
    /// No complete line yet (read timeout); poll again.
    NotYet,
    TooLong,
    Eof,
    Closed,
}

/// Bounded, timeout-tolerant line reader: accumulates across read
/// timeouts without losing partial lines, and cuts the connection when
/// a single line exceeds [`MAX_LINE_BYTES`] — a slow or hostile client
/// can never balloon server memory.
struct LineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
        }
    }

    fn next_line(&mut self) -> LineRead {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > MAX_LINE_BYTES {
                self.buf.clear();
                return LineRead::TooLong;
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        LineRead::Eof
                    } else {
                        // Final unterminated line.
                        let line = std::mem::take(&mut self.buf);
                        LineRead::Line(String::from_utf8_lossy(&line).into_owned())
                    };
                }
                Ok(k) => self.buf.extend_from_slice(&chunk[..k]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineRead::NotYet;
                }
                Err(_) => return LineRead::Closed,
            }
        }
    }
}
