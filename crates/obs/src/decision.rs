//! Decision provenance: one structured [`DecisionRecord`] per
//! transformation choice the optimizer makes.
//!
//! Remarks ([`crate::remark`]) say *what* a pass did; a decision record
//! says *why* — every candidate the pass weighed, the cost each oracle
//! assigned it, which legality check rejected it (and on which
//! dependence vector), the winner, and how close the race was. The
//! `cmt-explain` harness joins these records with simulated ground
//! truth to flag oracle disagreements and near-ties.
//!
//! Producers must guard record construction behind
//! [`ObsSink::enabled`](crate::sink::ObsSink::enabled), exactly like
//! remarks, so the [`NullObs`](crate::sink::NullObs) path stays
//! byte-identical to an un-instrumented build.

use crate::json::ObjectWriter;
use std::fmt;

/// One candidate the decision weighed: a loop of the nest considered as
/// the innermost (memory-order) position.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionCandidate {
    /// Loop variable name (e.g. `"J"`).
    pub var: String,
    /// The active oracle's cost for running this loop innermost; lower
    /// is better. For the paper oracle this is `LoopCost` evaluated at
    /// the reference size, for the analytic oracle the predicted miss
    /// ladder sum.
    pub cost: f64,
    /// Position in the oracle's desired order (0 = outermost).
    pub rank: usize,
}

impl DecisionCandidate {
    /// Renders the candidate as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.field_str("var", &self.var)
            .field_f64("cost", self.cost)
            .field_u64("rank", self.rank as u64);
        o.finish()
    }
}

/// One transformation decision, with full provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionRecord {
    /// The emitting pass (`"permute"`, `"fuse"`, `"distribute"`).
    pub pass: &'static str,
    /// Stable label of the nest concerned, e.g. `"mm/nest0:I.J.K"`.
    pub nest: String,
    /// What was being decided: `"permute"`, `"fuse-all"`,
    /// `"fuse.permute"`, `"distribute"`, `"cross-fuse"`.
    pub action: &'static str,
    /// Name of the cost oracle that ranked the candidates
    /// (`"loopcost"` or `"analytic"`).
    pub oracle: String,
    /// Every candidate innermost loop with its cost, in original nest
    /// order. Empty when the decision had no cost race (e.g. a pure
    /// legality outcome).
    pub candidates: Vec<DecisionCandidate>,
    /// The oracle's desired loop order, outermost first (e.g.
    /// `"K.I.J"`). Empty when not applicable.
    pub desired: String,
    /// The order actually achieved after legality filtering.
    pub achieved: String,
    /// Whether the desired order was legal as-is.
    pub legal: bool,
    /// The constraining dependence vector when the desired order was
    /// rejected, e.g. `"(<,>)"`.
    pub blocking: Option<String>,
    /// Outcome label: `"applied"`, `"already"`, `"blocked"`,
    /// `"imperfect"`, `"complex-bounds"`, `"rejected"`, …
    pub outcome: &'static str,
    /// Win margin: cost of the runner-up innermost candidate minus the
    /// winner's (non-negative; `None` when fewer than two candidates).
    pub margin: Option<f64>,
}

impl DecisionRecord {
    /// Starts a record with no candidates and an `"applied"` outcome.
    pub fn new(pass: &'static str, nest: impl Into<String>, action: &'static str) -> Self {
        DecisionRecord {
            pass,
            nest: nest.into(),
            action,
            oracle: String::new(),
            candidates: Vec::new(),
            desired: String::new(),
            achieved: String::new(),
            legal: true,
            blocking: None,
            outcome: "applied",
            margin: None,
        }
    }

    /// Renders the record as one JSON object (one JSONL line, no
    /// trailing newline). Field order is fixed, so equal records render
    /// byte-identically.
    pub fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.field_str("pass", self.pass)
            .field_str("nest", &self.nest)
            .field_str("action", self.action)
            .field_str("oracle", &self.oracle)
            .field_raw(
                "candidates",
                &crate::json::array(self.candidates.iter().map(|c| c.to_json())),
            )
            .field_str("desired", &self.desired)
            .field_str("achieved", &self.achieved)
            .field_bool("legal", self.legal);
        if let Some(b) = &self.blocking {
            o.field_str("blocking", b);
        }
        o.field_str("outcome", self.outcome);
        if let Some(m) = self.margin {
            o.field_f64("margin", m);
        }
        o.finish()
    }
}

impl fmt::Display for DecisionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] {} ({}): desired {} -> achieved {} ({})",
            self.pass,
            self.action,
            self.nest,
            self.oracle,
            if self.desired.is_empty() {
                "-"
            } else {
                &self.desired
            },
            if self.achieved.is_empty() {
                "-"
            } else {
                &self.achieved
            },
            self.outcome,
        )?;
        if let Some(b) = &self.blocking {
            write!(f, " blocked by {b}")?;
        }
        if let Some(m) = self.margin {
            write!(f, " margin {m:.3e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionRecord {
        DecisionRecord {
            pass: "permute",
            nest: "mm/nest0:I.J.K".into(),
            action: "permute",
            oracle: "loopcost".into(),
            candidates: vec![
                DecisionCandidate {
                    var: "I".into(),
                    cost: 300.0,
                    rank: 1,
                },
                DecisionCandidate {
                    var: "J".into(),
                    cost: 10100.0,
                    rank: 0,
                },
                DecisionCandidate {
                    var: "K".into(),
                    cost: 75.0,
                    rank: 2,
                },
            ],
            desired: "J.I.K".into(),
            achieved: "J.I.K".into(),
            legal: true,
            blocking: None,
            outcome: "applied",
            margin: Some(225.0),
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"pass\":\"permute\""), "{j}");
        assert!(j.contains("\"action\":\"permute\""));
        assert!(j.contains("\"candidates\":[{\"var\":\"I\""));
        assert!(j.contains("\"desired\":\"J.I.K\""));
        assert!(j.contains("\"legal\":true"));
        assert!(j.contains("\"margin\":225"));
        assert!(!j.contains("blocking"));
        // Parses back through the crate's own JSON reader.
        let v = crate::json::parse(&j).expect("record parses");
        assert_eq!(v.get("oracle").and_then(|x| x.as_str()), Some("loopcost"));
        assert_eq!(
            v.get("candidates").and_then(|x| x.as_array()).map(Vec::len),
            Some(3)
        );
    }

    #[test]
    fn blocked_record_carries_vector() {
        let mut r = sample();
        r.legal = false;
        r.blocking = Some("(<,>)".into());
        r.outcome = "blocked";
        let j = r.to_json();
        assert!(j.contains("\"legal\":false"));
        assert!(j.contains("\"blocking\":\"(<,>)\""));
        assert!(j.contains("\"outcome\":\"blocked\""));
    }

    #[test]
    fn display_is_human_readable() {
        let s = format!("{}", sample());
        assert!(s.contains("[permute/permute] mm/nest0:I.J.K"), "{s}");
        assert!(s.contains("desired J.I.K -> achieved J.I.K"), "{s}");
    }
}
