//! Hierarchical self-profiling traces with Chrome Trace Event export.
//!
//! Modeled on LLVM's `-ftime-trace`: a run opens a [`TraceSession`],
//! engines record begin/end or complete span events (plus instants and
//! counter samples) on per-thread [`TraceTrack`]s, and the session
//! exports one **Chrome Trace Event JSON** document that loads directly
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Timestamps are wall-clock microseconds since the session epoch and
//! are therefore *excluded* from the repository's byte-identical
//! determinism guarantee; everything else about a trace (event names,
//! nesting, track structure, counter values) is a pure function of the
//! work performed. Consumers that must stay deterministic (`cmt-report`,
//! `obs_diff`) read only those fields.
//!
//! # Example
//!
//! ```
//! use cmt_obs::trace::{validate_chrome_trace, TraceArg, TraceSession};
//!
//! let mut session = TraceSession::new();
//! session.main().begin("optimize", &[("nest", TraceArg::Str("mm/nest0"))]);
//! session.main().instant("permuted");
//! session.main().end("optimize", &[("loopcost_after", TraceArg::F64(0.5e6))]);
//! session.main().counter("miss_rate", 0.25);
//!
//! let mut worker = session.track("worker-0");
//! let t0 = worker.start();
//! worker.complete_since(t0, "simulate", &[("n", TraceArg::U64(64))]);
//! session.absorb(worker);
//!
//! let json = session.to_chrome_json();
//! let summary = validate_chrome_trace(&json).expect("trace validates");
//! assert_eq!(summary.tracks, 2);
//! assert_eq!(summary.spans, 2);
//! ```

use crate::json::{self, number, ObjectWriter, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// One argument value attached to a trace event at the recording site.
///
/// Borrowed so instrumentation sites can pass labels without allocating
/// when tracing is disabled upstream.
#[derive(Clone, Copy, Debug)]
pub enum TraceArg<'a> {
    /// A string argument (e.g. a nest label or a verdict).
    Str(&'a str),
    /// A float argument (e.g. a `LoopCost` value).
    F64(f64),
    /// An integer argument (e.g. an access count).
    U64(u64),
}

/// Owned form of [`TraceArg`] stored in recorded events.
#[derive(Clone, Debug, PartialEq)]
enum ArgValue {
    Str(String),
    F64(f64),
    U64(u64),
}

impl ArgValue {
    fn render(&self) -> String {
        match self {
            ArgValue::Str(s) => json::string(s),
            ArgValue::F64(v) => number(*v),
            ArgValue::U64(v) => v.to_string(),
        }
    }
}

fn own_args(args: &[(&str, TraceArg<'_>)]) -> Vec<(String, ArgValue)> {
    args.iter()
        .map(|(k, v)| {
            let v = match v {
                TraceArg::Str(s) => ArgValue::Str((*s).to_string()),
                TraceArg::F64(x) => ArgValue::F64(*x),
                TraceArg::U64(x) => ArgValue::U64(*x),
            };
            ((*k).to_string(), v)
        })
        .collect()
}

/// Chrome Trace Event phases this layer emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// `"B"` — span begin.
    Begin,
    /// `"E"` — span end.
    End,
    /// `"X"` — complete span (start + duration in one event).
    Complete,
    /// `"i"` — instant event.
    Instant,
    /// `"C"` — counter sample.
    Counter,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
struct TraceEvent {
    name: String,
    phase: Phase,
    /// Microseconds since the session epoch.
    ts_us: u64,
    /// Duration in microseconds ([`Phase::Complete`] only).
    dur_us: u64,
    args: Vec<(String, ArgValue)>,
}

/// A single timeline (one Perfetto "thread") of a [`TraceSession`].
///
/// Tracks share the session's epoch (so their timestamps compose onto
/// one global timeline) but are otherwise independent: a track is
/// `Send`, so parallel workers can each record on their own track and
/// the session absorbs them afterwards. Events on one track are
/// recorded in time order by construction — `Instant` is monotonic.
#[derive(Clone, Debug)]
pub struct TraceTrack {
    epoch: Instant,
    tid: u64,
    name: String,
    events: Vec<TraceEvent>,
}

impl TraceTrack {
    /// Microseconds elapsed since the session epoch (saturating).
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Timestamp to later pass to [`TraceTrack::complete_since`].
    pub fn start(&self) -> u64 {
        self.now_us()
    }

    /// Opens a span. Every `begin` must be matched by an [`TraceTrack::end`]
    /// with the same name, properly nested.
    pub fn begin(&mut self, name: &str, args: &[(&str, TraceArg<'_>)]) {
        self.push(name, Phase::Begin, self.now_us(), 0, args);
    }

    /// Closes the innermost open span named `name`; `args` merge with
    /// the begin event's args in trace viewers.
    pub fn end(&mut self, name: &str, args: &[(&str, TraceArg<'_>)]) {
        self.push(name, Phase::End, self.now_us(), 0, args);
    }

    /// Records a complete span that started at `start_us` (from
    /// [`TraceTrack::start`]) and ends now.
    pub fn complete_since(&mut self, start_us: u64, name: &str, args: &[(&str, TraceArg<'_>)]) {
        let now = self.now_us();
        self.push(
            name,
            Phase::Complete,
            start_us,
            now.saturating_sub(start_us),
            args,
        );
    }

    /// Records a complete span with explicit start and duration — for
    /// events whose timing was measured elsewhere (e.g. interpolated
    /// positions along a simulation span).
    pub fn complete_at(
        &mut self,
        start_us: u64,
        dur_us: u64,
        name: &str,
        args: &[(&str, TraceArg<'_>)],
    ) {
        self.push(name, Phase::Complete, start_us, dur_us, args);
    }

    /// Records an instant event.
    pub fn instant(&mut self, name: &str) {
        self.push(name, Phase::Instant, self.now_us(), 0, &[]);
    }

    /// Records one sample of the counter series `name` at the current
    /// time. Counter series render as their own value track in Perfetto.
    pub fn counter(&mut self, name: &str, value: f64) {
        self.counter_at(self.now_us(), name, value);
    }

    /// Records one counter sample at an explicit timestamp. `ts_us` must
    /// not be earlier than the track's latest event (per-track
    /// monotonicity is part of the validated contract).
    pub fn counter_at(&mut self, ts_us: u64, name: &str, value: f64) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            phase: Phase::Counter,
            ts_us,
            dur_us: 0,
            args: vec![("value".to_string(), ArgValue::F64(value))],
        });
    }

    /// Restores per-track timestamp order after backdated events.
    ///
    /// [`TraceTrack::complete_at`] and [`TraceTrack::counter_at`] append
    /// events whose timestamps lie in the past (e.g. counter samples
    /// interpolated along a finished simulation span), which breaks the
    /// append-order monotonicity the validator checks. A stable sort by
    /// timestamp repairs it: real-time events are already monotone, so
    /// their relative order — including `B`/`E` nesting, which ties on
    /// equal timestamps — is preserved.
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| e.ts_us);
    }

    /// Number of events recorded on this track.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(
        &mut self,
        name: &str,
        phase: Phase,
        ts_us: u64,
        dur_us: u64,
        args: &[(&str, TraceArg<'_>)],
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            phase,
            ts_us,
            dur_us,
            args: own_args(args),
        });
    }
}

/// A whole run's trace: the main track plus every absorbed worker track,
/// exported as one Chrome Trace Event JSON document.
#[derive(Clone, Debug)]
pub struct TraceSession {
    epoch: Instant,
    tracks: Vec<TraceTrack>,
    next_tid: u64,
}

impl Default for TraceSession {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSession {
    /// Opens a session; the epoch (timestamp zero) is now. The main
    /// track (`tid` 0, named `"main"`) exists from the start.
    pub fn new() -> TraceSession {
        let epoch = Instant::now();
        TraceSession {
            epoch,
            tracks: vec![TraceTrack {
                epoch,
                tid: 0,
                name: "main".to_string(),
                events: Vec::new(),
            }],
            next_tid: 1,
        }
    }

    /// The main track.
    pub fn main(&mut self) -> &mut TraceTrack {
        &mut self.tracks[0]
    }

    /// Creates a detached track sharing this session's epoch. The track
    /// is `Send`; hand it to a worker thread and [`TraceSession::absorb`]
    /// it when the worker is done.
    pub fn track(&mut self, name: &str) -> TraceTrack {
        let tid = self.next_tid;
        self.next_tid += 1;
        TraceTrack {
            epoch: self.epoch,
            tid,
            name: name.to_string(),
            events: Vec::new(),
        }
    }

    /// Takes ownership of a detached track's events.
    pub fn absorb(&mut self, track: TraceTrack) {
        self.tracks.push(track);
    }

    /// Number of tracks (main + absorbed + still-empty created ones are
    /// not counted until absorbed).
    pub fn tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Total events across all tracks.
    pub fn events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Checks the session's structural contract: per-track monotone
    /// non-decreasing timestamps and balanced, properly nested
    /// begin/end pairs with matching names.
    pub fn validate(&self) -> Result<(), String> {
        for t in &self.tracks {
            let mut last = 0u64;
            let mut stack: Vec<&str> = Vec::new();
            for e in &t.events {
                if e.ts_us < last {
                    return Err(format!(
                        "track {} ({}): timestamp {} after {} — not monotone",
                        t.tid, t.name, e.ts_us, last
                    ));
                }
                last = e.ts_us;
                match e.phase {
                    Phase::Begin => stack.push(&e.name),
                    Phase::End => match stack.pop() {
                        Some(open) if open == e.name => {}
                        Some(open) => {
                            return Err(format!(
                                "track {} ({}): end '{}' closes open span '{}'",
                                t.tid, t.name, e.name, open
                            ));
                        }
                        None => {
                            return Err(format!(
                                "track {} ({}): end '{}' with no open span",
                                t.tid, t.name, e.name
                            ));
                        }
                    },
                    Phase::Complete | Phase::Instant | Phase::Counter => {}
                }
            }
            if let Some(open) = stack.pop() {
                return Err(format!(
                    "track {} ({}): span '{}' never ended",
                    t.tid, t.name, open
                ));
            }
        }
        Ok(())
    }

    /// Renders the session as Chrome Trace Event JSON: one
    /// `{"displayTimeUnit":"ms","traceEvents":[…]}` document with
    /// process/thread metadata events followed by every track's events.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.events() + self.tracks.len() + 1);
        let mut meta = ObjectWriter::new();
        meta.field_str("ph", "M")
            .field_str("name", "process_name")
            .field_u64("pid", 1)
            .field_u64("tid", 0)
            .field_raw("args", &{
                let mut a = ObjectWriter::new();
                a.field_str("name", "cmt-locality");
                a.finish()
            });
        events.push(meta.finish());
        for t in &self.tracks {
            let mut m = ObjectWriter::new();
            m.field_str("ph", "M")
                .field_str("name", "thread_name")
                .field_u64("pid", 1)
                .field_u64("tid", t.tid)
                .field_raw("args", &{
                    let mut a = ObjectWriter::new();
                    a.field_str("name", &t.name);
                    a.finish()
                });
            events.push(m.finish());
        }
        for t in &self.tracks {
            for e in &t.events {
                let mut o = ObjectWriter::new();
                o.field_str("name", &e.name)
                    .field_str("cat", "cmt")
                    .field_str("ph", e.phase.as_str())
                    .field_u64("pid", 1)
                    .field_u64("tid", t.tid)
                    .field_u64("ts", e.ts_us);
                if e.phase == Phase::Complete {
                    o.field_u64("dur", e.dur_us);
                }
                if e.phase == Phase::Instant {
                    // Thread-scoped instant; "g" (global) would span all
                    // tracks.
                    o.field_str("s", "t");
                }
                if !e.args.is_empty() {
                    let mut a = ObjectWriter::new();
                    for (k, v) in &e.args {
                        a.field_raw(k, &v.render());
                    }
                    o.field_raw("args", &a.finish());
                }
                events.push(o.finish());
            }
        }
        let mut top = ObjectWriter::new();
        top.field_str("displayTimeUnit", "ms")
            .field_raw("traceEvents", &json::array(events));
        top.finish()
    }
}

/// Structural facts about a validated trace document. Everything here is
/// deterministic for a fixed workload and `CMT_JOBS` value — durations
/// and timestamps are deliberately absent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Distinct non-metadata tracks (tids that carry at least one
    /// event).
    pub tracks: usize,
    /// Total non-metadata events.
    pub events: usize,
    /// Span events (`B`/`E` pairs count once; `X` counts once).
    pub spans: usize,
    /// Counter samples.
    pub counter_samples: usize,
    /// Event count per name, sorted by name.
    pub by_name: BTreeMap<String, usize>,
}

/// Parses and validates a Chrome Trace Event JSON document produced by
/// [`TraceSession::to_chrome_json`] (also accepts the bare
/// `[…]`-array form): well-formed JSON, known phases, monotone
/// non-decreasing timestamps per track, and balanced begin/end pairs.
/// Returns the deterministic [`TraceSummary`] on success.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    let events = match &doc {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .ok_or("no traceEvents array")?,
        Value::Array(items) => items,
        _ => return Err("top level is neither an object nor an array".to_string()),
    };
    let mut summary = TraceSummary::default();
    // Per-tid: (last timestamp, open-span stack).
    let mut per_track: BTreeMap<u64, (u64, Vec<String>)> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let obj = e
            .as_object()
            .ok_or_else(|| format!("event {i}: not an object"))?;
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let ph = get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // metadata
        }
        let name = get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let tid = get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = get("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let (last, stack) = per_track.entry(tid).or_insert((0, Vec::new()));
        if ts < *last {
            return Err(format!(
                "event {i} ('{name}', tid {tid}): ts {ts} < previous {last}"
            ));
        }
        *last = ts;
        summary.events += 1;
        *summary.by_name.entry(name.to_string()).or_insert(0) += 1;
        match ph {
            "B" => {
                stack.push(name.to_string());
                summary.spans += 1;
            }
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: 'E {name}' closes open span '{open}' (tid {tid})"
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: 'E {name}' with no open span (tid {tid})"
                    ));
                }
            },
            "X" => {
                if get("dur").and_then(Value::as_u64).is_none() {
                    return Err(format!("event {i}: X without dur"));
                }
                summary.spans += 1;
            }
            "i" => {}
            "C" => summary.counter_samples += 1,
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }
    for (tid, (_, stack)) in &per_track {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span '{open}' never ended"));
        }
    }
    summary.tracks = per_track.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_round_trips_through_validator() {
        let mut s = TraceSession::new();
        s.main()
            .begin("compound", &[("nest", TraceArg::Str("mm/nest0:I.J.K"))]);
        s.main().instant("permuted");
        s.main()
            .end("compound", &[("loopcost_after", TraceArg::F64(5.0e5))]);
        let mut w = s.track("worker-0");
        let t0 = w.start();
        w.complete_since(t0, "simulate", &[("accesses", TraceArg::U64(1000))]);
        w.counter("cache1.miss_rate", 0.125);
        s.absorb(w);
        s.validate().unwrap();

        let json = s.to_chrome_json();
        let sum = validate_chrome_trace(&json).unwrap();
        assert_eq!(sum.tracks, 2);
        assert_eq!(sum.spans, 2); // one B/E pair + one X
        assert_eq!(sum.counter_samples, 1);
        assert_eq!(sum.by_name.get("compound"), Some(&2)); // B and E
        assert_eq!(sum.by_name.get("simulate"), Some(&1));
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        let mut s = TraceSession::new();
        s.main().begin("open", &[]);
        assert!(s.validate().is_err());
        let err = validate_chrome_trace(&s.to_chrome_json()).unwrap_err();
        assert!(err.contains("never ended"), "{err}");

        let mut s = TraceSession::new();
        s.main().begin("a", &[]);
        s.main().end("b", &[]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn non_monotone_counter_timestamps_are_rejected() {
        let mut s = TraceSession::new();
        s.main().counter_at(100, "x", 1.0);
        s.main().counter_at(50, "x", 2.0);
        assert!(s.validate().is_err());
        assert!(validate_chrome_trace(&s.to_chrome_json()).is_err());
    }

    #[test]
    fn export_shape_is_chrome_compatible() {
        let mut s = TraceSession::new();
        s.main().begin("work", &[("label", TraceArg::Str("a\"b"))]);
        s.main().end("work", &[]);
        let json = s.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"label\":\"a\\\"b\""));
        // The bare array form also validates.
        let inner = &json[json.find('[').unwrap()..json.rfind(']').unwrap() + 1];
        validate_chrome_trace(inner).unwrap();
    }

    #[test]
    fn detached_tracks_share_the_epoch_and_get_unique_tids() {
        let mut s = TraceSession::new();
        let a = s.track("w0");
        let b = s.track("w1");
        assert_ne!(a.tid, b.tid);
        assert_eq!(s.tracks(), 1, "detached tracks not counted until absorbed");
        s.absorb(a);
        s.absorb(b);
        assert_eq!(s.tracks(), 3);
    }

    #[test]
    fn complete_at_supports_interpolated_samples() {
        let mut s = TraceSession::new();
        s.main()
            .complete_at(10, 5, "batch", &[("len", TraceArg::U64(4096))]);
        s.main().counter_at(20, "rate", 0.5);
        s.validate().unwrap();
        let sum = validate_chrome_trace(&s.to_chrome_json()).unwrap();
        assert_eq!(sum.spans, 1);
        assert_eq!(sum.counter_samples, 1);
    }
}
