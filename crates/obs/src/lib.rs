//! Observability for the locality optimizer: optimization remarks,
//! tracing spans, and a metrics registry.
//!
//! The paper's evaluation hinges on *explaining* compiler decisions —
//! which nests reached memory order, which permutations were blocked by
//! dependences, what fusion bought. This crate provides the
//! LLVM-`-Rpass`-style machinery to make those decisions visible:
//!
//! * [`remark`] — structured [`Remark`] events (`Applied` / `Missed` /
//!   `Analysis`) with a pass name, a stable nest label, a human-readable
//!   reason, and optional `LoopCost` before/after values;
//! * [`decision`] — [`DecisionRecord`] provenance events: every
//!   candidate a transformation weighed, its per-oracle cost, the
//!   legality verdict (with the constraining dependence vector on
//!   rejection), the winner, and the win margin;
//! * [`sink`] — the cheap [`ObsSink`] trait every producer writes to,
//!   with a no-op default ([`NullObs`]) so hot paths stay fast when
//!   observability is off, an in-memory collector ([`CollectSink`]), and
//!   a JSONL writer ([`JsonlSink`]);
//! * [`metrics`] — a counter/histogram [`MetricsRegistry`] with
//!   wall-clock span timing and a machine-readable JSON snapshot, so
//!   every reproduction run leaves an artifact comparable across PRs;
//! * [`trace`] — the LLVM-`-ftime-trace`-style self-profiler: a
//!   [`TraceSession`] of per-thread [`TraceTrack`]s recording span /
//!   instant / counter events, exported as Chrome Trace Event JSON for
//!   Perfetto or `chrome://tracing`;
//! * [`diff`] — cross-run regression diffing of metrics snapshots and
//!   remark streams (the engine behind the `obs_diff` binary);
//! * [`json`] — the tiny hand-rolled JSON writer and parser behind the
//!   export formats (this crate has zero dependencies);
//! * [`rng`] — a small SplitMix64/xorshift PRNG used for deterministic
//!   workload generation and property tests (replacing the external
//!   `rand` dependency so the tier-1 build is fully offline).
//!
//! # Example
//!
//! ```
//! use cmt_obs::{CollectSink, ObsSink, Remark, RemarkKind};
//!
//! let mut sink = CollectSink::default();
//! if sink.enabled() {
//!     sink.remark(
//!         Remark::new("permute", "mm/nest0:I.J.K", RemarkKind::Applied)
//!             .reason("permuted into memory order J.K.I")
//!             .costs(2.0e6, 0.5e6),
//!     );
//! }
//! sink.counter("pass.permute.changed", 1);
//! assert_eq!(sink.remarks.len(), 1);
//! assert_eq!(sink.metrics.counter_value("pass.permute.changed"), 1);
//! let line = sink.remarks[0].to_json();
//! assert!(line.contains("\"kind\":\"Applied\""));
//! ```

pub mod decision;
pub mod diff;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod remark;
pub mod rng;
pub mod sink;
pub mod trace;

pub use decision::{DecisionCandidate, DecisionRecord};
pub use diff::{diff_metrics, diff_remarks, DiffFinding};
pub use metrics::{HistogramSummary, MetricsRegistry, SpanTimer};
pub use pool::{cmt_jobs, par_map, par_map_traced, try_par_map, try_par_map_traced, WorkerPanic};
pub use remark::{Remark, RemarkKind};
pub use rng::SplitMix64;
pub use sink::{CollectSink, JsonlSink, NullObs, ObsSink, SharedSink, Tracing};
pub use trace::{validate_chrome_trace, TraceArg, TraceSession, TraceSummary, TraceTrack};
