//! The deterministic parallel worker pool ([`par_map`] and friends).
//!
//! Moved here from `cmt-bench` so lower layers can use it too: the
//! set-sharded simulation core in `cmt-cache` fans one trace's shards
//! out over the same pool the corpus runner uses for whole programs.
//! `cmt-bench` re-exports everything, so existing callers are
//! unaffected.

use crate::trace::{TraceArg, TraceSession, TraceTrack};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for [`par_map`]: `$CMT_JOBS` when set to a positive
/// integer, otherwise the machine's available parallelism. `CMT_JOBS=1`
/// forces the fully sequential in-thread path.
pub fn cmt_jobs() -> usize {
    std::env::var("CMT_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A contained worker failure from [`try_par_map`]: the item's closure
/// panicked on its first run *and* on its bounded retry on a fresh
/// worker.
#[derive(Clone, Debug)]
pub struct WorkerPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// Attempts made (always 2: initial run + one retry).
    pub attempts: u32,
    /// Panic payload of the last attempt, when it was a string.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {} ({} attempts): {}",
            self.index, self.attempts, self.message
        )
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_caught<T, R>(f: &(impl Fn(&T) -> R + Sync), item: &T) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
        .map_err(|p| panic_text(p.as_ref()))
}

/// [`par_map`] with worker-panic containment: a panic in `f` is caught
/// on the worker (which keeps draining the queue), the failed item is
/// retried **once** on a fresh worker thread, and a second failure
/// surfaces as `Err(WorkerPanic)` in that item's slot — every other
/// item still completes and keeps its byte-identical, item-ordered
/// result.
pub fn try_par_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<Result<R, WorkerPanic>> {
    let jobs = cmt_jobs().min(items.len().max(1));
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    if jobs <= 1 {
        for (i, item) in items.iter().enumerate() {
            *slots[i].lock().expect("result slot poisoned") = Some(run_caught(&f, item));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let r = run_caught(&f, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
    }
    // Bounded retry: failed items run once more, each on a fresh worker
    // thread (a panicking closure may have been unlucky rather than
    // deterministic — and a fresh thread guarantees clean worker state).
    let failed: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            matches!(
                s.lock().expect("result slot poisoned").as_ref(),
                Some(Err(_)) | None
            )
        })
        .map(|(i, _)| i)
        .collect();
    if !failed.is_empty() {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(failed.len()) {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = failed.get(k) else { break };
                    let r = run_caught(&f, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            match s
                .into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| Err("worker never filled the slot".to_string()))
            {
                Ok(r) => Ok(r),
                Err(message) => Err(WorkerPanic {
                    index: i,
                    attempts: 2,
                    message,
                }),
            }
        })
        .collect()
}

/// Maps `f` over `items` on [`cmt_jobs`] scoped worker threads,
/// returning results **in item order**.
///
/// Determinism guarantee: the output vector is indistinguishable from
/// `items.iter().map(f).collect()` as long as `f` itself is a pure
/// function of its item — workers pull items off a shared queue, but
/// every result is written back to its item's slot, so ordering (and
/// everything derived from it: rendered tables, remark streams, JSON
/// artifacts) is byte-identical for any `CMT_JOBS` value. Simulations
/// are independent per item (each builds its own `Machine` and caches),
/// which is what makes the corpus embarrassingly parallel.
///
/// Uses only `std::thread::scope` — no thread-pool dependency. Built on
/// [`try_par_map`], so a panic in `f` no longer kills sibling workers:
/// the item is retried once on a fresh worker, and only a repeat
/// failure panics the caller — deterministically, on the first failed
/// item in **item order** (not completion order).
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    try_par_map(items, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("par_map: {e}"),
        })
        .collect()
}

/// [`par_map`] with self-profiling: each worker records onto its own
/// [`TraceTrack`] (`worker-0` … `worker-{jobs-1}`), absorbed into
/// `session` in worker order, so a Perfetto view of the run shows
/// exactly how `CMT_JOBS` spreads the corpus. Every item is wrapped in
/// a `par_map.item` complete-span carrying its index; `f` can record
/// finer-grained events through the track it receives.
///
/// Results keep the [`par_map`] determinism guarantee (item-order
/// output); only the trace's timestamps and item-to-worker assignment
/// vary run to run.
///
/// Panic containment matches [`par_map`]: a panicking item is retried
/// once on a fresh `worker-retry` thread/track, and only a repeat
/// failure panics the caller (first failed item in item order).
pub fn par_map_traced<T: Sync, R: Send>(
    items: &[T],
    session: &mut TraceSession,
    f: impl Fn(&T, &mut TraceTrack) -> R + Sync,
) -> Vec<R> {
    try_par_map_traced(items, session, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("par_map_traced: {e}"),
        })
        .collect()
}

/// [`par_map_traced`] with worker-panic containment — the traced
/// counterpart of [`try_par_map`]. Worker threads survive a panicking
/// item (the panic is caught, the worker keeps draining the queue, and
/// its trace track stays intact); failed items are retried once on a
/// fresh `worker-retry` thread with its own track; a second failure
/// surfaces as `Err(WorkerPanic)` in the item's slot.
pub fn try_par_map_traced<T: Sync, R: Send>(
    items: &[T],
    session: &mut TraceSession,
    f: impl Fn(&T, &mut TraceTrack) -> R + Sync,
) -> Vec<Result<R, WorkerPanic>> {
    let jobs = cmt_jobs().min(items.len().max(1));
    let run_one = |i: usize, item: &T, track: &mut TraceTrack| -> Result<R, String> {
        let t0 = track.start();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item, track)))
            .map_err(|p| panic_text(p.as_ref()));
        track.complete_since(t0, "par_map.item", &[("index", TraceArg::U64(i as u64))]);
        r
    };
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    if jobs <= 1 {
        let mut track = session.track("worker-0");
        for (i, item) in items.iter().enumerate() {
            *slots[i].lock().expect("result slot poisoned") = Some(run_one(i, item, &mut track));
        }
        track.normalize();
        session.absorb(track);
    } else {
        let next = AtomicUsize::new(0);
        let tracks: Vec<TraceTrack> = (0..jobs)
            .map(|w| session.track(&format!("worker-{w}")))
            .collect();
        let done: Vec<TraceTrack> = std::thread::scope(|scope| {
            let (next, slots, run_one) = (&next, &slots, &run_one);
            let handles: Vec<_> = tracks
                .into_iter()
                .map(|mut track| {
                    scope.spawn(move || {
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            let r = run_one(i, item, &mut track);
                            *slots[i].lock().expect("result slot poisoned") = Some(r);
                        }
                        track
                    })
                })
                .collect();
            // Workers contain every panic in `f`, so joins cannot fail;
            // if one somehow does, its track is lost but the run (and
            // the other workers' tracks) survive.
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        });
        for mut track in done {
            track.normalize();
            session.absorb(track);
        }
    }
    // Bounded retry on a fresh worker thread with its own track.
    let failed: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            matches!(
                s.lock().expect("result slot poisoned").as_ref(),
                Some(Err(_)) | None
            )
        })
        .map(|(i, _)| i)
        .collect();
    if !failed.is_empty() {
        let mut retry_track = session.track("worker-retry");
        let retry_done: TraceTrack = std::thread::scope(|scope| {
            let (slots, run_one) = (&slots, &run_one);
            let handle = scope.spawn(move || {
                for &i in &failed {
                    let r = run_one(i, &items[i], &mut retry_track);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                }
                retry_track
            });
            handle.join().ok()
        })
        .unwrap_or_else(|| session.track("worker-retry-lost"));
        let mut retry_done = retry_done;
        retry_done.normalize();
        session.absorb(retry_done);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            match s
                .into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| Err("worker never filled the slot".to_string()))
            {
                Ok(r) => Ok(r),
                Err(message) => Err(WorkerPanic {
                    index: i,
                    attempts: 2,
                    message,
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn try_par_map_contains_a_persistent_panic() {
        let items: Vec<usize> = (0..20).collect();
        let out = try_par_map(&items, |&i| {
            if i == 13 {
                panic!("boom on {i}");
            }
            i * 2
        });
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let e = r.as_ref().expect_err("item 13 must fail");
                assert_eq!(e.index, 13);
                assert_eq!(e.attempts, 2);
                assert!(e.message.contains("boom on 13"), "{}", e.message);
            } else {
                assert_eq!(*r.as_ref().expect("other items succeed"), i * 2);
            }
        }
    }

    #[test]
    fn try_par_map_retries_a_flaky_item_once() {
        let attempts = AtomicU32::new(0);
        let items: Vec<usize> = (0..8).collect();
        let out = try_par_map(&items, |&i| {
            if i == 5 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky");
            }
            i + 100
        });
        // The first attempt panicked; the bounded retry succeeded.
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
        let vals: Vec<usize> = out
            .into_iter()
            .map(|r| r.expect("retry recovers"))
            .collect();
        assert_eq!(vals, (100..108).collect::<Vec<_>>());
    }

    #[test]
    fn try_par_map_results_stay_in_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = try_par_map(&items, |&i| i * i);
        let vals: Vec<u64> = out.into_iter().map(|r| r.expect("no faults")).collect();
        assert_eq!(vals, items.iter().map(|&i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_traced_contains_and_retries_panics() {
        let mut session = TraceSession::new();
        let items: Vec<usize> = (0..16).collect();
        let out = try_par_map_traced(&items, &mut session, |&i, track| {
            track.instant("visit");
            if i == 3 {
                panic!("traced boom");
            }
            i
        });
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r.as_ref().expect("ok"), i);
            }
        }
        // The surviving workers' tracks (and the retry track) were
        // absorbed and still form a valid trace.
        session.validate().expect("trace stays well-formed");
        let json = session.to_chrome_json();
        assert!(json.contains("worker-retry"), "retry track is recorded");
    }
}
