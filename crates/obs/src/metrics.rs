//! Counters, histograms, and wall-clock span timing.
//!
//! A [`MetricsRegistry`] is a flat, name-addressed store: monotonic
//! `u64` counters plus value histograms (count/sum/min/max). Pass
//! runtimes, per-array miss counts, and interval miss-rate snapshots all
//! land here and export as one JSON snapshot comparable across runs.

use crate::json::{number, ObjectWriter};
use std::collections::BTreeMap;
use std::time::Instant;

/// Aggregate of the values recorded under one histogram name.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl HistogramSummary {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Arithmetic mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// A name-addressed counter/histogram store.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry_ref_or_owned(name).or_insert(0) += delta;
    }

    /// Records one observation under histogram `name`.
    pub fn record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry_ref_or_owned(name)
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (zero when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Summary of a histogram, if anything was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSummary)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one (counters add, histograms
    /// merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.counter(k, v);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry_ref_or_owned(k).or_default();
            mine.count += h.count;
            mine.sum += h.sum;
            mine.min = mine.min.min(h.min);
            mine.max = mine.max.max(h.max);
        }
    }

    /// Renders the whole registry as one stable JSON snapshot:
    /// `{"counters":{…},"histograms":{name:{count,sum,min,max,mean}}}`.
    /// Keys are sorted, so two snapshots of the same run are
    /// byte-identical and two runs diff cleanly.
    pub fn to_json(&self) -> String {
        let mut counters = ObjectWriter::new();
        for (k, &v) in &self.counters {
            counters.field_u64(k, v);
        }
        let mut hists = ObjectWriter::new();
        for (k, h) in &self.histograms {
            let mut o = ObjectWriter::new();
            o.field_u64("count", h.count)
                .field_f64("sum", h.sum)
                .field_raw(
                    "min",
                    &if h.count == 0 {
                        "null".into()
                    } else {
                        number(h.min)
                    },
                )
                .field_raw(
                    "max",
                    &if h.count == 0 {
                        "null".into()
                    } else {
                        number(h.max)
                    },
                )
                .field_f64("mean", h.mean());
            hists.field_raw(k, &o.finish());
        }
        let mut top = ObjectWriter::new();
        top.field_raw("counters", &counters.finish())
            .field_raw("histograms", &hists.finish());
        top.finish()
    }
}

/// `BTreeMap::entry` forces an owned key even on hits; this tiny
/// extension looks up by `&str` first so the hot path never allocates.
trait EntryRefExt<V> {
    fn entry_ref_or_owned(&mut self, key: &str) -> EntrySlot<'_, V>;
}

/// The slot returned by [`EntryRefExt::entry_ref_or_owned`].
enum EntrySlot<'a, V> {
    Occupied(&'a mut V),
    Vacant(&'a mut BTreeMap<String, V>, String),
}

impl<'a, V> EntrySlot<'a, V> {
    fn or_insert(self, default: V) -> &'a mut V {
        match self {
            EntrySlot::Occupied(v) => v,
            EntrySlot::Vacant(map, key) => map.entry(key).or_insert(default),
        }
    }

    fn or_default(self) -> &'a mut V
    where
        V: Default,
    {
        match self {
            EntrySlot::Occupied(v) => v,
            EntrySlot::Vacant(map, key) => map.entry(key).or_default(),
        }
    }
}

impl<V> EntryRefExt<V> for BTreeMap<String, V> {
    fn entry_ref_or_owned(&mut self, key: &str) -> EntrySlot<'_, V> {
        // Split borrow: `contains_key` first keeps the map borrow short.
        if self.contains_key(key) {
            EntrySlot::Occupied(self.get_mut(key).expect("checked above"))
        } else {
            EntrySlot::Vacant(self, key.to_owned())
        }
    }
}

/// A started wall-clock span; record the elapsed time into a registry
/// (or an `ObsSink`) when the work completes.
#[derive(Debug)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Starts timing now.
    pub fn start() -> SpanTimer {
        SpanTimer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since `start` (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed nanoseconds under histogram `name`.
    pub fn record(self, registry: &mut MetricsRegistry, name: &str) -> u64 {
        let ns = self.elapsed_ns();
        registry.record(name, ns as f64);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter("a", 2);
        m.counter("a", 3);
        assert_eq!(m.counter_value("a"), 5);
        assert_eq!(m.counter_value("missing"), 0);
    }

    #[test]
    fn histograms_summarize() {
        let mut m = MetricsRegistry::new();
        for v in [1.0, 2.0, 9.0] {
            m.record("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 9.0);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_both_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter("c", 1);
        a.record("h", 2.0);
        let mut b = MetricsRegistry::new();
        b.counter("c", 4);
        b.record("h", 6.0);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), 5);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 6.0);
    }

    #[test]
    fn json_snapshot_is_stable() {
        let mut m = MetricsRegistry::new();
        m.counter("z", 1);
        m.counter("a", 2);
        m.record("t", 3.0);
        let j = m.to_json();
        assert!(j.starts_with("{\"counters\":{\"a\":2,\"z\":1}"), "{j}");
        assert!(j.contains("\"t\":{\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\"mean\":3}"));
        assert_eq!(j, m.clone().to_json(), "snapshot must be deterministic");
    }

    #[test]
    fn span_timer_records() {
        let mut m = MetricsRegistry::new();
        let t = SpanTimer::start();
        let ns = t.record(&mut m, "span");
        let h = m.histogram("span").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, ns as f64);
    }
}
