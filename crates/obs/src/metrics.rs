//! Counters, histograms, and wall-clock span timing.
//!
//! A [`MetricsRegistry`] is a flat, name-addressed store: monotonic
//! `u64` counters plus value histograms (count/sum/min/max and fixed
//! log2 buckets for p50/p95/p99 estimates). Pass runtimes, per-array
//! miss counts, and interval miss-rate snapshots all land here and
//! export as one JSON snapshot comparable across runs.

use crate::json::ObjectWriter;
use std::collections::BTreeMap;
use std::time::Instant;

/// Number of fixed log2 buckets per histogram (exponents
/// `-32..=BUCKET_MAX_EXP`).
const BUCKETS: usize = 64;
/// Smallest binary exponent with its own bucket; values at or below
/// `2^-32` (including zero and negatives) land in bucket 0.
const BUCKET_MIN_EXP: i64 = -32;
/// Largest binary exponent with its own bucket; values at or above
/// `2^31` land in the last bucket.
const BUCKET_MAX_EXP: i64 = 31;

/// Bucket index for one observation: the IEEE-754 exponent (i.e.
/// `floor(log2(v))` for positive normal `v`), clamped to the fixed
/// range. Extracting exponent bits instead of calling `log2` keeps the
/// bucketing bit-exact across platforms and libm versions.
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    (exp.clamp(BUCKET_MIN_EXP, BUCKET_MAX_EXP) - BUCKET_MIN_EXP) as usize
}

/// Exact `2^exp` for the in-range exponents used by the buckets,
/// constructed from bits so no floating-point math is involved.
fn pow2(exp: i64) -> f64 {
    f64::from_bits(((exp + 1023) as u64) << 52)
}

/// Aggregate of the values recorded under one histogram name.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Fixed log2 buckets (exponents −32..=31) backing the quantile
    /// estimates; bucket 0 also absorbs zero/negative/tiny values.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSummary {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Arithmetic mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate from the log2 buckets: walks buckets until the
    /// cumulative count reaches `q * count` and returns the bucket's
    /// midpoint `1.5·2^e`, clamped to the exact recorded `[min, max]`.
    /// Resolution is one binary order of magnitude — plenty to spot a
    /// tail regression, with zero dependencies. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = 1.5 * pow2(i as i64 + BUCKET_MIN_EXP);
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }
}

/// A name-addressed counter/histogram store.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry_ref_or_owned(name).or_insert(0) += delta;
    }

    /// Records one observation under histogram `name`.
    pub fn record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry_ref_or_owned(name)
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (zero when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Summary of a histogram, if anything was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSummary)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one (counters add, histograms
    /// merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.counter(k, v);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry_ref_or_owned(k).or_default();
            mine.count += h.count;
            mine.sum += h.sum;
            mine.min = mine.min.min(h.min);
            mine.max = mine.max.max(h.max);
            for (b, o) in mine.buckets.iter_mut().zip(h.buckets.iter()) {
                *b += o;
            }
        }
    }

    /// Renders the whole registry as one stable JSON snapshot:
    /// `{"counters":{…},"histograms":{name:{count,sum,min,max,mean,p50,p95,p99}}}`.
    /// Keys are sorted, so two snapshots of the same run are
    /// byte-identical and two runs diff cleanly. Zero-count histograms
    /// are skipped entirely, so every exported `min`/`max` is a real
    /// number and downstream consumers never special-case `null`.
    pub fn to_json(&self) -> String {
        let mut counters = ObjectWriter::new();
        for (k, &v) in &self.counters {
            counters.field_u64(k, v);
        }
        let mut hists = ObjectWriter::new();
        for (k, h) in &self.histograms {
            if h.count == 0 {
                continue;
            }
            let mut o = ObjectWriter::new();
            o.field_u64("count", h.count)
                .field_f64("sum", h.sum)
                .field_f64("min", h.min)
                .field_f64("max", h.max)
                .field_f64("mean", h.mean())
                .field_f64("p50", h.quantile(0.50))
                .field_f64("p95", h.quantile(0.95))
                .field_f64("p99", h.quantile(0.99));
            hists.field_raw(k, &o.finish());
        }
        let mut top = ObjectWriter::new();
        top.field_raw("counters", &counters.finish())
            .field_raw("histograms", &hists.finish());
        top.finish()
    }
}

/// `BTreeMap::entry` forces an owned key even on hits; this tiny
/// extension looks up by `&str` first so the hot path never allocates.
trait EntryRefExt<V> {
    fn entry_ref_or_owned(&mut self, key: &str) -> EntrySlot<'_, V>;
}

/// The slot returned by [`EntryRefExt::entry_ref_or_owned`].
enum EntrySlot<'a, V> {
    Occupied(&'a mut V),
    Vacant(&'a mut BTreeMap<String, V>, String),
}

impl<'a, V> EntrySlot<'a, V> {
    fn or_insert(self, default: V) -> &'a mut V {
        match self {
            EntrySlot::Occupied(v) => v,
            EntrySlot::Vacant(map, key) => map.entry(key).or_insert(default),
        }
    }

    fn or_default(self) -> &'a mut V
    where
        V: Default,
    {
        match self {
            EntrySlot::Occupied(v) => v,
            EntrySlot::Vacant(map, key) => map.entry(key).or_default(),
        }
    }
}

impl<V> EntryRefExt<V> for BTreeMap<String, V> {
    fn entry_ref_or_owned(&mut self, key: &str) -> EntrySlot<'_, V> {
        // Split borrow: `contains_key` first keeps the map borrow short.
        if self.contains_key(key) {
            EntrySlot::Occupied(self.get_mut(key).expect("checked above"))
        } else {
            EntrySlot::Vacant(self, key.to_owned())
        }
    }
}

/// A started wall-clock span; record the elapsed time into a registry
/// (or an `ObsSink`) when the work completes.
#[derive(Debug)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Starts timing now.
    pub fn start() -> SpanTimer {
        SpanTimer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since `start` (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed nanoseconds under histogram `name`.
    pub fn record(self, registry: &mut MetricsRegistry, name: &str) -> u64 {
        let ns = self.elapsed_ns();
        registry.record(name, ns as f64);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter("a", 2);
        m.counter("a", 3);
        assert_eq!(m.counter_value("a"), 5);
        assert_eq!(m.counter_value("missing"), 0);
    }

    #[test]
    fn histograms_summarize() {
        let mut m = MetricsRegistry::new();
        for v in [1.0, 2.0, 9.0] {
            m.record("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 9.0);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_both_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter("c", 1);
        a.record("h", 2.0);
        let mut b = MetricsRegistry::new();
        b.counter("c", 4);
        b.record("h", 6.0);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), 5);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 6.0);
    }

    #[test]
    fn json_snapshot_is_stable() {
        let mut m = MetricsRegistry::new();
        m.counter("z", 1);
        m.counter("a", 2);
        m.record("t", 3.0);
        let j = m.to_json();
        assert!(j.starts_with("{\"counters\":{\"a\":2,\"z\":1}"), "{j}");
        assert!(
            j.contains(
                "\"t\":{\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\"mean\":3,\
                 \"p50\":3,\"p95\":3,\"p99\":3}"
            ),
            "{j}"
        );
        assert_eq!(j, m.clone().to_json(), "snapshot must be deterministic");
    }

    #[test]
    fn zero_count_histograms_are_skipped_in_snapshot() {
        // A merge from a default (never-observed) summary leaves a
        // zero-count entry; the snapshot must omit it so `min`/`max`
        // are never `null`.
        let mut src = MetricsRegistry::new();
        src.histograms
            .insert("empty".into(), HistogramSummary::default());
        src.record("full", 2.0);
        let mut m = MetricsRegistry::new();
        m.merge(&src);
        assert!(m.histogram("empty").is_some());
        let j = m.to_json();
        assert!(!j.contains("empty"), "{j}");
        assert!(!j.contains("null"), "{j}");
        assert!(j.contains("\"full\""), "{j}");
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut m = MetricsRegistry::new();
        // 90 fast observations around 1.0, 10 slow ones around 1024.
        for _ in 0..90 {
            m.record("lat", 1.0);
        }
        for _ in 0..10 {
            m.record("lat", 1024.0);
        }
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.quantile(0.50), 1.5, "median is the [1,2) bucket midpoint");
        assert_eq!(h.quantile(0.95), 1024.0, "tail clamps to exact max");
        assert_eq!(h.quantile(0.99), 1024.0);
        // Mid-bucket estimate: values spread inside one bucket resolve
        // to the bucket midpoint, clamped into the observed range.
        let mut s = MetricsRegistry::new();
        for v in [16.0, 20.0, 24.0, 28.0] {
            s.record("b", v);
        }
        let q = s.histogram("b").unwrap().quantile(0.5);
        assert_eq!(q, 24.0, "midpoint of [16,32) bucket is 1.5*16");
        // Degenerate inputs stay in range.
        let mut z = MetricsRegistry::new();
        z.record("z", 0.0);
        assert_eq!(z.histogram("z").unwrap().quantile(0.5), 0.0);
        assert_eq!(HistogramSummary::default().quantile(0.5), 0.0);
    }

    #[test]
    fn merge_folds_buckets() {
        let mut a = MetricsRegistry::new();
        a.record("h", 2.0);
        let mut b = MetricsRegistry::new();
        b.record("h", 512.0);
        b.record("h", 600.0);
        a.merge(&b);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
        // Median now sits in the 512-bucket.
        assert!(h.quantile(0.5) >= 512.0, "{}", h.quantile(0.5));
    }

    #[test]
    fn span_timer_records() {
        let mut m = MetricsRegistry::new();
        let t = SpanTimer::start();
        let ns = t.record(&mut m, "span");
        let h = m.histogram("span").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, ns as f64);
    }
}
