//! The [`ObsSink`] trait every instrumented component writes to, plus
//! the stock sinks: [`NullObs`] (free no-op), [`CollectSink`]
//! (in-memory), and [`JsonlSink`] (streaming JSONL writer).
//!
//! Producers must guard any non-trivial event *construction* behind
//! [`ObsSink::enabled`], so with [`NullObs`] the optimizer does no extra
//! allocation or formatting and its output stays byte-identical to the
//! un-instrumented build.

use crate::decision::DecisionRecord;
use crate::metrics::MetricsRegistry;
use crate::remark::Remark;
use crate::trace::{TraceArg, TraceTrack};
use std::io;

/// Receiver for observability events.
///
/// All methods have no-op defaults so a sink can implement only what it
/// cares about. `enabled()` defaults to `false`; producers use it to
/// skip building remark strings entirely on the hot path.
pub trait ObsSink {
    /// Whether this sink wants events at all. When `false`, producers
    /// skip event construction, not just delivery.
    fn enabled(&self) -> bool {
        false
    }

    /// Delivers one optimization remark.
    fn remark(&mut self, remark: Remark) {
        let _ = remark;
    }

    /// Delivers one decision-provenance record (see
    /// [`crate::decision`]). Defaults to a no-op, so existing sinks —
    /// and the [`NullObs`] fast path — are untouched by provenance
    /// capture.
    fn decision(&mut self, record: DecisionRecord) {
        let _ = record;
    }

    /// Adds `delta` to counter `name`.
    fn counter(&mut self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records one histogram observation.
    fn record(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records an elapsed span (nanoseconds) under histogram `name`.
    /// Default forwards to [`ObsSink::record`].
    fn span_ns(&mut self, name: &str, nanos: u64) {
        self.record(name, nanos as f64);
    }

    /// Opens a hierarchical trace span (see [`crate::trace`]). Sinks
    /// without a trace track drop the event; every `trace_begin` an
    /// instrumented component emits must be paired with a matching
    /// [`ObsSink::trace_end`].
    fn trace_begin(&mut self, name: &str, args: &[(&str, TraceArg<'_>)]) {
        let _ = (name, args);
    }

    /// Closes the innermost open trace span named `name`; `args` merge
    /// with the begin event's args in trace viewers.
    fn trace_end(&mut self, name: &str, args: &[(&str, TraceArg<'_>)]) {
        let _ = (name, args);
    }

    /// Records an instant trace event.
    fn trace_instant(&mut self, name: &str) {
        let _ = name;
    }

    /// Records one sample of the trace counter series `name`.
    fn trace_counter(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }
}

/// Adapter pairing any [`ObsSink`] with a [`TraceTrack`]: remarks and
/// metrics forward to the inner sink, trace events land on the track.
/// This is how a traced run reuses every existing instrumentation site —
/// wrap the per-run `CollectSink` and hand the track back to the
/// session afterwards.
#[derive(Debug)]
pub struct Tracing<'a, S> {
    /// The sink receiving remarks and metrics.
    pub inner: S,
    /// The track receiving trace events.
    pub track: &'a mut TraceTrack,
}

impl<'a, S: ObsSink> Tracing<'a, S> {
    /// Pairs `inner` with `track`.
    pub fn new(inner: S, track: &'a mut TraceTrack) -> Self {
        Tracing { inner, track }
    }
}

impl<S: ObsSink> ObsSink for Tracing<'_, S> {
    /// Always enabled: even over a disabled inner sink, producers must
    /// construct events so the trace sees them.
    fn enabled(&self) -> bool {
        true
    }

    fn remark(&mut self, remark: Remark) {
        self.inner.remark(remark);
    }

    fn decision(&mut self, record: DecisionRecord) {
        self.inner.decision(record);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn record(&mut self, name: &str, value: f64) {
        self.inner.record(name, value);
    }

    fn span_ns(&mut self, name: &str, nanos: u64) {
        self.inner.span_ns(name, nanos);
    }

    fn trace_begin(&mut self, name: &str, args: &[(&str, TraceArg<'_>)]) {
        self.track.begin(name, args);
    }

    fn trace_end(&mut self, name: &str, args: &[(&str, TraceArg<'_>)]) {
        self.track.end(name, args);
    }

    fn trace_instant(&mut self, name: &str) {
        self.track.instant(name);
    }

    fn trace_counter(&mut self, name: &str, value: f64) {
        self.track.counter(name, value);
    }
}

/// The do-nothing sink. `enabled()` is `false`, so instrumented code
/// pays only one branch per decision point.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObs;

impl ObsSink for NullObs {}

/// Collects remarks and metrics in memory, for tests and for binaries
/// that export artifacts after the run.
#[derive(Clone, Debug, Default)]
pub struct CollectSink {
    /// Remarks in emission order.
    pub remarks: Vec<Remark>,
    /// Decision-provenance records in emission order.
    pub decisions: Vec<DecisionRecord>,
    /// Counter/histogram store.
    pub metrics: MetricsRegistry,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another collector into this one: remarks are appended in
    /// `other`'s emission order, metrics are merged. This is how the
    /// parallel corpus runner keeps artifact streams deterministic —
    /// each worker collects into its own sink and the caller absorbs
    /// them in item order, so the combined stream is byte-identical to a
    /// sequential run.
    pub fn absorb(&mut self, other: CollectSink) {
        self.remarks.extend(other.remarks);
        self.decisions.extend(other.decisions);
        self.metrics.merge(&other.metrics);
    }

    /// Renders all collected remarks as JSONL (one object per line,
    /// trailing newline included when non-empty).
    pub fn remarks_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.remarks {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Renders all collected decision records as JSONL.
    pub fn decisions_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }
}

impl ObsSink for CollectSink {
    fn enabled(&self) -> bool {
        true
    }

    fn remark(&mut self, remark: Remark) {
        self.remarks.push(remark);
    }

    fn decision(&mut self, record: DecisionRecord) {
        self.decisions.push(record);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.metrics.counter(name, delta);
    }

    fn record(&mut self, name: &str, value: f64) {
        self.metrics.record(name, value);
    }
}

/// A thread-safe, cloneable handle to one shared [`CollectSink`]:
/// the observability spine of the multi-threaded optimization service,
/// where many worker threads account `server.*` counters and latency
/// spans into a single registry.
///
/// Locking is per-event and panic-tolerant: a poisoned mutex (a worker
/// panicked mid-event) is recovered, never propagated — observability
/// must not take down the process it observes.
#[derive(Clone, Debug, Default)]
pub struct SharedSink {
    inner: std::sync::Arc<std::sync::Mutex<CollectSink>>,
}

impl SharedSink {
    /// Creates an empty shared collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CollectSink> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Snapshot of everything collected so far.
    pub fn snapshot(&self) -> CollectSink {
        self.lock().clone()
    }

    /// Current value of a counter (zero when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().metrics.counter_value(name)
    }

    /// Stable-JSON snapshot of the metrics registry.
    pub fn metrics_json(&self) -> String {
        self.lock().metrics.to_json()
    }

    /// JSONL snapshot of the collected remarks.
    pub fn remarks_jsonl(&self) -> String {
        self.lock().remarks_jsonl()
    }

    /// Folds a per-task collector into the shared one under a single
    /// lock acquisition (cheaper and atomically ordered versus
    /// event-at-a-time forwarding).
    pub fn absorb(&self, other: CollectSink) {
        self.lock().absorb(other);
    }
}

impl ObsSink for SharedSink {
    fn enabled(&self) -> bool {
        true
    }

    fn remark(&mut self, remark: Remark) {
        self.lock().remarks.push(remark);
    }

    fn decision(&mut self, record: DecisionRecord) {
        self.lock().decisions.push(record);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.lock().metrics.counter(name, delta);
    }

    fn record(&mut self, name: &str, value: f64) {
        self.lock().metrics.record(name, value);
    }
}

/// Streams each remark as one JSON line to an [`io::Write`], while
/// accumulating metrics in memory (metrics only make sense as an
/// end-of-run snapshot).
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    writer: W,
    /// Metrics accumulated alongside the streamed remarks.
    pub metrics: MetricsRegistry,
    /// First write error, if any (later events are dropped silently —
    /// observability must never abort the run it observes).
    pub error: Option<io::Error>,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            metrics: MetricsRegistry::new(),
            error: None,
        }
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: io::Write> ObsSink for JsonlSink<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn remark(&mut self, remark: Remark) {
        if self.error.is_some() {
            return;
        }
        let mut line = remark.to_json();
        line.push('\n');
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.metrics.counter(name, delta);
    }

    fn record(&mut self, name: &str, value: f64) {
        self.metrics.record(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remark::RemarkKind;

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullObs;
        assert!(!s.enabled());
        // All events are accepted and dropped.
        s.remark(Remark::new("permute", "n", RemarkKind::Applied));
        s.counter("c", 1);
        s.record("h", 1.0);
        s.span_ns("t", 5);
        s.trace_begin("span", &[("k", TraceArg::U64(1))]);
        s.trace_end("span", &[]);
        s.trace_instant("i");
        s.trace_counter("c", 1.0);
    }

    #[test]
    fn tracing_adapter_splits_events() {
        use crate::trace::TraceSession;
        let mut session = TraceSession::new();
        let mut track = session.track("w");
        let mut sink = Tracing::new(CollectSink::new(), &mut track);
        assert!(sink.enabled());
        sink.trace_begin("work", &[("nest", TraceArg::Str("n0"))]);
        sink.remark(Remark::new("permute", "n0", RemarkKind::Applied));
        sink.counter("c", 1);
        sink.trace_counter("rate", 0.5);
        sink.trace_end("work", &[("out", TraceArg::F64(2.0))]);
        let inner = sink.inner;
        assert_eq!(inner.remarks.len(), 1);
        assert_eq!(inner.metrics.counter_value("c"), 1);
        assert_eq!(track.len(), 3); // B, C, E
        session.absorb(track);
        session.validate().unwrap();
    }

    #[test]
    fn collect_sink_gathers_everything() {
        let mut s = CollectSink::new();
        assert!(s.enabled());
        s.remark(Remark::new("fuse", "a", RemarkKind::Missed).reason("not legal"));
        s.counter("c", 2);
        s.span_ns("t", 7);
        assert_eq!(s.remarks.len(), 1);
        assert_eq!(s.metrics.counter_value("c"), 2);
        assert_eq!(s.metrics.histogram("t").unwrap().sum, 7.0);
        let jsonl = s.remarks_jsonl();
        assert!(jsonl.ends_with('\n'));
        assert_eq!(jsonl.lines().count(), 1);
    }

    #[test]
    fn absorb_preserves_order_and_merges_metrics() {
        let mut total = CollectSink::new();
        total.remark(Remark::new("permute", "n0", RemarkKind::Applied));
        total.decision(DecisionRecord::new("permute", "n0", "permute"));
        total.counter("c", 1);
        let mut part = CollectSink::new();
        part.remark(Remark::new("fuse", "n1", RemarkKind::Missed));
        part.decision(DecisionRecord::new("fuse", "n1", "fuse-all"));
        part.counter("c", 2);
        part.record("h", 1.5);
        total.absorb(part);
        assert_eq!(total.remarks.len(), 2);
        assert_eq!(total.remarks[1].pass, "fuse");
        assert_eq!(total.decisions.len(), 2);
        assert_eq!(total.decisions[1].nest, "n1");
        assert_eq!(total.metrics.counter_value("c"), 3);
        assert_eq!(total.metrics.histogram("h").unwrap().count, 1);
        assert_eq!(total.decisions_jsonl().lines().count(), 2);
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let mut s = JsonlSink::new(Vec::new());
        s.remark(Remark::new("permute", "n0", RemarkKind::Applied).reason("ok"));
        s.remark(Remark::new("tile", "n1", RemarkKind::Analysis).reason("info"));
        s.counter("c", 1);
        let buf = s.into_inner();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
