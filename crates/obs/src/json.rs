//! A minimal JSON writer and reader — just enough for remark lines,
//! metrics snapshots, and trace documents, with correct string escaping
//! and finite-number handling. Hand-rolled so the crate stays
//! dependency-free.

use std::fmt::Write as _;

/// Escapes `s` into `out` as the *contents* of a JSON string (no
/// surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a quoted JSON string.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Integral values print without a fractional part for stability
        // across platforms.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON object: `{"k":v,…}`.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    any: bool,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned-integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim.
    pub fn field_raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders a JSON array from pre-rendered element values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (k, item) in items.into_iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// A parsed JSON value.
///
/// Objects keep their fields in document order as a `Vec` of pairs —
/// the artifacts this crate reads are emitted with sorted keys already,
/// and preserving order keeps round-trip diffs faithful.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, fields in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.trunc() == *n && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a field by name, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// garbage is an error. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII in \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Artifacts only escape control characters, so
                            // surrogate pairs never occur; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unexpected end in string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("héllo"), "\"héllo\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.5), "3.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_and_array() {
        let mut o = ObjectWriter::new();
        o.field_str("name", "x\"y")
            .field_u64("n", 7)
            .field_f64("r", 0.5)
            .field_raw("list", &array(vec!["1".into(), "2".into()]));
        assert_eq!(
            o.finish(),
            "{\"name\":\"x\\\"y\",\"n\":7,\"r\":0.5,\"list\":[1,2]}"
        );
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut o = ObjectWriter::new();
        o.field_str("name", "x\"y\nz")
            .field_u64("n", 7)
            .field_f64("r", 0.5)
            .field_raw(
                "list",
                &array(vec!["1".into(), "null".into(), "true".into()]),
            );
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x\"y\nz"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("r").unwrap().as_f64(), Some(0.5));
        let list = v.get("list").unwrap().as_array().unwrap();
        assert_eq!(list[0], Value::Number(1.0));
        assert_eq!(list[1], Value::Null);
        assert_eq!(list[2], Value::Bool(true));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_handles_nesting_and_numbers() {
        let v = parse(" {\"a\": [ {\"b\": -2.5e3}, [] ], \"c\": {} } ").unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].get("b").unwrap().as_f64(), Some(-2500.0));
        assert_eq!(a[1], Value::Array(vec![]));
        assert_eq!(v.get("c"), Some(&Value::Object(vec![])));
        assert_eq!(parse("\"h\\u00e9llo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn object_fields_preserve_document_order() {
        let v = parse("{\"z\":1,\"a\":2}").unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
        assert!(v.get("missing").is_none());
    }
}
