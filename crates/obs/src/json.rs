//! A minimal JSON writer — just enough for remark lines and metrics
//! snapshots, with correct string escaping and finite-number handling.
//! Hand-rolled so the crate stays dependency-free.

use std::fmt::Write as _;

/// Escapes `s` into `out` as the *contents* of a JSON string (no
/// surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a quoted JSON string.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Integral values print without a fractional part for stability
        // across platforms.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON object: `{"k":v,…}`.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    any: bool,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned-integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Adds a pre-rendered JSON value verbatim.
    pub fn field_raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders a JSON array from pre-rendered element values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (k, item) in items.into_iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("héllo"), "\"héllo\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.5), "3.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_and_array() {
        let mut o = ObjectWriter::new();
        o.field_str("name", "x\"y")
            .field_u64("n", 7)
            .field_f64("r", 0.5)
            .field_raw("list", &array(vec!["1".into(), "2".into()]));
        assert_eq!(
            o.finish(),
            "{\"name\":\"x\\\"y\",\"n\":7,\"r\":0.5,\"list\":[1,2]}"
        );
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }
}
