//! Structured optimization remarks, in the spirit of LLVM's `-Rpass`
//! family: every accept/reject decision the optimizer makes becomes one
//! event carrying the pass, the nest it concerns, and a human-readable
//! reason.

use crate::json::ObjectWriter;
use std::fmt;

/// What a remark reports about a transformation decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemarkKind {
    /// The transformation was applied (LLVM `-Rpass`).
    Applied,
    /// The transformation was considered and rejected
    /// (`-Rpass-missed`).
    Missed,
    /// Neutral analysis information (`-Rpass-analysis`).
    Analysis,
    /// A differential correctness check passed: the step's before/after
    /// programs were executed and proven equivalent (emitted by the
    /// `cmt-verify` crate).
    Verified,
    /// A differential correctness check FAILED: the transformed program
    /// diverged from the original. Always a bug in a transformation.
    Diverged,
}

impl RemarkKind {
    /// Stable string form used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            RemarkKind::Applied => "Applied",
            RemarkKind::Missed => "Missed",
            RemarkKind::Analysis => "Analysis",
            RemarkKind::Verified => "Verified",
            RemarkKind::Diverged => "Diverged",
        }
    }
}

impl fmt::Display for RemarkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One optimization-remark event.
#[derive(Clone, Debug, PartialEq)]
pub struct Remark {
    /// The emitting pass ("permute", "fuse", "distribute", …).
    pub pass: &'static str,
    /// Stable label of the nest (or loop) concerned, e.g.
    /// `"mm/nest0:I.J.K"`.
    pub nest: String,
    /// Applied / Missed / Analysis.
    pub kind: RemarkKind,
    /// Human-readable explanation of the decision.
    pub reason: String,
    /// `LoopCost` of the nest before the decision, evaluated at the
    /// reference problem size (when known).
    pub loopcost_before: Option<f64>,
    /// `LoopCost` after (when the pass changed or would have changed the
    /// nest).
    pub loopcost_after: Option<f64>,
}

impl Remark {
    /// Starts a remark with an empty reason and no costs.
    pub fn new(pass: &'static str, nest: impl Into<String>, kind: RemarkKind) -> Remark {
        Remark {
            pass,
            nest: nest.into(),
            kind,
            reason: String::new(),
            loopcost_before: None,
            loopcost_after: None,
        }
    }

    /// Sets the human-readable reason.
    pub fn reason(mut self, reason: impl Into<String>) -> Remark {
        self.reason = reason.into();
        self
    }

    /// Attaches before/after `LoopCost` values.
    pub fn costs(mut self, before: f64, after: f64) -> Remark {
        self.loopcost_before = Some(before);
        self.loopcost_after = Some(after);
        self
    }

    /// Attaches only the before-cost (for Missed/Analysis remarks).
    pub fn cost_before(mut self, before: f64) -> Remark {
        self.loopcost_before = Some(before);
        self
    }

    /// The decision's win margin: `before - after` cost, when both are
    /// known. Positive means the pass improved the nest; magnitudes
    /// near zero mark near-ties the explain harness flags as
    /// noise-sensitive.
    pub fn margin(&self) -> Option<f64> {
        match (self.loopcost_before, self.loopcost_after) {
            (Some(b), Some(a)) => Some(b - a),
            _ => None,
        }
    }

    /// Renders the remark as one JSON object (one JSONL line, no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.field_str("pass", self.pass)
            .field_str("nest", &self.nest)
            .field_str("kind", self.kind.as_str())
            .field_str("reason", &self.reason);
        if let Some(b) = self.loopcost_before {
            o.field_f64("loopcost_before", b);
        }
        if let Some(a) = self.loopcost_after {
            o.field_f64("loopcost_after", a);
        }
        o.finish()
    }
}

impl fmt::Display for Remark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.kind, self.pass, self.nest, self.reason
        )?;
        if let (Some(b), Some(a)) = (self.loopcost_before, self.loopcost_after) {
            write!(f, " (LoopCost {b:.3e} -> {a:.3e})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_shape() {
        let r = Remark::new("permute", "mm/nest0:I.J.K", RemarkKind::Missed)
            .reason("direction vector not lexicographically positive at level 2")
            .cost_before(1.5);
        let j = r.to_json();
        assert!(j.starts_with("{\"pass\":\"permute\""));
        assert!(j.contains("\"kind\":\"Missed\""));
        assert!(j.contains("\"loopcost_before\":1.5"));
        assert!(!j.contains("loopcost_after"));
    }

    #[test]
    fn verifier_kinds_round_trip() {
        assert_eq!(RemarkKind::Verified.as_str(), "Verified");
        assert_eq!(RemarkKind::Diverged.as_str(), "Diverged");
        let r = Remark::new("verify", "gen-7/nest0:I.J", RemarkKind::Diverged)
            .reason("store set mismatch after permute");
        assert!(r.to_json().contains("\"kind\":\"Diverged\""));
    }

    #[test]
    fn margin_needs_both_costs() {
        let r = Remark::new("permute", "n", RemarkKind::Applied).costs(5.0, 3.0);
        assert_eq!(r.margin(), Some(2.0));
        let r = Remark::new("permute", "n", RemarkKind::Missed).cost_before(5.0);
        assert_eq!(r.margin(), None);
        assert_eq!(
            Remark::new("permute", "n", RemarkKind::Analysis).margin(),
            None
        );
    }

    #[test]
    fn display_is_human_readable() {
        let r = Remark::new("fuse", "adi/nest0:I", RemarkKind::Applied)
            .reason("fused inner K loops")
            .costs(5.0, 3.0);
        let s = format!("{r}");
        assert!(s.contains("[Applied] fuse adi/nest0:I"), "{s}");
        assert!(s.contains("LoopCost"), "{s}");
    }
}
