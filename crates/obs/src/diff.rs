//! Cross-run regression diffing of observability artifacts.
//!
//! [`diff_metrics`] compares two metrics JSON snapshots
//! (counters + histogram summaries) and [`diff_remarks`] compares two
//! remark JSONL streams. Both return a deterministic, sorted list of
//! [`DiffFinding`]s; an empty list means the runs match. The `obs_diff`
//! binary in `crates/bench` is a thin CLI over this module and exits
//! nonzero when any finding survives, which is how CI pins a committed
//! `results/baseline/` against every fresh run.
//!
//! # Determinism contract
//!
//! Wall-clock timing histograms — every name ending in `.ns` — differ
//! run-to-run by design and are **skipped** here, exactly like trace
//! timestamps are excluded from the byte-identical guarantee. Everything
//! else in the artifacts is deterministic and diffs exactly.

use crate::json::{parse, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Histogram-name suffix marking wall-clock timings, which are excluded
/// from cross-run comparison.
pub const WALL_CLOCK_SUFFIX: &str = ".ns";

/// One difference between a baseline artifact and a current one.
#[derive(Clone, Debug, PartialEq)]
pub enum DiffFinding {
    /// A counter present only in the current run.
    CounterAdded {
        /// Counter name.
        name: String,
        /// Current value.
        value: u64,
    },
    /// A counter present only in the baseline.
    CounterRemoved {
        /// Counter name.
        name: String,
        /// Baseline value.
        value: u64,
    },
    /// A counter whose relative change exceeds the threshold.
    CounterChanged {
        /// Counter name.
        name: String,
        /// Baseline value.
        before: u64,
        /// Current value.
        after: u64,
    },
    /// A (non-wall-clock) histogram present only in the current run.
    HistogramAdded {
        /// Histogram name.
        name: String,
    },
    /// A (non-wall-clock) histogram present only in the baseline.
    HistogramRemoved {
        /// Histogram name.
        name: String,
    },
    /// A histogram statistic whose relative change exceeds the
    /// threshold.
    HistogramDrift {
        /// Histogram name.
        name: String,
        /// Which statistic drifted (`count`, `sum`, `min`, `max`,
        /// `mean`, `p50`, `p95`, `p99`).
        stat: &'static str,
        /// Baseline value.
        before: f64,
        /// Current value.
        after: f64,
    },
    /// A remark line present only in the current run (count = how many
    /// more copies than the baseline has).
    RemarkAdded {
        /// The full remark JSON line.
        line: String,
        /// How many extra occurrences.
        count: u64,
    },
    /// A remark line present only in the baseline.
    RemarkVanished {
        /// The full remark JSON line.
        line: String,
        /// How many missing occurrences.
        count: u64,
    },
}

impl fmt::Display for DiffFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffFinding::CounterAdded { name, value } => {
                write!(f, "counter added: {name} = {value}")
            }
            DiffFinding::CounterRemoved { name, value } => {
                write!(f, "counter removed: {name} (was {value})")
            }
            DiffFinding::CounterChanged {
                name,
                before,
                after,
            } => write!(f, "counter changed: {name}: {before} -> {after}"),
            DiffFinding::HistogramAdded { name } => write!(f, "histogram added: {name}"),
            DiffFinding::HistogramRemoved { name } => write!(f, "histogram removed: {name}"),
            DiffFinding::HistogramDrift {
                name,
                stat,
                before,
                after,
            } => write!(f, "histogram drift: {name}.{stat}: {before} -> {after}"),
            DiffFinding::RemarkAdded { line, count } => {
                write!(f, "remark added (x{count}): {line}")
            }
            DiffFinding::RemarkVanished { line, count } => {
                write!(f, "remark vanished (x{count}): {line}")
            }
        }
    }
}

/// Relative change of `after` versus `before`; infinite when a zero
/// baseline becomes nonzero.
fn rel_change(before: f64, after: f64) -> f64 {
    if before == after {
        0.0
    } else if before == 0.0 {
        f64::INFINITY
    } else {
        (after - before).abs() / before.abs()
    }
}

fn u64_field(v: &Value) -> Option<u64> {
    v.as_u64().or_else(|| v.as_f64().map(|f| f as u64))
}

/// Compares two metrics JSON snapshots (as produced by
/// [`crate::MetricsRegistry::to_json`]). Counters and histogram
/// statistics whose relative change exceeds `threshold` are reported
/// (`threshold == 0.0` means any change); names present on only one
/// side are always reported. Histograms named `*.ns` are wall-clock
/// timings and skipped — see the module docs.
pub fn diff_metrics(
    baseline: &str,
    current: &str,
    threshold: f64,
) -> Result<Vec<DiffFinding>, String> {
    let base = parse(baseline).map_err(|e| format!("baseline metrics: {e}"))?;
    let cur = parse(current).map_err(|e| format!("current metrics: {e}"))?;
    let mut findings = Vec::new();

    let counters = |v: &Value| -> Result<BTreeMap<String, u64>, String> {
        let obj = v
            .get("counters")
            .and_then(Value::as_object)
            .ok_or("missing counters object")?;
        Ok(obj
            .iter()
            .filter_map(|(k, v)| u64_field(v).map(|n| (k.clone(), n)))
            .collect())
    };
    let bc = counters(&base)?;
    let cc = counters(&cur)?;
    for (name, &value) in &bc {
        match cc.get(name) {
            None => findings.push(DiffFinding::CounterRemoved {
                name: name.clone(),
                value,
            }),
            Some(&after) if rel_change(value as f64, after as f64) > threshold => {
                findings.push(DiffFinding::CounterChanged {
                    name: name.clone(),
                    before: value,
                    after,
                });
            }
            Some(_) => {}
        }
    }
    for (name, &value) in &cc {
        if !bc.contains_key(name) {
            findings.push(DiffFinding::CounterAdded {
                name: name.clone(),
                value,
            });
        }
    }

    type HistMap = BTreeMap<String, Vec<(String, f64)>>;
    let histograms = |v: &Value| -> Result<HistMap, String> {
        let obj = v
            .get("histograms")
            .and_then(Value::as_object)
            .ok_or("missing histograms object")?;
        Ok(obj
            .iter()
            .filter(|(k, _)| !k.ends_with(WALL_CLOCK_SUFFIX))
            .filter_map(|(k, v)| {
                let stats = v
                    .as_object()?
                    .iter()
                    .filter_map(|(s, n)| n.as_f64().map(|f| (s.clone(), f)))
                    .collect();
                Some((k.clone(), stats))
            })
            .collect())
    };
    const STATS: [&str; 8] = ["count", "sum", "min", "max", "mean", "p50", "p95", "p99"];
    let bh = histograms(&base)?;
    let ch = histograms(&cur)?;
    for (name, stats) in &bh {
        match ch.get(name) {
            None => findings.push(DiffFinding::HistogramRemoved { name: name.clone() }),
            Some(cur_stats) => {
                for &stat in &STATS {
                    let lookup = |list: &[(String, f64)]| {
                        list.iter().find(|(s, _)| s == stat).map(|&(_, v)| v)
                    };
                    if let (Some(before), Some(after)) = (lookup(stats), lookup(cur_stats)) {
                        if rel_change(before, after) > threshold {
                            findings.push(DiffFinding::HistogramDrift {
                                name: name.clone(),
                                stat,
                                before,
                                after,
                            });
                        }
                    }
                }
            }
        }
    }
    for name in ch.keys() {
        if !bh.contains_key(name) {
            findings.push(DiffFinding::HistogramAdded { name: name.clone() });
        }
    }

    Ok(findings)
}

/// Compares two remark JSONL streams line-by-line as multisets: a line
/// appearing more times in `current` than in `baseline` is
/// [`DiffFinding::RemarkAdded`], the reverse is
/// [`DiffFinding::RemarkVanished`]. Remark lines are fully
/// deterministic, so exact string comparison is the right granularity;
/// ordering differences alone do not produce findings.
pub fn diff_remarks(baseline: &str, current: &str) -> Result<Vec<DiffFinding>, String> {
    let mut counts: BTreeMap<&str, i64> = BTreeMap::new();
    for (n, line) in baseline.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        parse(line).map_err(|e| format!("baseline remarks line {}: {e}", n + 1))?;
        *counts.entry(line).or_insert(0) -= 1;
    }
    for (n, line) in current.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        parse(line).map_err(|e| format!("current remarks line {}: {e}", n + 1))?;
        *counts.entry(line).or_insert(0) += 1;
    }
    let mut findings = Vec::new();
    for (line, delta) in counts {
        if delta > 0 {
            findings.push(DiffFinding::RemarkAdded {
                line: line.to_string(),
                count: delta as u64,
            });
        } else if delta < 0 {
            findings.push(DiffFinding::RemarkVanished {
                line: line.to_string(),
                count: (-delta) as u64,
            });
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn registry() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter("sim.accesses", 1000);
        m.counter("sim.misses", 125);
        m.record("cost.ratio", 4.0);
        m.record("cost.ratio", 8.0);
        m.record("pass.permute.ns", 12345.0);
        m
    }

    #[test]
    fn identical_snapshots_have_no_findings() {
        let j = registry().to_json();
        assert_eq!(diff_metrics(&j, &j, 0.0).unwrap(), vec![]);
    }

    #[test]
    fn perturbed_counter_is_reported() {
        let base = registry().to_json();
        let mut cur = registry();
        cur.counter("sim.misses", 1);
        let findings = diff_metrics(&base, &cur.to_json(), 0.0).unwrap();
        assert_eq!(
            findings,
            vec![DiffFinding::CounterChanged {
                name: "sim.misses".into(),
                before: 125,
                after: 126,
            }]
        );
        assert!(findings[0].to_string().contains("125 -> 126"));
    }

    #[test]
    fn threshold_suppresses_small_drift() {
        let base = registry().to_json();
        let mut cur = registry();
        cur.counter("sim.misses", 1); // 0.8% change
        assert_eq!(diff_metrics(&base, &cur.to_json(), 0.01).unwrap(), vec![]);
        cur.counter("sim.misses", 24); // now 20%
        assert_ne!(diff_metrics(&base, &cur.to_json(), 0.01).unwrap(), vec![]);
    }

    #[test]
    fn added_and_removed_names_always_report() {
        let base = registry().to_json();
        let mut cur = registry();
        cur.counter("new.counter", 7);
        cur.record("new.hist", 1.0);
        let findings = diff_metrics(&base, &cur.to_json(), f64::INFINITY).unwrap();
        assert!(findings.contains(&DiffFinding::CounterAdded {
            name: "new.counter".into(),
            value: 7,
        }));
        assert!(findings.contains(&DiffFinding::HistogramAdded {
            name: "new.hist".into(),
        }));
        let reversed = diff_metrics(&cur.to_json(), &base, f64::INFINITY).unwrap();
        assert!(reversed.contains(&DiffFinding::CounterRemoved {
            name: "new.counter".into(),
            value: 7,
        }));
        assert!(reversed.contains(&DiffFinding::HistogramRemoved {
            name: "new.hist".into(),
        }));
    }

    #[test]
    fn wall_clock_histograms_are_skipped() {
        let base = registry().to_json();
        let mut cur = registry();
        cur.record("pass.permute.ns", 999999.0); // timings differ run-to-run
        assert_eq!(diff_metrics(&base, &cur.to_json(), 0.0).unwrap(), vec![]);
    }

    #[test]
    fn histogram_drift_names_the_stat() {
        let base = registry().to_json();
        let mut cur = registry();
        cur.record("cost.ratio", 64.0);
        let findings = diff_metrics(&base, &cur.to_json(), 0.0).unwrap();
        assert!(findings.iter().any(
            |f| matches!(f, DiffFinding::HistogramDrift { name, stat, .. }
                if name == "cost.ratio" && *stat == "count")
        ));
        assert!(findings
            .iter()
            .any(|f| matches!(f, DiffFinding::HistogramDrift { stat, .. } if *stat == "max")));
    }

    #[test]
    fn remark_multiset_diff() {
        let base = "{\"pass\":\"permute\"}\n{\"pass\":\"fuse\"}\n{\"pass\":\"fuse\"}\n";
        let cur = "{\"pass\":\"fuse\"}\n{\"pass\":\"permute\"}\n{\"pass\":\"tile\"}\n";
        // Reordering alone is fine; one `fuse` vanished, one `tile` appeared.
        let findings = diff_remarks(base, cur).unwrap();
        assert_eq!(
            findings,
            vec![
                DiffFinding::RemarkVanished {
                    line: "{\"pass\":\"fuse\"}".into(),
                    count: 1,
                },
                DiffFinding::RemarkAdded {
                    line: "{\"pass\":\"tile\"}".into(),
                    count: 1,
                },
            ]
        );
        assert_eq!(diff_remarks(base, base).unwrap(), vec![]);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(diff_metrics("{", "{}", 0.0).is_err());
        assert!(diff_metrics("{}", "{}", 0.0).is_err(), "missing counters");
        assert!(diff_remarks("not json\n", "").is_err());
    }
}
