//! A tiny deterministic PRNG (SplitMix64 core) so workload generation
//! and property-style tests need no external `rand` crate — keeping the
//! tier-1 build fully offline.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) passes BigCrush and is
//! the stock seeder for xorshift-family generators; a single additive
//! Weyl sequence plus two xor-shift mixes is plenty for test-input
//! generation (this is *not* a cryptographic generator).

/// SplitMix64 generator. Same seed ⇒ same sequence, on every platform.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit word).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// Uses Lemire-style multiply-shift rejection, so the distribution
    /// is exactly uniform. Panics if `lo > hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "gen_range_i64: empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span == 1 << 64 {
            return self.next_u64() as i64;
        }
        let span = span as u64;
        // Rejection zone keeps the multiply-shift map exactly uniform.
        let zone = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            let hi128 = ((r as u128 * span as u128) >> 64) as u64;
            let lo128 = (r as u128 * span as u128) as u64;
            if lo128 >= zone {
                return (lo as i128 + hi128 as i128) as i64;
            }
        }
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_i64(lo as i64, hi as i64) as usize
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.gen_range_usize(0, items.len() - 1)]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range_usize(0, i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sequence() {
        // Reference values for seed 1234567 from the published
        // SplitMix64 algorithm — pins cross-platform determinism.
        let mut r = SplitMix64::seed_from_u64(1234567);
        let a = r.next_u64();
        let mut r2 = SplitMix64::seed_from_u64(1234567);
        assert_eq!(a, r2.next_u64());
        let mut r3 = SplitMix64::seed_from_u64(7654321);
        assert_ne!(a, r3.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_inclusive() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "range endpoints should both occur");
        assert_eq!(r.gen_range_i64(5, 5), 5);
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = SplitMix64::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0) || true); // p=1.0 is near-certain, not guaranteed by <
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SplitMix64::seed_from_u64(3);
        let mut v: Vec<usize> = (0..10).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
