//! Data-dependence analysis for the loop-nest IR.
//!
//! The locality algorithms of Carr–McKinley–Tseng consume *hybrid
//! distance/direction vectors* ([`DepVector`]): one entry per common
//! enclosing loop, outermost first, each entry either an exact distance or
//! a direction. This crate computes them with the classic subscript test
//! battery (ZIV, strong SIV, weak-zero SIV, weak-crossing SIV, and a
//! GCD-based MIV fallback — the tests of Goff/Kennedy/Tseng's practical
//! dependence testing), assembles statement-level dependence graphs, and
//! exposes the queries the transformations need:
//!
//! * legality of a loop permutation (lexicographic positivity of permuted
//!   vectors),
//! * fusion-preventing dependences between adjacent nests,
//! * recurrences (SCCs) at a given loop level, for distribution.
//!
//! # Example
//!
//! ```
//! use cmt_ir::build::ProgramBuilder;
//! use cmt_ir::expr::Expr;
//! use cmt_ir::affine::Affine;
//! use cmt_dependence::analyze_nest;
//!
//! // DO I = 2, N:  A(I) = A(I-1)  — flow dependence, distance 1.
//! let mut b = ProgramBuilder::new("rec");
//! let n = b.param("N");
//! let a = b.array("A", vec![n.into()]);
//! b.loop_("I", 2, n, |b| {
//!     let i = b.var("I");
//!     let lhs = b.at(a, [i]);
//!     let rhs = Expr::load(b.at_vec(a, vec![Affine::var(i) - 1]));
//!     b.assign(lhs, rhs);
//! });
//! let p = b.finish();
//! let g = analyze_nest(&p, p.nests()[0]);
//! assert!(g.deps().iter().any(|d| d.vector.carried_level() == Some(0)));
//! ```
//!
//! Direction vectors decide permutation legality directly: a
//! permutation is legal iff every permuted vector stays
//! lexicographically non-negative.
//!
//! ```
//! use cmt_dependence::{DepElem, DepVector};
//!
//! // A(I,J) = A(I-1,J+1): dependence vector (1, -1).
//! let v = DepVector::new(vec![DepElem::Dist(1), DepElem::Dist(-1)]);
//! assert!(v.is_lex_nonnegative());                  // original order: legal
//! assert!(!v.permuted(&[1, 0]).is_lex_nonnegative()); // interchange: illegal
//! ```

#![warn(missing_docs)]

pub mod dot;
pub mod graph;
pub mod scc;
pub mod subscript;
pub mod vector;

pub use graph::{
    analyze_fused_pair, analyze_nest, DepKind, DepSummary, Dependence, DependenceGraph,
};
pub use vector::{DepElem, DepVector, Direction, LexSign};
