//! Graphviz rendering of dependence graphs.
//!
//! `to_dot` emits a `digraph` with one node per statement and one edge
//! per dependence, labeled with kind and vector — the picture compiler
//! writers draw on whiteboards:
//!
//! ```text
//! dot -Tpng deps.dot -o deps.png
//! ```

use crate::graph::{DepKind, DependenceGraph};
use cmt_ir::pretty::ref_str;
use cmt_ir::program::Program;
use cmt_ir::visit::stmts_with_context;
use std::fmt::Write as _;

/// Renders the dependence graph of `program`'s statements as Graphviz
/// source. Statement nodes are labeled with their source text; edge
/// styles distinguish kinds (solid = flow, dashed = anti, bold = output,
/// dotted = input).
pub fn to_dot(program: &Program, graph: &DependenceGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph deps {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    let ctxs = stmts_with_context(program.body());
    for (_, s) in &ctxs {
        let label = format!(
            "{}: {} = …",
            s.id(),
            ref_str(program, s.lhs()).replace('"', "'")
        );
        let _ = writeln!(out, "  \"{}\" [label=\"{}\"];", s.id(), label);
    }
    for d in graph.deps() {
        let style = match d.kind {
            DepKind::Flow => "solid",
            DepKind::Anti => "dashed",
            DepKind::Output => "bold",
            DepKind::Input => "dotted",
        };
        let color = match d.kind {
            DepKind::Flow => "black",
            DepKind::Anti => "blue",
            DepKind::Output => "red",
            DepKind::Input => "gray",
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [style={style}, color={color}, label=\"{} {}\"];",
            d.src, d.dst, d.kind, d.vector
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::analyze_nodes;
    use cmt_ir::affine::Affine;
    use cmt_ir::build::ProgramBuilder;
    use cmt_ir::expr::Expr;

    #[test]
    fn emits_wellformed_dot() {
        let mut b = ProgramBuilder::new("d");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        b.loop_("I", 2, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            let rhs = Expr::load(b.at_vec(a, vec![Affine::var(i) - 1]));
            b.assign(lhs, rhs);
        });
        let p = b.finish();
        let g = analyze_nodes(p.body());
        let dot = to_dot(&p, &g);
        assert!(dot.starts_with("digraph deps {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("s0"), "{dot}");
        assert!(dot.contains("flow"), "{dot}");
        assert!(dot.contains("(1)"), "distance label expected: {dot}");
        // Balanced braces and quotes.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert_eq!(dot.matches('"').count() % 2, 0);
    }

    #[test]
    fn kinds_get_distinct_styles() {
        // A(I)=A(I) read+write (same location) → anti (dashed) + flow.
        let mut b = ProgramBuilder::new("k");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        let c = b.array("C", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(c, [i]);
            let rhs = Expr::load(b.at(a, [i])) + Expr::load(b.at(a, [i]));
            b.assign(lhs, rhs);
        });
        let p = b.finish();
        let g = analyze_nodes(p.body());
        let dot = to_dot(&p, &g);
        assert!(dot.contains("dotted"), "input deps rendered: {dot}");
    }
}
