//! Hybrid distance/direction vectors and their algebra.
//!
//! A [`DepVector`] has one [`DepElem`] per common enclosing loop,
//! outermost first. Exact distances are kept when a subscript test proves
//! them (the "most precise information derivable", as the paper puts it);
//! otherwise a [`Direction`] abstracts the sign of the iteration
//! difference `sink − source`.

use std::fmt;

/// The sign relation between source and sink iterations of one loop.
///
/// `Lt` means the source iteration is *earlier* (`sink − source > 0`,
/// conventionally written `<`), `Gt` later, `Eq` the same iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `<` : carried forward by this loop.
    Lt,
    /// `=` : same iteration of this loop.
    Eq,
    /// `>` : would be carried backward (only legal under an outer `<`).
    Gt,
    /// `≤` : `<` or `=`.
    Le,
    /// `≥` : `>` or `=`.
    Ge,
    /// `*` : unknown, any relation possible.
    Star,
}

impl Direction {
    /// True if the direction admits `<`.
    pub fn may_lt(self) -> bool {
        matches!(self, Direction::Lt | Direction::Le | Direction::Star)
    }

    /// True if the direction admits `=`.
    pub fn may_eq(self) -> bool {
        matches!(
            self,
            Direction::Eq | Direction::Le | Direction::Ge | Direction::Star
        )
    }

    /// True if the direction admits `>`.
    pub fn may_gt(self) -> bool {
        matches!(self, Direction::Gt | Direction::Ge | Direction::Star)
    }

    /// The direction with source and sink swapped (`<` ↔ `>`).
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Lt => Direction::Gt,
            Direction::Gt => Direction::Lt,
            Direction::Le => Direction::Ge,
            Direction::Ge => Direction::Le,
            d => d,
        }
    }

    /// The most precise direction containing both inputs.
    pub fn union(self, other: Direction) -> Direction {
        use Direction::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (Lt, Eq) | (Eq, Lt) | (Lt, Le) | (Le, Lt) | (Eq, Le) | (Le, Eq) => Le,
            (Gt, Eq) | (Eq, Gt) | (Gt, Ge) | (Ge, Gt) | (Eq, Ge) | (Ge, Eq) => Ge,
            _ => Star,
        }
    }

    /// The intersection of two directions, `None` if empty (no dependence).
    pub fn intersect(self, other: Direction) -> Option<Direction> {
        let lt = self.may_lt() && other.may_lt();
        let eq = self.may_eq() && other.may_eq();
        let gt = self.may_gt() && other.may_gt();
        Direction::from_possibilities(lt, eq, gt)
    }

    /// Builds a direction from the set of admitted relations.
    pub fn from_possibilities(lt: bool, eq: bool, gt: bool) -> Option<Direction> {
        use Direction::*;
        match (lt, eq, gt) {
            (true, false, false) => Some(Lt),
            (false, true, false) => Some(Eq),
            (false, false, true) => Some(Gt),
            (true, true, false) => Some(Le),
            (false, true, true) => Some(Ge),
            (true, true, true) | (true, false, true) => Some(Star),
            (false, false, false) => None,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Lt => "<",
            Direction::Eq => "=",
            Direction::Gt => ">",
            Direction::Le => "<=",
            Direction::Ge => ">=",
            Direction::Star => "*",
        };
        f.write_str(s)
    }
}

/// One entry of a hybrid vector: an exact distance or a direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepElem {
    /// Exact iteration distance `sink − source`.
    Dist(i64),
    /// Abstract direction.
    Dir(Direction),
}

impl DepElem {
    /// The direction abstraction of this element.
    pub fn direction(self) -> Direction {
        match self {
            DepElem::Dist(d) => match d.cmp(&0) {
                std::cmp::Ordering::Greater => Direction::Lt,
                std::cmp::Ordering::Equal => Direction::Eq,
                std::cmp::Ordering::Less => Direction::Gt,
            },
            DepElem::Dir(d) => d,
        }
    }

    /// True when the element is exactly zero / `=`.
    pub fn is_eq(self) -> bool {
        matches!(self, DepElem::Dist(0) | DepElem::Dir(Direction::Eq))
    }

    /// Element with source and sink swapped.
    pub fn reversed(self) -> DepElem {
        match self {
            DepElem::Dist(d) => DepElem::Dist(-d),
            DepElem::Dir(d) => DepElem::Dir(d.reversed()),
        }
    }

    /// Element after reversing the *loop's* iteration order (loop
    /// reversal): the iteration difference negates, exactly like swapping
    /// source and sink for this entry alone.
    pub fn loop_reversed(self) -> DepElem {
        self.reversed()
    }
}

impl fmt::Display for DepElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepElem::Dist(d) => write!(f, "{d}"),
            DepElem::Dir(d) => write!(f, "{d}"),
        }
    }
}

/// Sign of a vector under lexicographic order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LexSign {
    /// Definitely positive (a plausible, loop-carried dependence).
    Positive,
    /// All entries zero (loop-independent).
    Zero,
    /// Definitely negative (stored dependences never are; appears while
    /// normalizing raw test output).
    Negative,
    /// Cannot be determined from directions alone.
    Unknown,
}

/// A hybrid distance/direction vector, outermost loop first.
///
/// # Example
///
/// ```
/// use cmt_dependence::vector::{DepElem, DepVector, Direction, LexSign};
///
/// let v = DepVector::new(vec![DepElem::Dist(0), DepElem::Dist(1)]);
/// assert_eq!(v.lex_sign(), LexSign::Positive);
/// assert_eq!(v.carried_level(), Some(1));
/// // Interchanging the loops keeps it legal:
/// assert!(v.permuted(&[1, 0]).is_lex_nonnegative());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DepVector(Vec<DepElem>);

impl DepVector {
    /// Creates a vector from entries, outermost first.
    pub fn new(elems: Vec<DepElem>) -> Self {
        DepVector(elems)
    }

    /// A loop-independent (all-`=`) vector of the given length.
    pub fn loop_independent(len: usize) -> Self {
        DepVector(vec![DepElem::Dist(0); len])
    }

    /// The entries, outermost first.
    pub fn elems(&self) -> &[DepElem] {
        &self.0
    }

    /// Number of entries (common loops).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a zero-length vector (statements with no common loops).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The lexicographic sign, derived from directions.
    pub fn lex_sign(&self) -> LexSign {
        for e in &self.0 {
            match e.direction() {
                Direction::Lt => return LexSign::Positive,
                Direction::Gt => return LexSign::Negative,
                Direction::Eq => continue,
                // `≤`: the `<` branch is positive, the `=` branch defers —
                // never negative at this entry, so keep scanning: if the
                // remainder is non-negative the whole vector is.
                Direction::Le => {
                    return match DepVector(self.0[1..].to_vec()).lex_sign() {
                        LexSign::Positive | LexSign::Zero => LexSign::Positive,
                        _ => LexSign::Unknown,
                    }
                }
                Direction::Ge | Direction::Star => return LexSign::Unknown,
            }
        }
        LexSign::Zero
    }

    /// True if the vector is *provably* lexicographically non-negative —
    /// the legality criterion for a transformed dependence. Conservative:
    /// `Unknown` counts as illegal.
    pub fn is_lex_nonnegative(&self) -> bool {
        let mut idx = 0;
        while idx < self.0.len() {
            match self.0[idx].direction() {
                Direction::Lt => return true,
                Direction::Gt | Direction::Ge | Direction::Star => return false,
                Direction::Eq | Direction::Le => idx += 1,
            }
        }
        true
    }

    /// The outermost loop level (0-based) that *definitely* carries the
    /// dependence, or `None` when loop-independent or unknown.
    pub fn carried_level(&self) -> Option<usize> {
        for (k, e) in self.0.iter().enumerate() {
            match e.direction() {
                Direction::Lt => return Some(k),
                Direction::Eq => continue,
                _ => return None,
            }
        }
        None
    }

    /// The outermost level that *may* carry the dependence (first entry
    /// that admits `<` or `>`), or `None` when definitely
    /// loop-independent. Distribution's "carried at level j or deeper"
    /// restriction uses the may-carry level.
    pub fn may_carry_level(&self) -> Option<usize> {
        for (k, e) in self.0.iter().enumerate() {
            if !e.is_eq() {
                return Some(k);
            }
        }
        None
    }

    /// True when every entry is exactly `=`: the dependence occurs within
    /// a single iteration of every common loop.
    pub fn is_loop_independent(&self) -> bool {
        self.0.iter().all(|e| e.is_eq())
    }

    /// The vector under a permutation of loops: `perm[k]` is the index in
    /// the *original* vector of the entry that moves to position `k`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..len`.
    pub fn permuted(&self, perm: &[usize]) -> DepVector {
        assert_eq!(perm.len(), self.0.len(), "permutation length mismatch");
        let mut seen = vec![false; perm.len()];
        let out = perm
            .iter()
            .map(|&src| {
                assert!(!seen[src], "not a permutation");
                seen[src] = true;
                self.0[src]
            })
            .collect();
        DepVector(out)
    }

    /// The vector after reversing the loop at `level`.
    pub fn with_level_reversed(&self, level: usize) -> DepVector {
        let mut out = self.0.clone();
        out[level] = out[level].loop_reversed();
        DepVector(out)
    }

    /// The fully reversed vector (source and sink swapped).
    pub fn reversed(&self) -> DepVector {
        DepVector(self.0.iter().map(|e| e.reversed()).collect())
    }

    /// Truncates to the outermost `n` entries (used when comparing nests
    /// of different depths during fusion).
    pub fn truncated(&self, n: usize) -> DepVector {
        DepVector(self.0[..n.min(self.0.len())].to_vec())
    }
}

impl fmt::Debug for DepVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for DepVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, e) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DepElem::{Dir, Dist};
    use Direction::*;

    #[test]
    fn direction_possibilities() {
        assert!(Star.may_lt() && Star.may_eq() && Star.may_gt());
        assert!(Le.may_lt() && Le.may_eq() && !Le.may_gt());
        assert_eq!(Lt.reversed(), Gt);
        assert_eq!(Le.reversed(), Ge);
        assert_eq!(Eq.reversed(), Eq);
    }

    #[test]
    fn direction_union_and_intersect() {
        assert_eq!(Lt.union(Eq), Le);
        assert_eq!(Gt.union(Eq), Ge);
        assert_eq!(Lt.union(Gt), Star);
        assert_eq!(Le.intersect(Ge), Some(Eq));
        assert_eq!(Lt.intersect(Gt), None);
        assert_eq!(Star.intersect(Le), Some(Le));
    }

    #[test]
    fn lex_sign_cases() {
        assert_eq!(DepVector::new(vec![Dist(1)]).lex_sign(), LexSign::Positive);
        assert_eq!(
            DepVector::new(vec![Dist(0), Dist(0)]).lex_sign(),
            LexSign::Zero
        );
        assert_eq!(
            DepVector::new(vec![Dist(0), Dist(-2)]).lex_sign(),
            LexSign::Negative
        );
        assert_eq!(
            DepVector::new(vec![Dir(Star), Dist(1)]).lex_sign(),
            LexSign::Unknown
        );
        // (≤, <) is positive: < branch positive, = branch then <.
        assert_eq!(
            DepVector::new(vec![Dir(Le), Dist(1)]).lex_sign(),
            LexSign::Positive
        );
        // (≤, >) unknown: = branch then > is negative.
        assert_eq!(
            DepVector::new(vec![Dir(Le), Dist(-1)]).lex_sign(),
            LexSign::Unknown
        );
    }

    #[test]
    fn legality_scan() {
        assert!(DepVector::new(vec![Dist(1), Dist(-5)]).is_lex_nonnegative());
        assert!(!DepVector::new(vec![Dist(-1)]).is_lex_nonnegative());
        assert!(!DepVector::new(vec![Dir(Star)]).is_lex_nonnegative());
        assert!(DepVector::new(vec![Dir(Le), Dist(0)]).is_lex_nonnegative());
        assert!(DepVector::loop_independent(3).is_lex_nonnegative());
    }

    #[test]
    fn carried_levels() {
        let v = DepVector::new(vec![Dist(0), Dist(2), Dir(Star)]);
        assert_eq!(v.carried_level(), Some(1));
        assert_eq!(v.may_carry_level(), Some(1));
        let li = DepVector::loop_independent(2);
        assert_eq!(li.carried_level(), None);
        assert!(li.is_loop_independent());
        let unk = DepVector::new(vec![Dir(Star), Dist(1)]);
        assert_eq!(unk.carried_level(), None);
        assert_eq!(unk.may_carry_level(), Some(0));
    }

    #[test]
    fn permuted_interchange() {
        let v = DepVector::new(vec![Dist(1), Dist(-1)]);
        let w = v.permuted(&[1, 0]);
        assert_eq!(w.elems(), &[Dist(-1), Dist(1)]);
        assert!(!w.is_lex_nonnegative());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_rejects_non_permutation() {
        let v = DepVector::new(vec![Dist(1), Dist(2)]);
        let _ = v.permuted(&[0, 0]);
    }

    #[test]
    fn reversal_of_one_level() {
        let v = DepVector::new(vec![Dist(0), Dist(-1)]);
        let w = v.with_level_reversed(1);
        assert_eq!(w.elems(), &[Dist(0), Dist(1)]);
        assert!(w.is_lex_nonnegative());
    }

    #[test]
    fn display_formats() {
        let v = DepVector::new(vec![Dist(1), Dir(Star), Dir(Le)]);
        assert_eq!(v.to_string(), "(1,*,<=)");
    }
}
