//! Statement-level dependence graphs.
//!
//! [`analyze_nest`] builds the dependence graph of one loop nest:
//! normalized (lexicographically non-negative) [`Dependence`] edges between
//! statements, classified flow/anti/output/input. [`analyze_fused_pair`]
//! computes cross-nest dependences in the aligned iteration space of two
//! fusion candidates, which is exactly the legality and profitability
//! input the paper's `Fuse` algorithm needs.

use crate::subscript::{test_dependence_with_ranges, LoopCtx, VarRange};
use crate::vector::{DepElem, DepVector, Direction};
use cmt_ir::ids::{LoopId, StmtId};
use cmt_ir::node::Loop;
use cmt_ir::program::Program;
use cmt_ir::stmt::{ArrayRef, Stmt};
use cmt_ir::visit::stmts_with_context;
use std::fmt;

/// Classification of a dependence by the access kinds of its endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write → read (true dependence).
    Flow,
    /// Read → write.
    Anti,
    /// Write → write.
    Output,
    /// Read → read. Irrelevant for legality; drives group-reuse discovery.
    Input,
}

impl DepKind {
    fn of(src_is_write: bool, dst_is_write: bool) -> DepKind {
        match (src_is_write, dst_is_write) {
            (true, false) => DepKind::Flow,
            (false, true) => DepKind::Anti,
            (true, true) => DepKind::Output,
            (false, false) => DepKind::Input,
        }
    }

    /// True for the kinds that constrain transformations (everything but
    /// input dependences).
    pub fn constrains(self) -> bool {
        !matches!(self, DepKind::Input)
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Input => "input",
        };
        f.write_str(s)
    }
}

/// One normalized dependence edge.
#[derive(Clone, Debug, PartialEq)]
pub struct Dependence {
    /// Source statement (executes first).
    pub src: StmtId,
    /// Sink statement.
    pub dst: StmtId,
    /// Access-kind classification.
    pub kind: DepKind,
    /// Hybrid vector over the common loops, lexicographically
    /// non-negative by construction.
    pub vector: DepVector,
    /// The common enclosing loops the vector ranges over, outermost
    /// first.
    pub loops: Vec<LoopId>,
    /// The source reference of the underlying access pair.
    pub src_ref: ArrayRef,
    /// The sink reference of the underlying access pair.
    pub dst_ref: ArrayRef,
}

impl Dependence {
    /// True when the dependence may be carried at `level` (0-based) or
    /// deeper, or is loop-independent — i.e. it survives restriction to an
    /// inner loop region, the filter `Distribute` applies.
    pub fn survives_restriction_to(&self, level: usize) -> bool {
        self.vector
            .elems()
            .iter()
            .take(level)
            .all(|e| e.direction().may_eq())
    }
}

/// The dependence graph of one nest (or of a fused pair of nests).
#[derive(Clone, Debug, Default)]
pub struct DependenceGraph {
    deps: Vec<Dependence>,
    stmts: Vec<StmtId>,
}

impl DependenceGraph {
    /// All dependence edges.
    pub fn deps(&self) -> &[Dependence] {
        &self.deps
    }

    /// The statements covered, in source order.
    pub fn stmts(&self) -> &[StmtId] {
        &self.stmts
    }

    /// Edges that constrain transformations (flow/anti/output).
    pub fn constraining(&self) -> impl Iterator<Item = &Dependence> {
        self.deps.iter().filter(|d| d.kind.constrains())
    }

    /// Edges between two given statements.
    pub fn between(&self, src: StmtId, dst: StmtId) -> impl Iterator<Item = &Dependence> {
        self.deps
            .iter()
            .filter(move |d| d.src == src && d.dst == dst)
    }

    /// Aggregate view of the graph: per-kind counts and the histogram of
    /// definitely-carried levels.
    pub fn summary(&self) -> DepSummary {
        let mut s = DepSummary::default();
        for d in &self.deps {
            match d.kind {
                DepKind::Flow => s.flow += 1,
                DepKind::Anti => s.anti += 1,
                DepKind::Output => s.output += 1,
                DepKind::Input => s.input += 1,
            }
            if d.vector.is_loop_independent() {
                s.loop_independent += 1;
            } else if let Some(level) = d.vector.carried_level() {
                if s.carried_by_level.len() <= level {
                    s.carried_by_level.resize(level + 1, 0);
                }
                s.carried_by_level[level] += 1;
            } else {
                s.unknown_carrier += 1;
            }
        }
        s
    }
}

/// Aggregate statistics of a [`DependenceGraph`]; see
/// [`DependenceGraph::summary`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DepSummary {
    /// True (write→read) dependences.
    pub flow: usize,
    /// Anti (read→write) dependences.
    pub anti: usize,
    /// Output (write→write) dependences.
    pub output: usize,
    /// Input (read→read) dependences.
    pub input: usize,
    /// Loop-independent edges (any kind).
    pub loop_independent: usize,
    /// Edges definitely carried at each loop level (outermost = 0).
    pub carried_by_level: Vec<usize>,
    /// Edges whose carrier level the tests could not pin down.
    pub unknown_carrier: usize,
}

impl DepSummary {
    /// Total edges.
    pub fn total(&self) -> usize {
        self.flow + self.anti + self.output + self.input
    }
}

/// Builds the [`LoopCtx`] the subscript tester needs from a loop header:
/// bounds become known constants only when fully constant.
pub fn loop_ctx(l: &Loop) -> LoopCtx {
    let bounds = if l.lower().is_constant() && l.upper().is_constant() {
        Some((l.lower().constant_term(), l.upper().constant_term()))
    } else {
        None
    };
    LoopCtx {
        var: l.var(),
        bounds,
        step: l.step(),
        lower_aff: Some(l.lower().clone()),
        upper_aff: Some(l.upper().clone()),
    }
}

/// Analyzes one loop nest, producing its dependence graph.
///
/// Statements anywhere in the (possibly imperfect) nest are paired; the
/// vector of each dependence ranges over the loops common to both
/// statements.
pub fn analyze_nest(_program: &Program, nest: &Loop) -> DependenceGraph {
    let nodes = [cmt_ir::node::Node::Loop(nest.clone())];
    analyze_nodes(&nodes)
}

/// Analyzes an arbitrary body (used for whole programs and unit tests).
pub fn analyze_nodes(nodes: &[cmt_ir::node::Node]) -> DependenceGraph {
    let ctxs = stmts_with_context(nodes);
    let mut graph = DependenceGraph {
        stmts: ctxs.iter().map(|(_, s)| s.id()).collect(),
        ..Default::default()
    };

    for (i, (loops1, s1)) in ctxs.iter().enumerate() {
        for (loops2, s2) in ctxs.iter().skip(i) {
            let same_stmt = s1.id() == s2.id();
            // Common loops: the shared prefix of the two loop stacks.
            let mut common: Vec<&Loop> = Vec::new();
            for (a, b) in loops1.iter().zip(loops2.iter()) {
                if a.id() == b.id() {
                    common.push(a);
                } else {
                    break;
                }
            }
            let src_ranges = foreign_ranges(loops1, common.len());
            let dst_ranges = foreign_ranges(loops2, common.len());
            pair_deps(
                s1,
                s2,
                &common,
                &src_ranges,
                &dst_ranges,
                same_stmt,
                &mut graph.deps,
            );
        }
    }
    graph
}

/// The [`VarRange`]s of the loops below the common prefix — the "foreign"
/// variables of a statement pair.
fn foreign_ranges(stack: &[&Loop], common_len: usize) -> Vec<VarRange> {
    stack[common_len..]
        .iter()
        .map(|l| VarRange {
            var: l.var(),
            lower: l.lower().clone(),
            upper: l.upper().clone(),
        })
        .collect()
}

/// Computes dependences between two adjacent nests *as if fused*: loops
/// are aligned positionally along their perfect chains and the second
/// nest's index variables are renamed to the first's. Returned edges run
/// from statements of `first` to statements of `second` (or the reverse
/// for backward-normalized pairs).
///
/// The caller is responsible for checking header compatibility; alignment
/// stops at the shorter perfect chain.
pub fn analyze_fused_pair(_program: &Program, first: &Loop, second: &Loop) -> Vec<Dependence> {
    let chain1 = cmt_ir::visit::perfect_chain(first);
    let chain2 = cmt_ir::visit::perfect_chain(second);
    let depth = chain1.len().min(chain2.len());
    let common: Vec<&Loop> = chain1[..depth].to_vec();

    // Rename chain2 vars → chain1 vars in second-nest references.
    let rename: Vec<(cmt_ir::ids::VarId, cmt_ir::ids::VarId)> = (0..depth)
        .map(|k| (chain2[k].var(), chain1[k].var()))
        .collect();
    let rename_ref =
        |r: &ArrayRef| -> ArrayRef { r.map_subscripts(|sub| sub.rename_vars(&rename)) };

    let nodes1 = [cmt_ir::node::Node::Loop(first.clone())];
    let nodes2 = [cmt_ir::node::Node::Loop(second.clone())];
    let ctxs1 = stmts_with_context(&nodes1);
    let ctxs2 = stmts_with_context(&nodes2);
    let lead = |stack: &[&Loop], chain: &[&Loop]| -> usize {
        stack
            .iter()
            .zip(chain.iter())
            .take_while(|(a, b)| a.id() == b.id())
            .count()
    };
    let rename_affine = |sub: &cmt_ir::affine::Affine| sub.rename_vars(&rename);
    let mut deps = Vec::new();
    for (stack1, s1) in &ctxs1 {
        for (stack2, s2) in &ctxs2 {
            let d = lead(stack1, &chain1[..depth]).min(lead(stack2, &chain2[..depth]));
            let common_d = &common[..d];
            let renamed = s2.map_refs(|r| rename_ref(r));
            let src_ranges = foreign_ranges(stack1, d);
            // Foreign ranges of the second statement must be expressed in
            // the first nest's variables.
            let dst_ranges: Vec<VarRange> = stack2[d..]
                .iter()
                .map(|l| VarRange {
                    var: l.var(),
                    lower: rename_affine(l.lower()),
                    upper: rename_affine(l.upper()),
                })
                .collect();
            pair_deps(
                s1,
                &renamed,
                common_d,
                &src_ranges,
                &dst_ranges,
                false,
                &mut deps,
            );
        }
    }
    deps
}

/// Emits all normalized dependences between the reference pairs of two
/// statements under the given common loops.
fn pair_deps(
    s1: &Stmt,
    s2: &Stmt,
    common: &[&Loop],
    src_ranges: &[VarRange],
    dst_ranges: &[VarRange],
    same_stmt: bool,
    out: &mut Vec<Dependence>,
) {
    let ctxs: Vec<LoopCtx> = common.iter().map(|l| loop_ctx(l)).collect();
    let loop_ids: Vec<LoopId> = common.iter().map(|l| l.id()).collect();

    let refs1 = s1.refs(); // lhs first, then loads
    let refs2 = s2.refs();

    for (p, r1) in refs1.iter().enumerate() {
        for (q, r2) in refs2.iter().enumerate() {
            if r1.array() != r2.array() {
                continue;
            }
            let w1 = p == 0;
            let w2 = q == 0;
            if same_stmt {
                // Avoid duplicating symmetric pairs within one statement:
                // keep pairs (p ≤ q); the write is index 0 so write/read
                // pairs always survive, and read/read pairs appear once.
                if p > q {
                    continue;
                }
                // A reference paired with itself only matters for writes
                // (output self-dependence); read self-reuse is RefCost's
                // job, not a dependence.
                if p == q && !w1 {
                    continue;
                }
            }
            let Some(raw) = test_dependence_with_ranges(r1, r2, &ctxs, src_ranges, dst_ranges)
            else {
                continue;
            };
            for branch in normalize(&raw) {
                match branch {
                    Normalized::Forward(v) => out.push(Dependence {
                        src: s1.id(),
                        dst: s2.id(),
                        kind: DepKind::of(w1, w2),
                        vector: v,
                        loops: loop_ids.clone(),
                        src_ref: (*r1).clone(),
                        dst_ref: (*r2).clone(),
                    }),
                    Normalized::Backward(v) => out.push(Dependence {
                        src: s2.id(),
                        dst: s1.id(),
                        kind: DepKind::of(w2, w1),
                        vector: v,
                        loops: loop_ids.clone(),
                        src_ref: (*r2).clone(),
                        dst_ref: (*r1).clone(),
                    }),
                    Normalized::LoopIndependent => {
                        if same_stmt && p == q {
                            // Same access in the same iteration: not a
                            // dependence.
                            continue;
                        }
                        // Source is whichever access executes first: for
                        // distinct statements, s1 (textually earlier); in
                        // one statement, reads (rhs) execute before the
                        // write.
                        let (sa, sb, wa, wb, ra, rb) = if same_stmt && w1 {
                            (s2.id(), s1.id(), w2, w1, (*r2).clone(), (*r1).clone())
                        } else {
                            (s1.id(), s2.id(), w1, w2, (*r1).clone(), (*r2).clone())
                        };
                        out.push(Dependence {
                            src: sa,
                            dst: sb,
                            kind: DepKind::of(wa, wb),
                            vector: DepVector::loop_independent(loop_ids.len()),
                            loops: loop_ids.clone(),
                            src_ref: ra,
                            dst_ref: rb,
                        });
                    }
                }
            }
        }
    }
}

enum Normalized {
    /// Dependence runs source→sink as tested; vector is lex-positive.
    Forward(DepVector),
    /// The tested relation only holds with roles swapped; the *returned*
    /// vector is already reversed (lex-positive for sink→source).
    Backward(DepVector),
    /// All-equal vector.
    LoopIndependent,
}

/// Splits a raw constraint vector into definitely-directed branches: a
/// leading ambiguous entry (`≤`, `≥`, `*`) expands into its `<`, `=`, `>`
/// possibilities; `>` branches are reversed into forward dependences of
/// the opposite direction.
fn normalize(raw: &[DepElem]) -> Vec<Normalized> {
    fn go(raw: &[DepElem], k: usize, out: &mut Vec<Normalized>) {
        if k == raw.len() {
            out.push(Normalized::LoopIndependent);
            return;
        }
        let dir = raw[k].direction();
        if dir.may_lt() {
            let mut v: Vec<DepElem> = raw.to_vec();
            for e in v.iter_mut().take(k) {
                *e = DepElem::Dist(0);
            }
            if !matches!(v[k], DepElem::Dist(_)) {
                v[k] = DepElem::Dir(Direction::Lt);
            }
            out.push(Normalized::Forward(DepVector::new(v)));
        }
        if dir.may_gt() {
            let mut v: Vec<DepElem> = raw.iter().map(|e| e.reversed()).collect();
            for e in v.iter_mut().take(k) {
                *e = DepElem::Dist(0);
            }
            if !matches!(v[k], DepElem::Dist(_)) {
                v[k] = DepElem::Dir(Direction::Lt);
            }
            out.push(Normalized::Backward(DepVector::new(v)));
        }
        if dir.may_eq() {
            go(raw, k + 1, out);
        }
    }
    let mut out = Vec::new();
    go(raw, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::affine::Affine;
    use cmt_ir::build::ProgramBuilder;
    use cmt_ir::expr::Expr;

    /// DO I = 2, N:  A(I) = A(I-1) + B(I)
    fn recurrence() -> Program {
        let mut b = ProgramBuilder::new("rec");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        let bb = b.array("B", vec![n.into()]);
        b.loop_("I", 2, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            let rhs = Expr::load(b.at_vec(a, vec![Affine::var(i) - 1])) + Expr::load(b.at(bb, [i]));
            b.assign(lhs, rhs);
        });
        b.finish()
    }

    #[test]
    fn flow_distance_one() {
        let p = recurrence();
        let g = analyze_nest(&p, p.nests()[0]);
        let flows: Vec<&Dependence> = g
            .deps()
            .iter()
            .filter(|d| d.kind == DepKind::Flow)
            .collect();
        assert_eq!(flows.len(), 1, "{:?}", g.deps());
        assert_eq!(flows[0].vector.elems(), &[DepElem::Dist(1)]);
        assert_eq!(flows[0].vector.carried_level(), Some(0));
        // Normalization direction: write at i feeds read at i+1 — but the
        // read is textually first; the forward branch must still run
        // write → read.
        assert_eq!(flows[0].src, flows[0].dst);
    }

    #[test]
    fn matmul_reduction_carried_by_unmentioned_loop() {
        // C(I,J) += A(I,K)*B(K,J): the write/read pair on C yields a
        // K-carried flow dependence (0,0,1-like: star → lt) and a
        // loop-independent anti dependence.
        let mut b = ProgramBuilder::new("mm");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let bb = b.matrix("B", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                b.loop_("K", 1, n, |b| {
                    let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
                    let lhs = b.at(c, [i, j]);
                    let rhs = Expr::load(b.at(c, [i, j]))
                        + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                    b.assign(lhs, rhs);
                });
            });
        });
        let p = b.finish();
        let g = analyze_nest(&p, p.nests()[0]);
        let has_k_flow = g.deps().iter().any(|d| {
            d.kind == DepKind::Flow
                && d.vector.elems()[0].is_eq()
                && d.vector.elems()[1].is_eq()
                && d.vector.elems()[2].direction() == Direction::Lt
        });
        assert!(has_k_flow, "{:#?}", g.deps());
        let has_li_anti = g
            .deps()
            .iter()
            .any(|d| d.kind == DepKind::Anti && d.vector.is_loop_independent());
        assert!(has_li_anti, "{:#?}", g.deps());
        // Every stored vector is lexicographically non-negative.
        assert!(g.deps().iter().all(|d| d.vector.is_lex_nonnegative()));
    }

    #[test]
    fn independent_arrays_produce_no_deps() {
        let mut b = ProgramBuilder::new("indep");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        let c = b.array("C", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            let rhs = Expr::load(b.at(c, [i]));
            b.assign(lhs, rhs);
        });
        let p = b.finish();
        let g = analyze_nest(&p, p.nests()[0]);
        assert!(g
            .deps()
            .iter()
            .all(|d| !d.kind.constrains() || d.src_ref.array() == d.dst_ref.array()),);
        // A is written only (self output dep impossible at distance 0),
        // C read only → no constraining deps at all.
        assert_eq!(g.constraining().count(), 0, "{:#?}", g.deps());
    }

    #[test]
    fn anti_dependence_direction() {
        // DO I: A(I) = A(I+1) — read of I+1 happens before write at I+1:
        // anti dependence, distance 1.
        let mut b = ProgramBuilder::new("anti");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            let rhs = Expr::load(b.at_vec(a, vec![Affine::var(i) + 1]));
            b.assign(lhs, rhs);
        });
        let p = b.finish();
        let g = analyze_nest(&p, p.nests()[0]);
        let antis: Vec<&Dependence> = g
            .deps()
            .iter()
            .filter(|d| d.kind == DepKind::Anti && !d.vector.is_loop_independent())
            .collect();
        assert_eq!(antis.len(), 1, "{:#?}", g.deps());
        assert_eq!(antis[0].vector.elems(), &[DepElem::Dist(1)]);
    }

    #[test]
    fn fused_pair_dependences() {
        // Nest 1: DO I: A(I) = …; Nest 2: DO I: B(I) = A(I) → fused would
        // carry a loop-independent flow dep; legal to fuse.
        let mut b = ProgramBuilder::new("fusable");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        let c = b.array("B", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            b.assign(lhs, Expr::Const(1.0));
        });
        b.loop_("I2", 1, n, |b| {
            let i2 = b.var("I2");
            let lhs = b.at(c, [i2]);
            let rhs = Expr::load(b.at(a, [i2]));
            b.assign(lhs, rhs);
        });
        let p = b.finish();
        let nests = p.nests();
        let deps = analyze_fused_pair(&p, nests[0], nests[1]);
        assert!(deps
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.vector.is_loop_independent()));
        assert!(deps.iter().all(|d| d.vector.is_lex_nonnegative()));
    }

    #[test]
    fn fusion_preventing_pair_detected() {
        // Nest 1: A(I) = …; Nest 2: B(I) = A(I+1): fused, the read of
        // A(I+1) at iteration i precedes the write at i+1 → backward
        // (anti at distance 1 from nest2's read to nest1's write
        // becomes… the normalized dep runs nest1 → nest2 with '>'
        // reversed, i.e. a dep from s2 to s1). Fusion must detect an edge
        // from the *second* nest's stmt to the first's.
        let mut b = ProgramBuilder::new("prevent");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        let c = b.array("B", vec![n.into()]);
        let mut s1 = None;
        let mut s2 = None;
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            s1 = Some(b.assign(lhs, Expr::Const(1.0)));
        });
        b.loop_("I2", 1, n, |b| {
            let i2 = b.var("I2");
            let lhs = b.at(c, [i2]);
            let rhs = Expr::load(b.at_vec(a, vec![Affine::var(i2) + 1]));
            s2 = Some(b.assign(lhs, rhs));
        });
        let p = b.finish();
        let nests = p.nests();
        let deps = analyze_fused_pair(&p, nests[0], nests[1]);
        // The flow dep (write A then read A at +1) with the write one
        // iteration later than the read means in fused space the read at
        // iter i needs the value written at iter i+1: dep from s2's read
        // to s1's write — i.e. src = s2.
        assert!(
            deps.iter()
                .any(|d| d.src == s2.unwrap() && d.dst == s1.unwrap() && d.kind.constrains()),
            "{deps:#?}"
        );
    }

    #[test]
    fn summary_counts_kinds_and_levels() {
        let p = recurrence();
        let g = analyze_nest(&p, p.nests()[0]);
        let s = g.summary();
        assert_eq!(s.total(), g.deps().len());
        assert!(s.flow >= 1);
        // The A(I)/A(I-1) flow is carried by the only loop (level 0).
        assert!(!s.carried_by_level.is_empty());
        assert!(s.carried_by_level[0] >= 1);
    }

    #[test]
    fn survives_restriction_filter() {
        let d = Dependence {
            src: StmtId(0),
            dst: StmtId(1),
            kind: DepKind::Flow,
            vector: DepVector::new(vec![DepElem::Dist(1), DepElem::Dist(0)]),
            loops: vec![LoopId(0), LoopId(1)],
            src_ref: ArrayRef::new(cmt_ir::ids::ArrayId(0), vec![Affine::constant(1)]),
            dst_ref: ArrayRef::new(cmt_ir::ids::ArrayId(0), vec![Affine::constant(1)]),
        };
        assert!(d.survives_restriction_to(0));
        assert!(!d.survives_restriction_to(1));
    }
}
