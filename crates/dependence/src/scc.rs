//! Recurrence detection: strongly connected components of the
//! (level-restricted) dependence graph.
//!
//! Loop distribution must keep every *recurrence* — a dependence cycle —
//! in one loop. `Distribute` restricts the graph to dependences carried at
//! level `j` or deeper (plus loop-independent ones) and partitions the
//! statements into SCCs; each SCC is one indivisible partition
//! ([`partitions_at_level`]), and partitions are emitted in a topological
//! order of the condensation so all cross-partition dependences point
//! forward.

use crate::graph::DependenceGraph;
use cmt_ir::ids::StmtId;
use std::collections::HashMap;

/// Computes the finest legal distribution partitions of `stmts` at loop
/// `level` (0-based depth within the analyzed nest): SCCs of the graph
/// restricted to constraining dependences that survive restriction to
/// `level`, returned in a topological order of the condensation
/// (dependence sources before sinks). Statements not mentioned by any
/// edge form singleton partitions in source order.
pub fn partitions_at_level(
    graph: &DependenceGraph,
    stmts: &[StmtId],
    level: usize,
) -> Vec<Vec<StmtId>> {
    let index_of: HashMap<StmtId, usize> = stmts.iter().enumerate().map(|(i, s)| (*s, i)).collect();
    let n = stmts.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for d in graph.constraining() {
        if !d.survives_restriction_to(level) {
            continue;
        }
        let (Some(&u), Some(&v)) = (index_of.get(&d.src), index_of.get(&d.dst)) else {
            continue;
        };
        if u != v && !adj[u].contains(&v) {
            adj[u].push(v);
        }
    }
    let sccs = tarjan(&adj);
    // Tarjan emits SCCs in reverse topological order; reverse for
    // dependence order, then map back to statement ids. Within an SCC,
    // keep source order.
    let mut out: Vec<Vec<StmtId>> = sccs
        .into_iter()
        .rev()
        .map(|mut comp| {
            comp.sort_unstable();
            comp.into_iter().map(|i| stmts[i]).collect()
        })
        .collect();
    // Stable tie-break: a valid topological order may interleave
    // independent partitions arbitrarily; prefer source order among
    // incomparable partitions for reproducibility.
    stable_source_order(&mut out, &adj, &index_of);
    out
}

/// Reorders incomparable partitions into source order without breaking
/// topological validity (repeated adjacent-swap pass — partition counts
/// are tiny).
fn stable_source_order(
    parts: &mut [Vec<StmtId>],
    adj: &[Vec<usize>],
    index_of: &HashMap<StmtId, usize>,
) {
    let reaches = |a: &[StmtId], b: &[StmtId]| -> bool {
        // Direct edge check is enough for adjacent-swap stability.
        a.iter().any(|s| {
            let u = index_of[s];
            b.iter().any(|t| adj[u].contains(&index_of[t]))
        })
    };
    let n = parts.len();
    for _ in 0..n {
        let mut swapped = false;
        for i in 0..n.saturating_sub(1) {
            let min_next: u32 = parts[i + 1].iter().map(|s| s.0).min().unwrap_or(u32::MAX);
            let min_cur: u32 = parts[i].iter().map(|s| s.0).min().unwrap_or(u32::MAX);
            if min_next < min_cur && !reaches(&parts[i], &parts[i + 1]) {
                parts.swap(i, i + 1);
                swapped = true;
            }
        }
        if !swapped {
            break;
        }
    }
}

/// Iterative Tarjan SCC. Returns components in reverse topological order.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        edge: usize,
    }
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: root, edge: 0 }];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.edge < adj[v].len() {
                let w = adj[v][frame.edge];
                frame.edge += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
                let done = call.pop().expect("call stack underflow").v;
                if let Some(parent) = call.last() {
                    low[parent.v] = low[parent.v].min(low[done]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::analyze_nodes;
    use cmt_ir::affine::Affine;
    use cmt_ir::build::ProgramBuilder;
    use cmt_ir::expr::Expr;
    use cmt_ir::program::Program;

    #[test]
    fn tarjan_finds_cycle() {
        // 0 → 1 → 2 → 0, 3 isolated.
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        let mut sccs = tarjan(&adj);
        for c in &mut sccs {
            c.sort_unstable();
        }
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn tarjan_chain_topological() {
        // 0 → 1 → 2: reverse topological emission means 2 first.
        let adj = vec![vec![1], vec![2], vec![]];
        let sccs = tarjan(&adj);
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    /// The paper's Cholesky nest (Figure 7a): S2 and S3 fall into
    /// different partitions at level 1 (the I loop), enabling
    /// distribution.
    fn cholesky() -> Program {
        let mut b = ProgramBuilder::new("cholesky");
        let n = b.param("N");
        let a = b.matrix("A", n);
        b.loop_("K", 1, n, |b| {
            let k = b.var("K");
            let akk = b.at(a, [k, k]);
            let rhs = Expr::sqrt(Expr::load(b.at(a, [k, k])));
            b.assign(akk, rhs); // S1
            b.loop_("I", Affine::var(k) + 1, n, |b| {
                let i = b.var("I");
                let lhs = b.at(a, [i, k]);
                let rhs = Expr::load(b.at(a, [i, k])) / Expr::load(b.at(a, [k, k]));
                b.assign(lhs, rhs); // S2
                b.loop_("J", Affine::var(k) + 1, i, |b| {
                    let j = b.var("J");
                    let lhs = b.at(a, [i, j]);
                    let rhs = Expr::load(b.at(a, [i, j]))
                        - Expr::load(b.at(a, [i, k])) * Expr::load(b.at(a, [j, k]));
                    b.assign(lhs, rhs); // S3
                });
            });
        });
        b.finish()
    }

    #[test]
    fn cholesky_partitions_at_i_level() {
        let p = cholesky();
        let nest = p.nests()[0];
        let g = crate::graph::analyze_nest(&p, nest);
        // Statements under the I loop: S2 (id 1) and S3 (id 2).
        let stmts = vec![cmt_ir::ids::StmtId(1), cmt_ir::ids::StmtId(2)];
        // Level 1 = the I loop depth inside the nest.
        let parts = partitions_at_level(&g, &stmts, 1);
        assert_eq!(parts.len(), 2, "{parts:?}");
        assert_eq!(parts[0], vec![cmt_ir::ids::StmtId(1)]);
        assert_eq!(parts[1], vec![cmt_ir::ids::StmtId(2)]);
    }

    #[test]
    fn recurrence_stays_in_one_partition() {
        // S0: A(I) = B(I-1); S1: B(I) = A(I-1) — mutual recurrence carried
        // by I; distribution at level 0 must keep them together.
        let mut b = ProgramBuilder::new("mutual");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        let bb = b.array("B", vec![n.into()]);
        b.loop_("I", 2, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            let rhs = Expr::load(b.at_vec(bb, vec![Affine::var(i) - 1]));
            b.assign(lhs, rhs);
            let lhs2 = b.at(bb, [i]);
            let rhs2 = Expr::load(b.at_vec(a, vec![Affine::var(i) - 1]));
            b.assign(lhs2, rhs2);
        });
        let p = b.finish();
        let g = analyze_nodes(p.body());
        let stmts: Vec<_> = p.statements().iter().map(|s| s.id()).collect();
        let parts = partitions_at_level(&g, &stmts, 0);
        assert_eq!(parts.len(), 1, "{parts:?}");
        assert_eq!(parts[0].len(), 2);
    }

    #[test]
    fn independent_statements_split_in_source_order() {
        // S0: A(I) = 1; S1: B(I) = 2 — no deps; finest partitions are
        // singletons in source order.
        let mut b = ProgramBuilder::new("indep");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        let bb = b.array("B", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            b.assign(lhs, Expr::Const(1.0));
            let lhs2 = b.at(bb, [i]);
            b.assign(lhs2, Expr::Const(2.0));
        });
        let p = b.finish();
        let g = analyze_nodes(p.body());
        let stmts: Vec<_> = p.statements().iter().map(|s| s.id()).collect();
        let parts = partitions_at_level(&g, &stmts, 0);
        assert_eq!(
            parts,
            vec![vec![cmt_ir::ids::StmtId(0)], vec![cmt_ir::ids::StmtId(1)]]
        );
    }

    #[test]
    fn producer_consumer_orders_partitions() {
        // S0 writes A, S1 reads A (loop-independent): S0's partition must
        // precede S1's.
        let mut b = ProgramBuilder::new("pc");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        let c = b.array("C", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            b.assign(lhs, Expr::Const(1.0));
            let lhs2 = b.at(c, [i]);
            let rhs2 = Expr::load(b.at(a, [i]));
            b.assign(lhs2, rhs2);
        });
        let p = b.finish();
        let g = analyze_nodes(p.body());
        let stmts: Vec<_> = p.statements().iter().map(|s| s.id()).collect();
        let parts = partitions_at_level(&g, &stmts, 0);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], vec![cmt_ir::ids::StmtId(0)]);
    }
}
