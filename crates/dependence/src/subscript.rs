//! Subscript dependence tests.
//!
//! Given two references to the same array and the common enclosing loops,
//! [`test_dependence`] decides whether two iterations can touch the same
//! element and, when they can, returns the most precise per-loop constraint
//! vector it can prove (a *raw* vector: it may be lexicographically
//! negative or ambiguous — [`crate::graph`] normalizes it into
//! properly-directed dependences).
//!
//! The battery follows practical dependence testing: per-dimension ZIV,
//! strong SIV (exact distances), weak-zero SIV, weak-crossing SIV, a GCD
//! test for general SIV/MIV, and a Banerjee-style bounds check when loop
//! bounds are compile-time constants. Per-dimension constraints are
//! intersected; an empty intersection proves independence.

use crate::vector::{DepElem, Direction};
use cmt_ir::affine::Affine;
use cmt_ir::ids::VarId;
use cmt_ir::stmt::ArrayRef;

/// What the tester knows about one common enclosing loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopCtx {
    /// The loop's index variable.
    pub var: VarId,
    /// `(lower, upper)` when both bounds are compile-time constants;
    /// `None` for symbolic or triangular bounds.
    pub bounds: Option<(i64, i64)>,
    /// The constant step.
    pub step: i64,
    /// The affine lower bound, when available. Enables pruning against
    /// *fixed* outer variables (e.g. `J ≥ K+1` disproves `J = K`).
    pub lower_aff: Option<Affine>,
    /// The affine upper bound, when available.
    pub upper_aff: Option<Affine>,
}

impl LoopCtx {
    /// A loop with unknown bounds and unit step — the conservative
    /// context used in most tests.
    pub fn symbolic(var: VarId) -> Self {
        LoopCtx {
            var,
            bounds: None,
            step: 1,
            lower_aff: None,
            upper_aff: None,
        }
    }

    /// Maximum |iteration difference| for this loop, when bounds are known.
    fn max_span(&self) -> Option<i64> {
        self.bounds.map(|(lo, hi)| (hi - lo).abs())
    }
}

/// The affine bounds of a loop variable that encloses only one of the two
/// statements (a *foreign* variable from the tester's point of view:
/// triangular inner loops of imperfect nests). Bounds may reference the
/// common loops' variables, which is what makes triangular reasoning
/// possible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarRange {
    /// The foreign variable.
    pub var: VarId,
    /// Its affine lower bound.
    pub lower: Affine,
    /// Its affine upper bound.
    pub upper: Affine,
}

/// Per-loop constraint being accumulated across subscript dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Constraint {
    /// No information: any iteration difference.
    Any,
    /// Exact difference `sink − source`.
    Exactly(i64),
    /// Abstract direction.
    Dir(Direction),
}

impl Constraint {
    fn intersect(self, other: Constraint) -> Option<Constraint> {
        use Constraint::*;
        match (self, other) {
            (Any, c) | (c, Any) => Some(c),
            (Exactly(a), Exactly(b)) => (a == b).then_some(Exactly(a)),
            (Exactly(d), Dir(dir)) | (Dir(dir), Exactly(d)) => {
                let ok = match d.cmp(&0) {
                    std::cmp::Ordering::Greater => dir.may_lt(),
                    std::cmp::Ordering::Equal => dir.may_eq(),
                    std::cmp::Ordering::Less => dir.may_gt(),
                };
                ok.then_some(Exactly(d))
            }
            (Dir(a), Dir(b)) => a.intersect(b).map(Dir),
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Tests for dependence between `src` and `dst` (references to the same
/// array) under `loops` (the common enclosing loops, outermost first).
///
/// Returns `None` when the tests *prove* independence, otherwise one raw
/// constraint element per loop in `loops` order, where the element
/// describes `iteration(dst) − iteration(src)`.
///
/// # Panics
///
/// Panics if the references name different arrays or differ in rank —
/// callers pair references per array, and validated programs have
/// consistent ranks.
pub fn test_dependence(src: &ArrayRef, dst: &ArrayRef, loops: &[LoopCtx]) -> Option<Vec<DepElem>> {
    test_dependence_with_ranges(src, dst, loops, &[], &[])
}

/// Like [`test_dependence`], additionally given the affine bounds of
/// *foreign* loop variables — loops enclosing only the source
/// (`src_ranges`) or only the sink (`dst_ranges`). Triangular bounds such
/// as `DO J = K+1, I` let the tester refine directions that would
/// otherwise degrade to `*` (the paper's Cholesky distribution depends on
/// this).
pub fn test_dependence_with_ranges(
    src: &ArrayRef,
    dst: &ArrayRef,
    loops: &[LoopCtx],
    src_ranges: &[VarRange],
    dst_ranges: &[VarRange],
) -> Option<Vec<DepElem>> {
    assert_eq!(src.array(), dst.array(), "refs must name the same array");
    assert_eq!(src.rank(), dst.rank(), "rank mismatch between references");

    let mut cons = vec![Constraint::Any; loops.len()];

    for dim in 0..src.rank() {
        let f = &src.subscripts()[dim];
        let g = &dst.subscripts()[dim];
        match test_dimension(f, g, loops, src_ranges, dst_ranges)? {
            DimResult::NoConstraint => {}
            DimResult::PerLoop(per_loop) => {
                for (k, c) in per_loop.into_iter().enumerate() {
                    cons[k] = cons[k].intersect(c)?;
                }
            }
        }
    }

    Some(
        cons.into_iter()
            .map(|c| match c {
                Constraint::Any => DepElem::Dir(Direction::Star),
                Constraint::Exactly(d) => DepElem::Dist(d),
                Constraint::Dir(d) => DepElem::Dir(d),
            })
            .collect(),
    )
}

enum DimResult {
    /// Dimension is satisfiable but yields no per-loop refinement.
    NoConstraint,
    /// Per-loop constraints (parallel to the `loops` slice).
    PerLoop(Vec<Constraint>),
}

/// Tests one subscript dimension: is `f(i) = g(i')` solvable, and what
/// does it say about each loop's iteration difference? Returns `None` when
/// unsolvable (independence proven by this dimension).
fn test_dimension(
    f: &Affine,
    g: &Affine,
    loops: &[LoopCtx],
    src_ranges: &[VarRange],
    dst_ranges: &[VarRange],
) -> Option<DimResult> {
    // Parameters must match for the dimension to constrain anything; if the
    // symbolic parts differ we cannot conclude either way → no constraint
    // unless identical. Compare parameter terms: if they differ the
    // difference is an unknown constant — conservatively satisfiable.
    let params_equal = f.param_terms().eq(g.param_terms());

    // c = g.const − f.const; equation: Σ a_v i_v − Σ b_v i'_v = c.
    let c = g.constant_term() - f.constant_term();

    // Classify variables: *common* (one of `loops`, iteration offsets are
    // what we solve for), *ranged* (inner loops of one statement — vary
    // between the two accesses), or *fixed* (outer-scope variables with
    // the same value at both accesses; behave like opaque constants).
    let mut mentioned: Vec<usize> = Vec::new();
    let mut ranged = false;
    let mut cfix = Affine::zero();
    let mut vars: Vec<VarId> = f
        .var_terms()
        .map(|(v, _)| v)
        .chain(g.var_terms().map(|(v, _)| v))
        .collect();
    vars.sort_unstable();
    vars.dedup();
    for v in vars {
        if let Some(k) = loops.iter().position(|lc| lc.var == v) {
            mentioned.push(k);
        } else if src_ranges.iter().any(|r| r.var == v) || dst_ranges.iter().any(|r| r.var == v) {
            ranged = true;
        } else {
            cfix.add_var_term(v, g.coeff_of_var(v) - f.coeff_of_var(v));
        }
    }
    let cfix_zero = cfix == Affine::zero();

    if !params_equal {
        // Unknown constant offset; give up on this dimension.
        return Some(DimResult::NoConstraint);
    }

    if ranged {
        // A non-common, iteration-varying index variable appears
        // (imperfectly nested statement): the GCD test over all
        // coefficients can still prove independence.
        if cfix_zero {
            let mut g_all = 0;
            for (_, coeff) in f.var_terms().chain(g.var_terms()) {
                g_all = gcd(g_all, coeff);
            }
            if g_all != 0 && c % g_all != 0 {
                return None;
            }
            // Triangular refinement: bounds of the foreign variable that
            // name a common variable (e.g. `DO J = K+1, I`) pin directions.
            if let Some(res) = triangular_refine(f, g, loops, src_ranges, dst_ranges) {
                return res;
            }
        }
        return Some(DimResult::NoConstraint);
    }

    if mentioned.is_empty() {
        if !cfix_zero {
            // Difference is an unknown (but fixed) constant: satisfiable.
            return Some(DimResult::NoConstraint);
        }
        // ZIV: two constants.
        return if c == 0 {
            Some(DimResult::NoConstraint)
        } else {
            None
        };
    }

    if mentioned.len() == 1 {
        // SIV in loops[k].
        let k = mentioned[0];
        let v = loops[k].var;
        let a = f.coeff_of_var(v);
        let b = g.coeff_of_var(v);
        if cfix_zero {
            return siv(a, b, c, &loops[k], k, loops.len());
        }
        // Fixed-symbol offset: solve against the loop's affine bounds
        // (e.g. `J = K` has no solution when `J ≥ K+1`).
        return siv_fixed(a, b, c, &cfix, &loops[k]);
    }

    if !cfix_zero {
        return Some(DimResult::NoConstraint);
    }
    // MIV: GCD test, then Banerjee bounds check when all bounds known.
    let mut g_all = 0;
    for &k in &mentioned {
        let v = loops[k].var;
        g_all = gcd(g_all, f.coeff_of_var(v));
        g_all = gcd(g_all, g.coeff_of_var(v));
    }
    if g_all != 0 && c % g_all != 0 {
        return None;
    }
    if banerjee_excludes(f, g, c, loops) {
        return None;
    }
    Some(DimResult::NoConstraint)
}

/// Weak-zero-style test when the constant side contains fixed outer-scope
/// symbols: the solution iteration is an affine expression; compare it
/// against the loop's affine bounds and prove independence when it falls
/// outside for every iteration.
fn siv_fixed(a: i64, b: i64, c: i64, cfix: &Affine, ctx: &LoopCtx) -> Option<DimResult> {
    let excluded = |sol: &Affine| -> bool {
        if let Some(lb) = &ctx.lower_aff {
            let d = sol.clone() - lb.clone();
            if d.is_constant() && d.constant_term() < 0 {
                return true;
            }
        }
        if let Some(ub) = &ctx.upper_aff {
            let d = ub.clone() - sol.clone();
            if d.is_constant() && d.constant_term() < 0 {
                return true;
            }
        }
        false
    };
    if a != 0 && b == 0 && a.abs() == 1 {
        // a·i + c1 + f_fix = c2 + g_fix → i = (c + Cfix)·a.
        let sol = (cfix.clone() + Affine::constant(c)) * a;
        if excluded(&sol) {
            return None;
        }
    } else if a == 0 && b != 0 && b.abs() == 1 {
        // c1 + f_fix = b·i' + c2 + g_fix → i' = (−c − Cfix)·b.
        let sol = (cfix.clone() * -1 + Affine::constant(-c)) * b;
        if excluded(&sol) {
            return None;
        }
    }
    Some(DimResult::NoConstraint)
}

/// Single-index-variable tests. `a` is the source coefficient, `b` the
/// sink coefficient, constraint `a·i − b·i' = c`; element `k` of the
/// result describes `i' − i`.
fn siv(a: i64, b: i64, c: i64, ctx: &LoopCtx, k: usize, nloops: usize) -> Option<DimResult> {
    let mut per = vec![Constraint::Any; nloops];
    if a == b {
        if a == 0 {
            // Actually ZIV (handled earlier), but be safe.
            return if c == 0 {
                Some(DimResult::NoConstraint)
            } else {
                None
            };
        }
        // Strong SIV: a(i − i') = c → i' − i = −c/a.
        if c % a != 0 {
            return None;
        }
        let d = -c / a;
        if let Some(span) = ctx.max_span() {
            if d.abs() > span {
                return None;
            }
        }
        if ctx.step != 1 && ctx.step != -1 && d % ctx.step != 0 {
            // Iterations move in multiples of step.
            return None;
        }
        // Distance is in *iteration* units: i advances by `step` per
        // iteration, so difference in iterations is d / step.
        let iter_d = if ctx.step == 1 {
            d
        } else if ctx.step == -1 {
            -d
        } else {
            d / ctx.step
        };
        per[k] = Constraint::Exactly(iter_d);
        return Some(DimResult::PerLoop(per));
    }
    if a != 0 && b == 0 {
        // Weak-zero: i = c/a fixed; i' free.
        if c % a != 0 {
            return None;
        }
        let i0 = c / a;
        if let Some((lo, hi)) = ctx.bounds {
            if i0 < lo.min(hi) || i0 > lo.max(hi) {
                return None;
            }
        }
        return Some(DimResult::NoConstraint);
    }
    if a == 0 && b != 0 {
        if c % b != 0 {
            return None;
        }
        let i0 = -c / b;
        if let Some((lo, hi)) = ctx.bounds {
            if i0 < lo.min(hi) || i0 > lo.max(hi) {
                return None;
            }
        }
        return Some(DimResult::NoConstraint);
    }
    if a == -b {
        // Weak-crossing: a(i + i') = c.
        if c % a != 0 {
            return None;
        }
        if let Some((lo, hi)) = ctx.bounds {
            let s = c / a;
            if s < 2 * lo.min(hi) || s > 2 * lo.max(hi) {
                return None;
            }
        }
        return Some(DimResult::NoConstraint);
    }
    // General SIV: GCD test.
    let g = gcd(a, b);
    if g != 0 && c % g != 0 {
        return None;
    }
    Some(DimResult::NoConstraint)
}

/// Attempts the triangular refinement on a dimension where one side is a
/// single *common* variable and the other a single *foreign* variable
/// with the same ±1 coefficient, and the foreign variable's bound names
/// the common variable (e.g. source `A(I,…)` vs sink `A(J,…)` under
/// `DO J = K+1, I`).
///
/// Returns `None` when the pattern does not apply; `Some(None)` when the
/// refinement proves independence; `Some(Some(result))` otherwise.
#[allow(clippy::option_option)]
fn triangular_refine(
    f: &Affine,
    g: &Affine,
    loops: &[LoopCtx],
    src_ranges: &[VarRange],
    dst_ranges: &[VarRange],
) -> Option<Option<DimResult>> {
    let single_common = |e: &Affine| -> Option<(usize, i64)> {
        let mut terms = e.var_terms();
        let (v, coeff) = terms.next()?;
        if terms.next().is_some() {
            return None;
        }
        loops.iter().position(|lc| lc.var == v).map(|k| (k, coeff))
    };
    let single_foreign = |e: &Affine| -> Option<(VarId, i64)> {
        let mut terms = e.var_terms();
        let (v, coeff) = terms.next()?;
        if terms.next().is_some() {
            return None;
        }
        if loops.iter().any(|lc| lc.var == v) {
            return None;
        }
        Some((v, coeff))
    };
    // `bound_offset(bound, u)` = k when `bound` is exactly `u + k`.
    let bound_offset = |bound: &Affine, u: VarId| -> Option<i64> {
        if bound.coeff_of_var(u) != 1 {
            return None;
        }
        if bound.var_terms().count() != 1 || bound.param_terms().count() != 0 {
            return None;
        }
        Some(bound.constant_term())
    };

    let c1 = f.constant_term();
    let c2 = g.constant_term();

    // (k, a, w, ranges, delta bounds as below)
    let (k, a, w, ranges, src_side_common) =
        if let (Some((k, a)), Some((w, b))) = (single_common(f), single_foreign(g)) {
            if a != b || a.abs() != 1 {
                return None;
            }
            (k, a, w, dst_ranges, true)
        } else if let (Some((w, a)), Some((k, b))) = (single_foreign(f), single_common(g)) {
            if a != b || a.abs() != 1 {
                return None;
            }
            (k, a, w, src_ranges, false)
        } else {
            return None;
        };
    if loops[k].step != 1 {
        return None;
    }
    let u = loops[k].var;
    let range = ranges.iter().find(|r| r.var == w)?;

    // delta = iteration(sink) − iteration(source) of the common loop.
    // src-side-common: u_src = w + a·(c2−c1); w ≤ u_sink + k_u gives
    //   delta ≥ −(k_u + a·(c2−c1)); w ≥ u_sink + k_l gives delta ≤ −(k_l + …).
    // dst-side-common: u_sink = w + a·(c1−c2); w ≤ u_src + k_u gives
    //   delta ≤ k_u + a·(c1−c2); w ≥ u_src + k_l gives delta ≥ k_l + ….
    let (mut delta_min, mut delta_max): (Option<i64>, Option<i64>) = (None, None);
    if src_side_common {
        let off = a * (c2 - c1);
        if let Some(k_u) = bound_offset(&range.upper, u) {
            delta_min = Some(-(k_u + off));
        }
        if let Some(k_l) = bound_offset(&range.lower, u) {
            delta_max = Some(-(k_l + off));
        }
    } else {
        let off = a * (c1 - c2);
        if let Some(k_u) = bound_offset(&range.upper, u) {
            delta_max = Some(k_u + off);
        }
        if let Some(k_l) = bound_offset(&range.lower, u) {
            delta_min = Some(k_l + off);
        }
    }
    if delta_min.is_none() && delta_max.is_none() {
        return None;
    }

    let lt = delta_max.is_none_or(|hi| hi >= 1);
    let eq = delta_min.is_none_or(|lo| lo <= 0) && delta_max.is_none_or(|hi| hi >= 0);
    let gt = delta_min.is_none_or(|lo| lo <= -1);
    match Direction::from_possibilities(lt, eq, gt) {
        None => Some(None),
        Some(Direction::Star) => Some(Some(DimResult::NoConstraint)),
        Some(dir) => {
            let mut per = vec![Constraint::Any; loops.len()];
            per[k] = Constraint::Dir(dir);
            Some(Some(DimResult::PerLoop(per)))
        }
    }
}

/// Banerjee-style exclusion: when every mentioned loop has constant
/// bounds, compute the min/max of `Σ a_v i_v − Σ b_v i'_v` and check
/// whether `c` falls outside.
fn banerjee_excludes(f: &Affine, g: &Affine, c: i64, loops: &[LoopCtx]) -> bool {
    let mut min = 0i64;
    let mut max = 0i64;
    let mut add_range = |coeff: i64, bounds: Option<(i64, i64)>| -> bool {
        if coeff == 0 {
            return true;
        }
        match bounds {
            Some((lo, hi)) => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                let a = coeff * lo;
                let b = coeff * hi;
                min += a.min(b);
                max += a.max(b);
                true
            }
            None => false,
        }
    };
    for lc in loops {
        if !add_range(f.coeff_of_var(lc.var), lc.bounds) {
            return false;
        }
        if !add_range(-g.coeff_of_var(lc.var), lc.bounds) {
            return false;
        }
    }
    c < min || c > max
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::ids::ArrayId;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn aref(subs: Vec<Affine>) -> ArrayRef {
        ArrayRef::new(ArrayId(0), subs)
    }

    fn ctx1() -> Vec<LoopCtx> {
        vec![LoopCtx::symbolic(v(0))]
    }

    #[test]
    fn strong_siv_exact_distance() {
        // A(I) vs A(I-1): source A(I) at i, sink A(I-1) at i' → i = i'-1,
        // so i' - i = 1: distance 1.
        let src = aref(vec![Affine::var(v(0))]);
        let dst = aref(vec![Affine::var(v(0)) - 1]);
        let out = test_dependence(&src, &dst, &ctx1()).unwrap();
        assert_eq!(out, vec![DepElem::Dist(1)]);
    }

    #[test]
    fn strong_siv_non_divisible_is_independent() {
        // A(2I) vs A(2I+1): parity differs.
        let src = aref(vec![Affine::var(v(0)) * 2]);
        let dst = aref(vec![Affine::var(v(0)) * 2 + 1]);
        assert!(test_dependence(&src, &dst, &ctx1()).is_none());
    }

    #[test]
    fn strong_siv_bounds_prune() {
        // A(I) vs A(I-100) in a 10-iteration loop.
        let src = aref(vec![Affine::var(v(0))]);
        let dst = aref(vec![Affine::var(v(0)) - 100]);
        let loops = vec![LoopCtx {
            var: v(0),
            bounds: Some((1, 10)),
            step: 1,
            lower_aff: None,
            upper_aff: None,
        }];
        assert!(test_dependence(&src, &dst, &loops).is_none());
    }

    #[test]
    fn ziv_mismatch_is_independent() {
        let src = aref(vec![Affine::constant(1)]);
        let dst = aref(vec![Affine::constant(2)]);
        assert!(test_dependence(&src, &dst, &ctx1()).is_none());
        let same = aref(vec![Affine::constant(2)]);
        let out = test_dependence(&dst, &same, &ctx1()).unwrap();
        assert_eq!(out, vec![DepElem::Dir(Direction::Star)]);
    }

    #[test]
    fn weak_zero_in_bounds() {
        // A(I) vs A(5): solution i=5; inside bounds → dependence with
        // unconstrained direction, outside → independent.
        let src = aref(vec![Affine::var(v(0))]);
        let dst = aref(vec![Affine::constant(5)]);
        let inside = vec![LoopCtx {
            var: v(0),
            bounds: Some((1, 10)),
            step: 1,
            lower_aff: None,
            upper_aff: None,
        }];
        assert!(test_dependence(&src, &dst, &inside).is_some());
        let outside = vec![LoopCtx {
            var: v(0),
            bounds: Some((6, 10)),
            step: 1,
            lower_aff: None,
            upper_aff: None,
        }];
        let src2 = aref(vec![Affine::var(v(0))]);
        assert!(test_dependence(&src2, &dst, &outside).is_none());
    }

    #[test]
    fn weak_crossing_divisibility() {
        // A(2I) vs A(-2I+5): 2(i+i') = 5 unsolvable.
        let src = aref(vec![Affine::var(v(0)) * 2]);
        let dst = aref(vec![Affine::var(v(0)) * -2 + 5]);
        assert!(test_dependence(&src, &dst, &ctx1()).is_none());
        // 2(i+i') = 6 solvable.
        let dst2 = aref(vec![Affine::var(v(0)) * -2 + 6]);
        assert!(test_dependence(&src, &dst2, &ctx1()).is_some());
    }

    #[test]
    fn two_dims_intersect_distances() {
        // A(I,J) vs A(I-1,J+2) → (1 in I, -2 in J).
        let loops = vec![LoopCtx::symbolic(v(0)), LoopCtx::symbolic(v(1))];
        let src = aref(vec![Affine::var(v(0)), Affine::var(v(1))]);
        let dst = aref(vec![Affine::var(v(0)) - 1, Affine::var(v(1)) + 2]);
        let out = test_dependence(&src, &dst, &loops).unwrap();
        assert_eq!(out, vec![DepElem::Dist(1), DepElem::Dist(-2)]);
    }

    #[test]
    fn conflicting_dimensions_prove_independence() {
        // A(I,I) vs A(I-1,I): dim1 wants distance 1, dim2 wants 0.
        let loops = vec![LoopCtx::symbolic(v(0))];
        let src = aref(vec![Affine::var(v(0)), Affine::var(v(0))]);
        let dst = aref(vec![Affine::var(v(0)) - 1, Affine::var(v(0))]);
        assert!(test_dependence(&src, &dst, &loops).is_none());
    }

    #[test]
    fn miv_gcd_prunes() {
        // A(2I + 4J) vs A(2I + 4J + 1): gcd 2 does not divide 1.
        let loops = vec![LoopCtx::symbolic(v(0)), LoopCtx::symbolic(v(1))];
        let src = aref(vec![Affine::var(v(0)) * 2 + Affine::var(v(1)) * 4]);
        let dst = aref(vec![Affine::var(v(0)) * 2 + Affine::var(v(1)) * 4 + 1]);
        assert!(test_dependence(&src, &dst, &loops).is_none());
    }

    #[test]
    fn miv_banerjee_prunes() {
        // A(I + J) vs A(I + J + 100), loops 1..10 each: max lhs-rhs
        // difference is 18 < 100.
        let loops = vec![
            LoopCtx {
                var: v(0),
                bounds: Some((1, 10)),
                step: 1,
                lower_aff: None,
                upper_aff: None,
            },
            LoopCtx {
                var: v(1),
                bounds: Some((1, 10)),
                step: 1,
                lower_aff: None,
                upper_aff: None,
            },
        ];
        let src = aref(vec![Affine::var(v(0)) + Affine::var(v(1))]);
        let dst = aref(vec![Affine::var(v(0)) + Affine::var(v(1)) + 100]);
        assert!(test_dependence(&src, &dst, &loops).is_none());
    }

    #[test]
    fn unmentioned_loop_gets_star() {
        // A(I) vs A(I) under loops I, K: K unconstrained.
        let loops = vec![LoopCtx::symbolic(v(0)), LoopCtx::symbolic(v(1))];
        let src = aref(vec![Affine::var(v(0))]);
        let dst = aref(vec![Affine::var(v(0))]);
        let out = test_dependence(&src, &dst, &loops).unwrap();
        assert_eq!(out, vec![DepElem::Dist(0), DepElem::Dir(Direction::Star)]);
    }

    #[test]
    fn differing_params_give_no_constraint() {
        use cmt_ir::ids::ParamId;
        let loops = ctx1();
        let src = aref(vec![Affine::var(v(0)) + Affine::param(ParamId(0))]);
        let dst = aref(vec![Affine::var(v(0))]);
        let out = test_dependence(&src, &dst, &loops).unwrap();
        assert_eq!(out, vec![DepElem::Dir(Direction::Star)]);
    }

    #[test]
    fn matching_params_allow_strong_siv() {
        use cmt_ir::ids::ParamId;
        let loops = ctx1();
        let p = ParamId(0);
        let src = aref(vec![Affine::var(v(0)) + Affine::param(p)]);
        let dst = aref(vec![Affine::var(v(0)) + Affine::param(p) - 1]);
        let out = test_dependence(&src, &dst, &loops).unwrap();
        assert_eq!(out, vec![DepElem::Dist(1)]);
    }

    #[test]
    fn negative_step_iteration_distance() {
        // DO I = 10, 1, -1: A(I) vs A(I-1). Element distance d = 1 in
        // *value* space; with step -1 the iteration difference negates.
        let loops = vec![LoopCtx {
            var: v(0),
            bounds: Some((10, 1)),
            step: -1,
            lower_aff: None,
            upper_aff: None,
        }];
        let src = aref(vec![Affine::var(v(0))]);
        let dst = aref(vec![Affine::var(v(0)) - 1]);
        let out = test_dependence(&src, &dst, &loops).unwrap();
        assert_eq!(out, vec![DepElem::Dist(-1)]);
    }
}
