//! Property tests for dependence-vector algebra and the subscript tester.

use cmt_dependence::subscript::{test_dependence, LoopCtx};
use cmt_dependence::{DepElem, DepVector, Direction};
use cmt_ir::affine::Affine;
use cmt_ir::ids::{ArrayId, VarId};
use cmt_ir::stmt::ArrayRef;
use proptest::prelude::*;

fn elem_strategy() -> impl Strategy<Value = DepElem> {
    prop_oneof![
        (-3i64..=3).prop_map(DepElem::Dist),
        prop_oneof![
            Just(Direction::Lt),
            Just(Direction::Eq),
            Just(Direction::Gt),
            Just(Direction::Le),
            Just(Direction::Ge),
            Just(Direction::Star),
        ]
        .prop_map(DepElem::Dir),
    ]
}

fn vector_strategy() -> impl Strategy<Value = DepVector> {
    prop::collection::vec(elem_strategy(), 1..5).prop_map(DepVector::new)
}

proptest! {
    /// Permuting by p then by q equals permuting by the composition.
    #[test]
    fn permutation_composes(v in vector_strategy()) {
        let n = v.len();
        let runner = |p: Vec<usize>, q: Vec<usize>| {
            let lhs = v.permuted(&p).permuted(&q);
            let composed: Vec<usize> = q.iter().map(|&k| p[k]).collect();
            let rhs = v.permuted(&composed);
            assert_eq!(lhs, rhs);
        };
        // A couple of deterministic permutations suffices per vector.
        let rev: Vec<usize> = (0..n).rev().collect();
        let rot: Vec<usize> = (0..n).map(|k| (k + 1) % n).collect();
        runner(rev.clone(), rot.clone());
        runner(rot, rev);
    }

    /// Full reversal is an involution.
    #[test]
    fn reversal_involution(v in vector_strategy()) {
        prop_assert_eq!(v.reversed().reversed(), v.clone());
        for k in 0..v.len() {
            prop_assert_eq!(
                v.with_level_reversed(k).with_level_reversed(k),
                v.clone()
            );
        }
    }

    /// A vector and its reversal cannot both be lexicographically
    /// *positive*.
    #[test]
    fn vector_and_reverse_not_both_positive(v in vector_strategy()) {
        use cmt_dependence::LexSign;
        let a = v.lex_sign();
        let b = v.reversed().lex_sign();
        prop_assert!(
            !(a == LexSign::Positive && b == LexSign::Positive),
            "{v} and its reverse both positive"
        );
    }

    /// `carried_level` implies the prefix is all-equal and the entry
    /// admits only `<`.
    #[test]
    fn carried_level_consistent(v in vector_strategy()) {
        if let Some(k) = v.carried_level() {
            for e in &v.elems()[..k] {
                prop_assert!(e.is_eq());
            }
            prop_assert_eq!(v.elems()[k].direction(), Direction::Lt);
            prop_assert!(v.is_lex_nonnegative());
        }
        if v.is_loop_independent() {
            prop_assert_eq!(v.carried_level(), None);
            prop_assert!(v.is_lex_nonnegative());
        }
    }

    /// Soundness of the subscript tester on 1-D strong-SIV pairs: when it
    /// claims independence, brute force agrees; when it returns a
    /// distance, brute force finds exactly those collisions.
    #[test]
    fn siv_tester_sound_against_brute_force(
        a in 1i64..4, c1 in -6i64..6, c2 in -6i64..6,
    ) {
        let (lo, hi) = (1i64, 12i64);
        let src = ArrayRef::new(ArrayId(0), vec![Affine::var(VarId(0)) * a + c1]);
        let dst = ArrayRef::new(ArrayId(0), vec![Affine::var(VarId(0)) * a + c2]);
        let loops = [LoopCtx {
            var: VarId(0),
            bounds: Some((lo, hi)),
            step: 1,
            lower_aff: Some(Affine::constant(lo)),
            upper_aff: Some(Affine::constant(hi)),
        }];
        let result = test_dependence(&src, &dst, &loops);
        // Brute force: all (i, i') with a·i + c1 = a·i' + c2.
        let mut distances = Vec::new();
        for i in lo..=hi {
            for ip in lo..=hi {
                if a * i + c1 == a * ip + c2 {
                    distances.push(ip - i);
                }
            }
        }
        distances.sort_unstable();
        distances.dedup();
        match result {
            None => prop_assert!(distances.is_empty(), "missed deps {distances:?}"),
            Some(elems) => match elems[0] {
                DepElem::Dist(d) => {
                    prop_assert_eq!(distances, vec![d]);
                }
                DepElem::Dir(_) => {
                    // Conservative answers are allowed; they must not
                    // contradict an actually-empty solution set only when
                    // the tester could have proven it — nothing to check.
                }
            },
        }
    }

    /// Two-dimensional pairs: independence claims are never wrong.
    #[test]
    fn two_dim_tester_never_misses(
        o1 in -3i64..3, o2 in -3i64..3,
    ) {
        let (i, j) = (VarId(0), VarId(1));
        let src = ArrayRef::new(ArrayId(0), vec![Affine::var(i), Affine::var(j)]);
        let dst = ArrayRef::new(
            ArrayId(0),
            vec![Affine::var(i) + o1, Affine::var(j) + o2],
        );
        let mk = |v: VarId| LoopCtx {
            var: v,
            bounds: Some((1, 6)),
            step: 1,
            lower_aff: Some(Affine::constant(1)),
            upper_aff: Some(Affine::constant(6)),
        };
        let loops = [mk(i), mk(j)];
        let result = test_dependence(&src, &dst, &loops);
        let mut any = false;
        for iv in 1..=6i64 {
            for jv in 1..=6i64 {
                for iv2 in 1..=6i64 {
                    for jv2 in 1..=6i64 {
                        if iv == iv2 + o1 && jv == jv2 + o2 {
                            any = true;
                        }
                    }
                }
            }
        }
        if result.is_none() {
            prop_assert!(!any, "tester claimed independence but deps exist");
        } else if any {
            let elems = result.unwrap();
            prop_assert_eq!(elems[0], DepElem::Dist(-o1));
            prop_assert_eq!(elems[1], DepElem::Dist(-o2));
        }
    }
}
