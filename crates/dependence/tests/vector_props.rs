//! Property-style tests for dependence-vector algebra and the subscript
//! tester, driven by the seeded in-repo PRNG so the suite is
//! deterministic and fully offline.

use cmt_dependence::subscript::{test_dependence, LoopCtx};
use cmt_dependence::{DepElem, DepVector, Direction};
use cmt_ir::affine::Affine;
use cmt_ir::ids::{ArrayId, VarId};
use cmt_ir::stmt::ArrayRef;
use cmt_obs::SplitMix64;

const CASES: usize = 256;

fn random_elem(rng: &mut SplitMix64) -> DepElem {
    if rng.gen_bool(0.5) {
        DepElem::Dist(rng.gen_range_i64(-3, 3))
    } else {
        let dirs = [
            Direction::Lt,
            Direction::Eq,
            Direction::Gt,
            Direction::Le,
            Direction::Ge,
            Direction::Star,
        ];
        DepElem::Dir(*rng.choose(&dirs))
    }
}

fn random_vector(rng: &mut SplitMix64) -> DepVector {
    let len = rng.gen_range_usize(1, 4);
    DepVector::new((0..len).map(|_| random_elem(rng)).collect::<Vec<_>>())
}

/// Permuting by p then by q equals permuting by the composition.
#[test]
fn permutation_composes() {
    let mut rng = SplitMix64::seed_from_u64(0xBE40);
    for _ in 0..CASES {
        let v = random_vector(&mut rng);
        let n = v.len();
        let runner = |p: Vec<usize>, q: Vec<usize>| {
            let lhs = v.permuted(&p).permuted(&q);
            let composed: Vec<usize> = q.iter().map(|&k| p[k]).collect();
            let rhs = v.permuted(&composed);
            assert_eq!(lhs, rhs);
        };
        // A couple of deterministic permutations suffices per vector.
        let rev: Vec<usize> = (0..n).rev().collect();
        let rot: Vec<usize> = (0..n).map(|k| (k + 1) % n).collect();
        runner(rev.clone(), rot.clone());
        runner(rot, rev);
    }
}

/// Full reversal is an involution.
#[test]
fn reversal_involution() {
    let mut rng = SplitMix64::seed_from_u64(0x1440);
    for _ in 0..CASES {
        let v = random_vector(&mut rng);
        assert_eq!(v.reversed().reversed(), v.clone());
        for k in 0..v.len() {
            assert_eq!(v.with_level_reversed(k).with_level_reversed(k), v.clone());
        }
    }
}

/// A vector and its reversal cannot both be lexicographically
/// *positive*.
#[test]
fn vector_and_reverse_not_both_positive() {
    use cmt_dependence::LexSign;
    let mut rng = SplitMix64::seed_from_u64(0x90C0);
    for _ in 0..CASES {
        let v = random_vector(&mut rng);
        let a = v.lex_sign();
        let b = v.reversed().lex_sign();
        assert!(
            !(a == LexSign::Positive && b == LexSign::Positive),
            "{v} and its reverse both positive"
        );
    }
}

/// `carried_level` implies the prefix is all-equal and the entry
/// admits only `<`.
#[test]
fn carried_level_consistent() {
    let mut rng = SplitMix64::seed_from_u64(0xCA44);
    for _ in 0..CASES {
        let v = random_vector(&mut rng);
        if let Some(k) = v.carried_level() {
            for e in &v.elems()[..k] {
                assert!(e.is_eq());
            }
            assert_eq!(v.elems()[k].direction(), Direction::Lt);
            assert!(v.is_lex_nonnegative());
        }
        if v.is_loop_independent() {
            assert_eq!(v.carried_level(), None);
            assert!(v.is_lex_nonnegative());
        }
    }
}

/// Soundness of the subscript tester on 1-D strong-SIV pairs: when it
/// claims independence, brute force agrees; when it returns a distance,
/// brute force finds exactly those collisions. Exhaustive over the
/// small parameter grid the proptest version sampled from.
#[test]
fn siv_tester_sound_against_brute_force() {
    for a in 1i64..4 {
        for c1 in -6i64..6 {
            for c2 in -6i64..6 {
                let (lo, hi) = (1i64, 12i64);
                let src = ArrayRef::new(ArrayId(0), vec![Affine::var(VarId(0)) * a + c1]);
                let dst = ArrayRef::new(ArrayId(0), vec![Affine::var(VarId(0)) * a + c2]);
                let loops = [LoopCtx {
                    var: VarId(0),
                    bounds: Some((lo, hi)),
                    step: 1,
                    lower_aff: Some(Affine::constant(lo)),
                    upper_aff: Some(Affine::constant(hi)),
                }];
                let result = test_dependence(&src, &dst, &loops);
                // Brute force: all (i, i') with a·i + c1 = a·i' + c2.
                let mut distances = Vec::new();
                for i in lo..=hi {
                    for ip in lo..=hi {
                        if a * i + c1 == a * ip + c2 {
                            distances.push(ip - i);
                        }
                    }
                }
                distances.sort_unstable();
                distances.dedup();
                match result {
                    None => assert!(distances.is_empty(), "missed deps {distances:?}"),
                    Some(elems) => match elems[0] {
                        DepElem::Dist(d) => {
                            assert_eq!(distances, vec![d]);
                        }
                        DepElem::Dir(_) => {
                            // Conservative answers are allowed; nothing
                            // further to check.
                        }
                    },
                }
            }
        }
    }
}

/// Two-dimensional pairs: independence claims are never wrong.
/// Exhaustive over the offset grid.
#[test]
fn two_dim_tester_never_misses() {
    for o1 in -3i64..3 {
        for o2 in -3i64..3 {
            let (i, j) = (VarId(0), VarId(1));
            let src = ArrayRef::new(ArrayId(0), vec![Affine::var(i), Affine::var(j)]);
            let dst = ArrayRef::new(ArrayId(0), vec![Affine::var(i) + o1, Affine::var(j) + o2]);
            let mk = |v: VarId| LoopCtx {
                var: v,
                bounds: Some((1, 6)),
                step: 1,
                lower_aff: Some(Affine::constant(1)),
                upper_aff: Some(Affine::constant(6)),
            };
            let loops = [mk(i), mk(j)];
            let result = test_dependence(&src, &dst, &loops);
            let mut any = false;
            for iv in 1..=6i64 {
                for jv in 1..=6i64 {
                    for iv2 in 1..=6i64 {
                        for jv2 in 1..=6i64 {
                            if iv == iv2 + o1 && jv == jv2 + o2 {
                                any = true;
                            }
                        }
                    }
                }
            }
            if result.is_none() {
                assert!(!any, "tester claimed independence but deps exist");
            } else if any {
                let elems = result.unwrap();
                assert_eq!(elems[0], DepElem::Dist(-o1));
                assert_eq!(elems[1], DepElem::Dist(-o2));
            }
        }
    }
}
