//! Execution coverage for the less-travelled interpreter paths:
//! parameters and intrinsics in expressions, non-unit steps, deep
//! nesting, and error reporting.

use cmt_interp::{CountingSink, ExecError, Machine, NullSink};
use cmt_ir::affine::Affine;
use cmt_ir::build::ProgramBuilder;
use cmt_ir::expr::{BinOp, Expr};

#[test]
fn params_and_intrinsics_evaluate() {
    let mut b = ProgramBuilder::new("intr");
    let n = b.param("N");
    let a = b.array("A", vec![n.into()]);
    b.loop_("I", 1, n, |b| {
        let i = b.var("I");
        let lhs = b.at(a, [i]);
        // A(I) = MAX(MIN(I, N/2), |−3|) computed per element.
        let rhs = Expr::Binary(
            BinOp::Max,
            Box::new(Expr::Binary(
                BinOp::Min,
                Box::new(Expr::Index(i)),
                Box::new(Expr::Param(n) / Expr::Const(2.0)),
            )),
            Box::new(Expr::Unary(
                cmt_ir::expr::UnOp::Abs,
                Box::new(Expr::Const(-3.0)),
            )),
        );
        b.assign(lhs, rhs);
    });
    let p = b.finish();
    let mut m = Machine::new(&p, &[8]).unwrap();
    m.run(&p, &mut NullSink).unwrap();
    let a_id = p.find_array("A").unwrap();
    let data = m.array_data(a_id);
    // max(min(i, 4), 3) for i = 1..8.
    let expect = [3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 4.0, 4.0];
    assert_eq!(data, &expect);
}

#[test]
fn non_unit_steps_cover_expected_elements() {
    let mut b = ProgramBuilder::new("step");
    let n = b.param("N");
    let a = b.array("A", vec![n.into()]);
    b.loop_step("I", 1, n, 3, |b| {
        let i = b.var("I");
        let lhs = b.at(a, [i]);
        b.assign(lhs, Expr::Const(1.0));
    });
    let p = b.finish();
    let mut m = Machine::new(&p, &[10]).unwrap();
    m.init_with(|_, _| 0.0);
    let mut sink = CountingSink::default();
    m.run(&p, &mut sink).unwrap();
    assert_eq!(sink.stores, 4); // I = 1, 4, 7, 10
    let a_id = p.find_array("A").unwrap();
    let data = m.array_data(a_id);
    for (k, &v) in data.iter().enumerate() {
        let touched = k % 3 == 0; // 0-based: elements 0, 3, 6, 9
        assert_eq!(v == 1.0, touched, "element {k}");
    }
}

#[test]
fn four_deep_nest_executes() {
    let mut b = ProgramBuilder::new("deep");
    let n = b.param("N");
    let a = b.array("A", vec![n.into(), n.into(), n.into(), n.into()]);
    b.loop_("L", 1, n, |b| {
        b.loop_("K", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                b.loop_("I", 1, n, |b| {
                    let (i, j, k, l) = (b.var("I"), b.var("J"), b.var("K"), b.var("L"));
                    let lhs = b.at(a, [i, j, k, l]);
                    b.assign(lhs, Expr::Index(i) + Expr::Index(l));
                });
            });
        });
    });
    let p = b.finish();
    let mut m = Machine::new(&p, &[4]).unwrap();
    let s = m.run(&p, &mut NullSink).unwrap();
    assert_eq!(s.stores, 256);
    let a_id = p.find_array("A").unwrap();
    // A(2,1,1,3) = 2 + 3; linear index: 1 + 0·4 + 0·16 + 2·64 = 129.
    assert_eq!(m.array_data(a_id)[129], 5.0);
}

#[test]
fn division_by_zero_produces_inf_not_panic() {
    let mut b = ProgramBuilder::new("div0");
    let n = b.param("N");
    let a = b.array("A", vec![n.into()]);
    b.loop_("I", 1, n, |b| {
        let i = b.var("I");
        let lhs = b.at(a, [i]);
        let rhs = Expr::Const(1.0) / Expr::Const(0.0);
        b.assign(lhs, rhs);
        let _ = i;
    });
    let p = b.finish();
    let mut m = Machine::new(&p, &[4]).unwrap();
    m.run(&p, &mut NullSink).unwrap();
    let a_id = p.find_array("A").unwrap();
    assert!(m.array_data(a_id).iter().all(|x| x.is_infinite()));
}

#[test]
fn oob_error_reports_context() {
    let mut b = ProgramBuilder::new("oob");
    let n = b.param("N");
    let a = b.array("ARR", vec![n.into(), n.into()]);
    b.loop_("I", 1, n, |b| {
        let i = b.var("I");
        let lhs = b.at_vec(a, vec![Affine::var(i) * 2, Affine::constant(1)]);
        b.assign(lhs, Expr::Const(0.0));
    });
    let p = b.finish();
    let mut m = Machine::new(&p, &[5]).unwrap();
    let err = m.run(&p, &mut NullSink).unwrap_err();
    match err {
        ExecError::OutOfBounds {
            array,
            subscripts,
            dims,
        } => {
            assert_eq!(array, "ARR");
            assert_eq!(subscripts, vec![6, 1]);
            assert_eq!(dims, vec![5, 5]);
        }
        other => panic!("unexpected error {other:?}"),
    }
    let msg = format!(
        "{}",
        ExecError::OutOfBounds {
            array: "ARR".into(),
            subscripts: vec![6, 1],
            dims: vec![5, 5]
        }
    );
    assert!(msg.contains("ARR"), "{msg}");
}

#[test]
fn triangular_bounds_reevaluated_per_outer_iteration() {
    // DO I = 1, N { DO J = I, N { count } }: total = N + (N-1) + … + 1.
    let mut b = ProgramBuilder::new("tri");
    let n = b.param("N");
    let a = b.matrix("A", n);
    b.loop_("I", 1, n, |b| {
        let i = b.var("I");
        b.loop_("J", i, n, |b| {
            let j = b.var("J");
            let lhs = b.at(a, [i, j]);
            b.assign(lhs, Expr::Const(1.0));
        });
    });
    let p = b.finish();
    let mut m = Machine::new(&p, &[6]).unwrap();
    let mut sink = CountingSink::default();
    m.run(&p, &mut sink).unwrap();
    assert_eq!(sink.stores, 21);
}
