//! Execution of IR programs over simulated memory.
//!
//! The interpreter runs a [`cmt_ir::Program`] on real `f64` arrays laid
//! out column-major (Fortran), emitting every load and store — with its
//! byte address — to a pluggable [`TraceSink`]. Two uses:
//!
//! * **Cache evaluation** — feed the trace to `cmt-cache` simulators to
//!   regenerate the paper's hit-rate and timing tables;
//! * **Correctness oracle** — run original and transformed programs and
//!   compare final array contents bit-exactly, validating every
//!   transformation end-to-end.
//!
//! # Example
//!
//! ```
//! use cmt_ir::build::ProgramBuilder;
//! use cmt_ir::expr::Expr;
//! use cmt_interp::{Machine, CountingSink};
//!
//! let mut b = ProgramBuilder::new("fill");
//! let n = b.param("N");
//! let a = b.array("A", vec![n.into()]);
//! b.loop_("I", 1, n, |b| {
//!     let i = b.var("I");
//!     let lhs = b.at(a, [i]);
//!     b.assign(lhs, Expr::Const(7.0));
//! });
//! let p = b.finish();
//!
//! let mut m = Machine::new(&p, &[10]).unwrap();
//! let mut sink = CountingSink::default();
//! m.run(&p, &mut sink).unwrap();
//! assert_eq!(sink.stores, 10);
//! assert!(m.array_data(a).iter().all(|&x| x == 7.0));
//! ```

pub mod exec;
pub mod machine;
pub mod sink;
pub mod verify;

pub use exec::{ExecError, ExecSummary};
pub use machine::Machine;
pub use sink::{
    pack_access, unpack_access, CacheSink, CountingSink, MeteredSink, NullSink, RecordingSink,
    SampledSink, TeeSink, TraceSink, TracedSink, BATCH_LEN, WRITE_BIT,
};
pub use verify::{assert_equivalent, equivalent, EquivalenceReport};
