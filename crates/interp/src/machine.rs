//! Simulated memory: arrays, layout, and parameter bindings.

use crate::exec::ExecError;
use cmt_ir::affine::Env;
use cmt_ir::ids::{ArrayId, ParamId};
use cmt_ir::program::Program;

/// Size of one array element in bytes (`f64`, Fortran `REAL*8`).
pub const ELEMENT_BYTES: u64 = 8;

/// Alignment of each array's base address.
const BASE_ALIGN: u64 = 1024;

/// Storage for one array.
#[derive(Clone, Debug)]
pub struct ArrayStorage {
    /// Base byte address in the simulated address space.
    pub base: u64,
    /// Evaluated extents, leftmost (contiguous) first.
    pub dims: Vec<i64>,
    /// Element data, column-major.
    pub data: Vec<f64>,
}

impl ArrayStorage {
    /// The linear element index of a (1-based) subscript tuple, or `None`
    /// when out of bounds.
    pub fn linear_index(&self, subs: &[i64]) -> Option<usize> {
        if subs.len() != self.dims.len() {
            return None;
        }
        let mut idx: i64 = 0;
        let mut stride: i64 = 1;
        for (s, d) in subs.iter().zip(&self.dims) {
            if *s < 1 || *s > *d {
                return None;
            }
            idx += (s - 1) * stride;
            stride *= d;
        }
        Some(idx as usize)
    }

    /// Byte address of an element by linear index.
    pub fn address_of(&self, linear: usize) -> u64 {
        self.base + linear as u64 * ELEMENT_BYTES
    }
}

/// A program's runtime state: bound parameters and allocated arrays.
///
/// Arrays are laid out sequentially in a fresh address space, each base
/// aligned to 1 KiB with a guard gap, so distinct arrays never share a
/// cache line.
#[derive(Clone, Debug)]
pub struct Machine {
    env: Env,
    arrays: Vec<ArrayStorage>,
}

impl Machine {
    /// Allocates arrays for `program` with the given parameter values (in
    /// declaration order) and default-initialized contents (see
    /// [`Machine::init_default`]).
    ///
    /// # Errors
    ///
    /// Returns an error if an array extent evaluates non-positive or
    /// references an unbound parameter.
    pub fn new(program: &Program, param_values: &[i64]) -> Result<Machine, ExecError> {
        let env = program.param_env(param_values);
        let mut arrays = Vec::with_capacity(program.arrays().len());
        let mut next_base: u64 = BASE_ALIGN;
        for (k, info) in program.arrays().iter().enumerate() {
            let mut dims = Vec::with_capacity(info.rank());
            for e in info.dims() {
                let v = e.eval(&env).map_err(|e| ExecError::Eval(e.to_string()))?;
                if v < 1 {
                    return Err(ExecError::BadExtent {
                        array: info.name().to_string(),
                        extent: v,
                    });
                }
                dims.push(v);
            }
            let len: i64 = dims.iter().product();
            let storage = ArrayStorage {
                base: next_base,
                dims,
                data: vec![0.0; len as usize],
            };
            next_base = storage.base + len as u64 * ELEMENT_BYTES;
            // Guard gap + realignment.
            next_base = (next_base + BASE_ALIGN) / BASE_ALIGN * BASE_ALIGN + BASE_ALIGN;
            arrays.push(storage);
            let _ = k;
        }
        let mut m = Machine { env, arrays };
        m.init_default();
        Ok(m)
    }

    /// The parameter environment (loop variables are bound during
    /// execution only).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Mutable environment, used by the executor.
    pub(crate) fn env_mut(&mut self) -> &mut Env {
        &mut self.env
    }

    /// Parameter value lookup.
    pub fn param(&self, p: ParamId) -> Option<i64> {
        self.env.param(p)
    }

    /// Storage of an array.
    ///
    /// # Panics
    ///
    /// Panics if the id was not allocated by this machine.
    pub fn storage(&self, id: ArrayId) -> &ArrayStorage {
        &self.arrays[id.index()]
    }

    /// Mutable storage of an array.
    pub(crate) fn storage_mut(&mut self, id: ArrayId) -> &mut ArrayStorage {
        &mut self.arrays[id.index()]
    }

    /// The element data of an array.
    pub fn array_data(&self, id: ArrayId) -> &[f64] {
        &self.arrays[id.index()].data
    }

    /// Deterministic default initialization: strictly positive,
    /// diagonally-dominant-ish values, so numerically sensitive kernels
    /// (Cholesky's `SQRT`, ADI's divisions) stay finite.
    pub fn init_default(&mut self) {
        for (aid, st) in self.arrays.iter_mut().enumerate() {
            for (k, x) in st.data.iter_mut().enumerate() {
                let h = (k as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((aid as u64).wrapping_mul(1442695040888963407));
                // In [1.0, 2.0): positive and bounded away from zero.
                *x = 1.0 + (h >> 11) as f64 / (1u64 << 53) as f64;
            }
        }
    }

    /// Custom initialization: `f(array, linear_index)` supplies each
    /// element.
    pub fn init_with(&mut self, f: impl Fn(ArrayId, usize) -> f64) {
        for (aid, st) in self.arrays.iter_mut().enumerate() {
            for (k, x) in st.data.iter_mut().enumerate() {
                *x = f(ArrayId(aid as u32), k);
            }
        }
    }

    /// Total allocated elements across arrays.
    pub fn total_elements(&self) -> usize {
        self.arrays.iter().map(|a| a.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::build::ProgramBuilder;

    fn program() -> Program {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        b.array("A", vec![n.into(), n.into()]);
        b.array("B", vec![n.into()]);
        b.finish()
    }

    #[test]
    fn layout_is_column_major() {
        let p = program();
        let m = Machine::new(&p, &[4]).unwrap();
        let a = m.storage(ArrayId(0));
        // A(2,1) is element 1; A(1,2) is element 4.
        assert_eq!(a.linear_index(&[2, 1]), Some(1));
        assert_eq!(a.linear_index(&[1, 2]), Some(4));
        assert_eq!(a.linear_index(&[4, 4]), Some(15));
        assert_eq!(a.linear_index(&[5, 1]), None);
        assert_eq!(a.linear_index(&[0, 1]), None);
    }

    #[test]
    fn arrays_do_not_share_lines() {
        let p = program();
        let m = Machine::new(&p, &[16]).unwrap();
        let a = m.storage(ArrayId(0));
        let b = m.storage(ArrayId(1));
        let a_end = a.address_of(a.data.len() - 1) + ELEMENT_BYTES;
        assert!(b.base >= a_end + 128, "guard gap expected");
        assert_eq!(b.base % BASE_ALIGN, 0);
    }

    #[test]
    fn default_init_is_positive_and_deterministic() {
        let p = program();
        let m1 = Machine::new(&p, &[8]).unwrap();
        let m2 = Machine::new(&p, &[8]).unwrap();
        assert_eq!(m1.array_data(ArrayId(0)), m2.array_data(ArrayId(0)));
        assert!(m1
            .array_data(ArrayId(0))
            .iter()
            .all(|&x| (1.0..2.0).contains(&x)));
    }

    #[test]
    fn bad_extent_reported() {
        let p = program();
        let err = Machine::new(&p, &[0]).unwrap_err();
        assert!(matches!(err, ExecError::BadExtent { .. }), "{err:?}");
    }

    #[test]
    fn custom_init() {
        let p = program();
        let mut m = Machine::new(&p, &[2]).unwrap();
        m.init_with(|a, k| a.index() as f64 * 100.0 + k as f64);
        assert_eq!(m.array_data(ArrayId(1))[1], 101.0);
    }
}
