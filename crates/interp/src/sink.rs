//! Trace sinks: consumers of the interpreter's memory accesses.

use cmt_cache::{Cache, MultiCache, ObservedCache};
use cmt_obs::MetricsRegistry;

/// Receives every memory access the interpreter performs, in execution
/// order.
pub trait TraceSink {
    /// One element access at byte address `addr`; `is_write` is true for
    /// stores.
    fn access(&mut self, addr: u64, is_write: bool);
}

/// Discards the trace (pure execution / verification runs).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn access(&mut self, _addr: u64, _is_write: bool) {}
}

/// Counts loads and stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
}

impl TraceSink for CountingSink {
    fn access(&mut self, _addr: u64, is_write: bool) {
        if is_write {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
    }
}

impl TraceSink for Cache {
    fn access(&mut self, addr: u64, is_write: bool) {
        let _ = Cache::access(self, addr, is_write);
    }
}

impl TraceSink for MultiCache {
    fn access(&mut self, addr: u64, is_write: bool) {
        MultiCache::access(self, addr, is_write);
    }
}

impl TraceSink for ObservedCache {
    fn access(&mut self, addr: u64, is_write: bool) {
        let _ = ObservedCache::access(self, addr, is_write);
    }
}

/// Wraps another sink and meters the stream: loads and stores executed,
/// exportable into a [`MetricsRegistry`]. This is how a bench run answers
/// "how many accesses did the interpreter actually issue" without a
/// second pass over the trace.
#[derive(Clone, Debug, Default)]
pub struct MeteredSink<S> {
    /// The wrapped sink.
    pub inner: S,
    /// Loads forwarded so far.
    pub loads: u64,
    /// Stores forwarded so far.
    pub stores: u64,
}

impl<S: TraceSink> MeteredSink<S> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: S) -> Self {
        MeteredSink {
            inner,
            loads: 0,
            stores: 0,
        }
    }

    /// Total accesses forwarded.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Writes `{prefix}.{loads,stores,accesses}` counters into `registry`.
    pub fn export_metrics(&self, registry: &mut MetricsRegistry, prefix: &str) {
        registry.counter(&format!("{prefix}.loads"), self.loads);
        registry.counter(&format!("{prefix}.stores"), self.stores);
        registry.counter(&format!("{prefix}.accesses"), self.accesses());
    }
}

impl<S: TraceSink> TraceSink for MeteredSink<S> {
    fn access(&mut self, addr: u64, is_write: bool) {
        if is_write {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
        self.inner.access(addr, is_write);
    }
}

/// Borrows a cache (or any sink) mutably — convenient when the sink must
/// outlive the run.
#[derive(Debug)]
pub struct CacheSink<'a, S: TraceSink>(pub &'a mut S);

impl<S: TraceSink> TraceSink for CacheSink<'_, S> {
    fn access(&mut self, addr: u64, is_write: bool) {
        self.0.access(addr, is_write);
    }
}

/// Records the full trace in memory — for tests, debugging, and feeding
/// the same trace to several analyses.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    /// The trace, in execution order.
    pub trace: Vec<(u64, bool)>,
}

impl TraceSink for RecordingSink {
    fn access(&mut self, addr: u64, is_write: bool) {
        self.trace.push((addr, is_write));
    }
}

impl RecordingSink {
    /// Replays the recorded trace into another sink.
    pub fn replay(&self, sink: &mut impl TraceSink) {
        for &(addr, w) in &self.trace {
            sink.access(addr, w);
        }
    }
}

/// Fans one trace out to two sinks.
#[derive(Debug, Default)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn access(&mut self, addr: u64, is_write: bool) {
        self.0.access(addr, is_write);
        self.1.access(addr, is_write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_cache::CacheConfig;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.access(0, false);
        s.access(8, true);
        s.access(16, false);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn recording_and_replay() {
        let mut rec = RecordingSink::default();
        rec.access(0, false);
        rec.access(8, true);
        assert_eq!(rec.trace, vec![(0, false), (8, true)]);
        let mut count = CountingSink::default();
        rec.replay(&mut count);
        assert_eq!((count.loads, count.stores), (1, 1));
    }

    #[test]
    fn tee_feeds_both() {
        let mut tee = TeeSink(CountingSink::default(), RecordingSink::default());
        tee.access(16, false);
        tee.access(24, true);
        assert_eq!(tee.0.loads + tee.0.stores, 2);
        assert_eq!(tee.1.trace.len(), 2);
    }

    #[test]
    fn metered_sink_counts_and_forwards() {
        let mut m = MeteredSink::new(RecordingSink::default());
        m.access(0, false);
        m.access(8, true);
        m.access(16, false);
        assert_eq!(m.loads, 2);
        assert_eq!(m.stores, 1);
        assert_eq!(m.accesses(), 3);
        assert_eq!(m.inner.trace.len(), 3);
        let mut reg = MetricsRegistry::new();
        m.export_metrics(&mut reg, "interp");
        assert_eq!(reg.counter_value("interp.accesses"), 3);
        assert_eq!(reg.counter_value("interp.loads"), 2);
    }

    #[test]
    fn observed_cache_as_sink() {
        let mut oc = ObservedCache::new(Cache::new(CacheConfig::i860()), 0);
        oc.register_region("A", 0, 64);
        {
            let mut sink = CacheSink(&mut oc);
            sink.access(0, false);
            sink.access(8, false);
        }
        assert_eq!(oc.stats().hits, 1);
        assert_eq!(oc.per_array().next().unwrap().1.accesses, 2);
    }

    #[test]
    fn cache_as_sink() {
        let mut c = Cache::new(CacheConfig::i860());
        {
            let mut sink = CacheSink(&mut c);
            sink.access(0, false);
            sink.access(8, false);
        }
        assert_eq!(c.stats().hits, 1);
    }
}
