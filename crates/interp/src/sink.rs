//! Trace sinks: consumers of the interpreter's memory accesses.
//!
//! The interpreter no longer performs one virtual call per access: it
//! fills a fixed buffer of packed accesses (address plus write bit — see
//! [`pack_access`]) and flushes it through [`TraceSink::access_batch`],
//! amortizing the `dyn` dispatch ~[`BATCH_LEN`]× and letting cache sinks
//! run a tight monomorphic simulation loop per buffer. Sinks that only
//! implement [`TraceSink::access`] still observe every access in order
//! via the default batch implementation.

use cmt_cache::{Cache, MultiCache, ObservedCache, ShardedCache};
use cmt_obs::{MetricsRegistry, TraceArg, TraceTrack};

pub use cmt_cache::fast::{pack_access, unpack_access, WRITE_BIT};

/// Number of packed accesses the interpreter buffers between flushes
/// (32 KB per buffer — comfortably L1-resident).
pub const BATCH_LEN: usize = 4096;

/// Receives every memory access the interpreter performs, in execution
/// order.
pub trait TraceSink {
    /// One element access at byte address `addr`; `is_write` is true for
    /// stores.
    fn access(&mut self, addr: u64, is_write: bool);

    /// A buffer of packed accesses (see [`pack_access`]), in execution
    /// order. The default unpacks and forwards to [`TraceSink::access`],
    /// so implementing `access` alone is always correct; sinks on the
    /// hot path override this with a batch-granular implementation.
    fn access_batch(&mut self, batch: &[u64]) {
        for &p in batch {
            let (addr, w) = unpack_access(p);
            self.access(addr, w);
        }
    }
}

/// Discards the trace (pure execution / verification runs).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn access(&mut self, _addr: u64, _is_write: bool) {}

    fn access_batch(&mut self, _batch: &[u64]) {}
}

/// Counts loads and stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
}

impl TraceSink for CountingSink {
    fn access(&mut self, _addr: u64, is_write: bool) {
        if is_write {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
    }

    fn access_batch(&mut self, batch: &[u64]) {
        let stores = batch.iter().filter(|&&p| p & WRITE_BIT != 0).count() as u64;
        self.stores += stores;
        self.loads += batch.len() as u64 - stores;
    }
}

impl TraceSink for Cache {
    fn access(&mut self, addr: u64, is_write: bool) {
        let _ = Cache::access(self, addr, is_write);
    }

    fn access_batch(&mut self, batch: &[u64]) {
        Cache::access_batch(self, batch);
    }
}

impl TraceSink for MultiCache {
    fn access(&mut self, addr: u64, is_write: bool) {
        MultiCache::access(self, addr, is_write);
    }

    fn access_batch(&mut self, batch: &[u64]) {
        MultiCache::access_batch(self, batch);
    }
}

impl TraceSink for ShardedCache {
    fn access(&mut self, addr: u64, is_write: bool) {
        ShardedCache::access(self, addr, is_write);
    }

    fn access_batch(&mut self, batch: &[u64]) {
        ShardedCache::access_batch(self, batch);
    }
}

impl TraceSink for ObservedCache {
    fn access(&mut self, addr: u64, is_write: bool) {
        let _ = ObservedCache::access(self, addr, is_write);
    }

    fn access_batch(&mut self, batch: &[u64]) {
        ObservedCache::access_batch(self, batch);
    }
}

/// Wraps another sink and meters the stream: loads and stores executed,
/// exportable into a [`MetricsRegistry`]. This is how a bench run answers
/// "how many accesses did the interpreter actually issue" without a
/// second pass over the trace.
///
/// Generic over the inner sink — no boxing, no per-access virtual call —
/// so metering composes with the batched path for free: a batch is
/// counted with one pass over the write bits and handed to the inner
/// sink whole.
#[derive(Clone, Debug, Default)]
pub struct MeteredSink<S> {
    /// The wrapped sink.
    pub inner: S,
    /// Loads forwarded so far.
    pub loads: u64,
    /// Stores forwarded so far.
    pub stores: u64,
}

impl<S: TraceSink> MeteredSink<S> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: S) -> Self {
        MeteredSink {
            inner,
            loads: 0,
            stores: 0,
        }
    }

    /// Total accesses forwarded.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Writes `{prefix}.{loads,stores,accesses}` counters into `registry`.
    pub fn export_metrics(&self, registry: &mut MetricsRegistry, prefix: &str) {
        registry.counter(&format!("{prefix}.loads"), self.loads);
        registry.counter(&format!("{prefix}.stores"), self.stores);
        registry.counter(&format!("{prefix}.accesses"), self.accesses());
    }
}

impl<S: TraceSink> TraceSink for MeteredSink<S> {
    fn access(&mut self, addr: u64, is_write: bool) {
        if is_write {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
        self.inner.access(addr, is_write);
    }

    fn access_batch(&mut self, batch: &[u64]) {
        let stores = batch.iter().filter(|&&p| p & WRITE_BIT != 0).count() as u64;
        self.stores += stores;
        self.loads += batch.len() as u64 - stores;
        self.inner.access_batch(batch);
    }
}

/// Wraps a sink and records one trace span per flushed batch onto a
/// [`TraceTrack`], so a Perfetto view of a simulation shows where the
/// access stream's time actually goes batch by batch. Scalar accesses
/// forward untimed — per-access spans would dwarf the work they measure.
#[derive(Debug)]
pub struct TracedSink<'a, S> {
    /// The wrapped sink.
    pub inner: S,
    /// The track receiving one `sim.batch` complete-span per batch.
    pub track: &'a mut TraceTrack,
}

impl<'a, S: TraceSink> TracedSink<'a, S> {
    /// Wraps `inner`, spanning onto `track`.
    pub fn new(inner: S, track: &'a mut TraceTrack) -> Self {
        TracedSink { inner, track }
    }
}

impl<S: TraceSink> TraceSink for TracedSink<'_, S> {
    fn access(&mut self, addr: u64, is_write: bool) {
        self.inner.access(addr, is_write);
    }

    fn access_batch(&mut self, batch: &[u64]) {
        let start = self.track.now_us();
        self.inner.access_batch(batch);
        self.track.complete_since(
            start,
            "sim.batch",
            &[("len", TraceArg::U64(batch.len() as u64))],
        );
    }
}

/// Forwards only a deterministic subset of the access stream to the
/// inner sink: the stream is cut into fixed-length *windows* of
/// `window_len` consecutive accesses, and a window is simulated iff its
/// index falls on a seeded residue class modulo `stride` (or it is
/// window 0 — every stream contributes at least one measured window, so
/// short nests are never estimated from zero observations).
///
/// Windows are positions in the *logical* access stream, not interpreter
/// batches: a batch spanning a window boundary is split, so the sampled
/// subset depends only on `(window_len, stride, phase)` and the stream
/// itself — never on how the producer chunks its flushes. The phase is
/// derived from a caller-provided seed via [`cmt_obs::SplitMix64`],
/// which keeps sampled results byte-identical across `CMT_JOBS` values
/// and across runs.
///
/// The sink meters the whole stream (loads/stores seen) alongside the
/// forwarded subset, so callers can scale observed statistics back to
/// full-trace estimates (see `CacheStats::scaled_to` in `cmt-cache`).
#[derive(Clone, Debug)]
pub struct SampledSink<S> {
    /// The wrapped sink; sees only the sampled windows.
    pub inner: S,
    window_len: u64,
    stride: u64,
    phase: u64,
    position: u64,
    /// Loads seen (forwarded or not).
    pub loads_seen: u64,
    /// Stores seen (forwarded or not).
    pub stores_seen: u64,
    /// Accesses forwarded to the inner sink.
    pub sampled: u64,
}

impl<S: TraceSink> SampledSink<S> {
    /// Samples every `stride`-th window of `window_len` accesses, with
    /// the residue class drawn from `seed`. `stride = 1` (or a zero
    /// `stride`/`window_len`, which are clamped to 1) forwards the whole
    /// stream.
    pub fn every_kth(inner: S, window_len: u64, stride: u64, seed: u64) -> Self {
        let stride = stride.max(1);
        let phase = cmt_obs::SplitMix64::seed_from_u64(seed).next_u64() % stride;
        SampledSink {
            inner,
            window_len: window_len.max(1),
            stride,
            phase,
            position: 0,
            loads_seen: 0,
            stores_seen: 0,
            sampled: 0,
        }
    }

    /// A pass-through sampler: every access is forwarded, but the stream
    /// is still metered — the degenerate `stride = 1` case.
    pub fn full(inner: S) -> Self {
        SampledSink::every_kth(inner, BATCH_LEN as u64, 1, 0)
    }

    fn is_sampled(&self, window: u64) -> bool {
        window == 0 || window % self.stride == self.phase
    }

    /// Total accesses seen (forwarded or not).
    pub fn accesses_seen(&self) -> u64 {
        self.loads_seen + self.stores_seen
    }

    /// Windows the stream has started so far.
    pub fn windows_total(&self) -> u64 {
        self.position.div_ceil(self.window_len)
    }

    /// How many of [`SampledSink::windows_total`] were forwarded.
    pub fn windows_sampled(&self) -> u64 {
        let total = self.windows_total();
        if total == 0 {
            return 0;
        }
        if self.stride == 1 {
            return total;
        }
        // Count of w in [0, total) with w % stride == phase, plus
        // window 0 when it is not already on the phase class.
        let on_class = if self.phase >= total {
            0
        } else {
            (total - 1 - self.phase) / self.stride + 1
        };
        on_class + u64::from(self.phase != 0)
    }

    /// Fraction of the stream forwarded, in `[0, 1]`; `1.0` for an empty
    /// stream (nothing was skipped).
    pub fn sampled_fraction(&self) -> f64 {
        let seen = self.accesses_seen();
        if seen == 0 {
            1.0
        } else {
            self.sampled as f64 / seen as f64
        }
    }

    /// Consumes the sampler, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for SampledSink<S> {
    fn access(&mut self, addr: u64, is_write: bool) {
        if is_write {
            self.stores_seen += 1;
        } else {
            self.loads_seen += 1;
        }
        if self.is_sampled(self.position / self.window_len) {
            self.inner.access(addr, is_write);
            self.sampled += 1;
        }
        self.position += 1;
    }

    fn access_batch(&mut self, batch: &[u64]) {
        let stores = batch.iter().filter(|&&p| p & WRITE_BIT != 0).count() as u64;
        self.stores_seen += stores;
        self.loads_seen += batch.len() as u64 - stores;
        let mut off = 0usize;
        while off < batch.len() {
            let in_window = (self.window_len - self.position % self.window_len) as usize;
            let take = in_window.min(batch.len() - off);
            if self.is_sampled(self.position / self.window_len) {
                self.inner.access_batch(&batch[off..off + take]);
                self.sampled += take as u64;
            }
            self.position += take as u64;
            off += take;
        }
    }
}

/// Borrows a cache (or any sink) mutably — convenient when the sink must
/// outlive the run.
#[derive(Debug)]
pub struct CacheSink<'a, S: TraceSink>(pub &'a mut S);

impl<S: TraceSink> TraceSink for CacheSink<'_, S> {
    fn access(&mut self, addr: u64, is_write: bool) {
        self.0.access(addr, is_write);
    }

    fn access_batch(&mut self, batch: &[u64]) {
        self.0.access_batch(batch);
    }
}

/// Records the full trace in memory — for tests, debugging, and feeding
/// the same trace to several analyses.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    /// The trace, in execution order.
    pub trace: Vec<(u64, bool)>,
}

impl TraceSink for RecordingSink {
    fn access(&mut self, addr: u64, is_write: bool) {
        self.trace.push((addr, is_write));
    }

    fn access_batch(&mut self, batch: &[u64]) {
        self.trace.extend(batch.iter().map(|&p| unpack_access(p)));
    }
}

impl RecordingSink {
    /// Replays the recorded trace into another sink, one scalar
    /// [`TraceSink::access`] call per element — the reference path
    /// equivalence tests compare the batched engine against.
    pub fn replay(&self, sink: &mut impl TraceSink) {
        for &(addr, w) in &self.trace {
            sink.access(addr, w);
        }
    }

    /// Replays the recorded trace through [`TraceSink::access_batch`] in
    /// [`BATCH_LEN`]-sized buffers — the same shape the interpreter
    /// produces.
    pub fn replay_batched(&self, sink: &mut impl TraceSink) {
        let mut buf = Vec::with_capacity(BATCH_LEN.min(self.trace.len()));
        for chunk in self.trace.chunks(BATCH_LEN) {
            buf.clear();
            buf.extend(chunk.iter().map(|&(a, w)| pack_access(a, w)));
            sink.access_batch(&buf);
        }
    }
}

/// Fans one trace out to two sinks.
#[derive(Debug, Default)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn access(&mut self, addr: u64, is_write: bool) {
        self.0.access(addr, is_write);
        self.1.access(addr, is_write);
    }

    fn access_batch(&mut self, batch: &[u64]) {
        self.0.access_batch(batch);
        self.1.access_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_cache::CacheConfig;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.access(0, false);
        s.access(8, true);
        s.access(16, false);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn counting_sink_batch_matches_scalar() {
        let batch: Vec<u64> = (0..1000u64)
            .map(|k| pack_access(k * 8, k % 3 == 0))
            .collect();
        let mut scalar = CountingSink::default();
        for &p in &batch {
            let (a, w) = unpack_access(p);
            scalar.access(a, w);
        }
        let mut batched = CountingSink::default();
        batched.access_batch(&batch);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn recording_and_replay() {
        let mut rec = RecordingSink::default();
        rec.access(0, false);
        rec.access(8, true);
        assert_eq!(rec.trace, vec![(0, false), (8, true)]);
        let mut count = CountingSink::default();
        rec.replay(&mut count);
        assert_eq!((count.loads, count.stores), (1, 1));
    }

    #[test]
    fn batched_replay_matches_scalar_replay() {
        let mut rec = RecordingSink::default();
        for k in 0..10_000u64 {
            rec.access((k * 56) % (1 << 16), k % 4 == 0);
        }
        let mut a = Cache::new(CacheConfig::i860());
        let mut b = Cache::new(CacheConfig::i860());
        rec.replay(&mut a);
        rec.replay_batched(&mut b);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn default_batch_preserves_order() {
        // A sink that only implements `access` sees batch elements in
        // execution order.
        struct Orders(Vec<(u64, bool)>);
        impl TraceSink for Orders {
            fn access(&mut self, addr: u64, w: bool) {
                self.0.push((addr, w));
            }
        }
        let mut s = Orders(Vec::new());
        s.access_batch(&[
            pack_access(8, false),
            pack_access(16, true),
            pack_access(0, false),
        ]);
        assert_eq!(s.0, vec![(8, false), (16, true), (0, false)]);
    }

    #[test]
    fn tee_feeds_both() {
        let mut tee = TeeSink(CountingSink::default(), RecordingSink::default());
        tee.access(16, false);
        tee.access(24, true);
        tee.access_batch(&[pack_access(32, false)]);
        assert_eq!(tee.0.loads + tee.0.stores, 3);
        assert_eq!(tee.1.trace.len(), 3);
    }

    #[test]
    fn metered_sink_counts_and_forwards() {
        let mut m = MeteredSink::new(RecordingSink::default());
        m.access(0, false);
        m.access(8, true);
        m.access_batch(&[pack_access(16, false)]);
        assert_eq!(m.loads, 2);
        assert_eq!(m.stores, 1);
        assert_eq!(m.accesses(), 3);
        assert_eq!(m.inner.trace.len(), 3);
        let mut reg = MetricsRegistry::new();
        m.export_metrics(&mut reg, "interp");
        assert_eq!(reg.counter_value("interp.accesses"), 3);
        assert_eq!(reg.counter_value("interp.loads"), 2);
    }

    #[test]
    fn metered_batch_path_matches_per_access_path() {
        // The same packed trace through `access_batch` and through
        // per-access calls must leave *exactly* equal meters and equal
        // inner-cache metrics — the batched path is an optimization,
        // never a semantic change.
        let packed: Vec<u64> = (0..10_000u64)
            .map(|k| pack_access((k * 72) % (1 << 14), k % 5 == 0))
            .collect();
        let mut per_access =
            MeteredSink::new(ObservedCache::new(Cache::new(CacheConfig::i860()), 64));
        per_access.inner.register_region("A", 0, 1 << 14);
        for &p in &packed {
            let (a, w) = unpack_access(p);
            per_access.access(a, w);
        }
        let mut batched = MeteredSink::new(ObservedCache::new(Cache::new(CacheConfig::i860()), 64));
        batched.inner.register_region("A", 0, 1 << 14);
        for chunk in packed.chunks(BATCH_LEN) {
            batched.access_batch(chunk);
        }
        assert_eq!(per_access.loads, batched.loads);
        assert_eq!(per_access.stores, batched.stores);
        assert_eq!(per_access.accesses(), batched.accesses());
        let mut ra = MetricsRegistry::new();
        let mut rb = MetricsRegistry::new();
        per_access.export_metrics(&mut ra, "interp");
        batched.export_metrics(&mut rb, "interp");
        per_access.inner.flush_window();
        batched.inner.flush_window();
        per_access.inner.export_metrics(&mut ra, "cache");
        batched.inner.export_metrics(&mut rb, "cache");
        assert_eq!(ra.to_json(), rb.to_json(), "metrics must match exactly");
    }

    #[test]
    fn traced_sink_spans_each_batch() {
        use cmt_obs::TraceSession;
        let mut session = TraceSession::new();
        let mut track = session.track("sim");
        let mut sink = TracedSink::new(CountingSink::default(), &mut track);
        sink.access(0, false); // scalar path: no span
        sink.access_batch(&[pack_access(8, false), pack_access(16, true)]);
        sink.access_batch(&[pack_access(24, false)]);
        assert_eq!(sink.inner.loads + sink.inner.stores, 4);
        assert_eq!(track.len(), 2, "one complete-span per batch");
        session.absorb(track);
        session.validate().unwrap();
    }

    #[test]
    fn sampled_sink_is_chunking_invariant() {
        // The sampled subset must depend only on stream position, never
        // on how the producer batches — scalar calls, BATCH_LEN chunks,
        // and ragged chunks all forward the identical subsequence.
        let packed: Vec<u64> = (0..10_000u64)
            .map(|k| pack_access(k * 8, k % 7 == 0))
            .collect();
        let run = |chunks: &[usize]| -> Vec<(u64, bool)> {
            let mut s = SampledSink::every_kth(RecordingSink::default(), 256, 4, 42);
            let mut off = 0;
            for &c in chunks.iter().cycle() {
                if off >= packed.len() {
                    break;
                }
                let end = (off + c).min(packed.len());
                if c == 1 {
                    let (a, w) = unpack_access(packed[off]);
                    s.access(a, w);
                } else {
                    s.access_batch(&packed[off..end]);
                }
                off = end;
            }
            assert_eq!(s.accesses_seen(), packed.len() as u64);
            s.into_inner().trace
        };
        let scalar = run(&[1]);
        let batched = run(&[BATCH_LEN]);
        let ragged = run(&[3, 700, 13, 255, 1024]);
        assert!(!scalar.is_empty());
        assert!(scalar.len() < packed.len(), "something must be skipped");
        assert_eq!(scalar, batched);
        assert_eq!(scalar, ragged);
    }

    #[test]
    fn sampled_sink_full_forwards_everything() {
        let mut s = SampledSink::full(CountingSink::default());
        let packed: Vec<u64> = (0..5000u64).map(|k| pack_access(k * 8, false)).collect();
        s.access_batch(&packed);
        assert_eq!(s.sampled, 5000);
        assert_eq!(s.accesses_seen(), 5000);
        assert_eq!(s.inner.loads, 5000);
        assert_eq!(s.windows_sampled(), s.windows_total());
        assert_eq!(s.sampled_fraction(), 1.0);
    }

    #[test]
    fn sampled_sink_always_samples_window_zero() {
        // Whatever phase the seed draws, a short stream (inside window 0)
        // is observed in full — tiny nests are measured exactly.
        for seed in 0..32u64 {
            let mut s = SampledSink::every_kth(CountingSink::default(), 256, 16, seed);
            for k in 0..100u64 {
                s.access(k * 8, false);
            }
            assert_eq!(s.sampled, 100, "seed {seed}");
            assert_eq!(s.windows_sampled(), 1);
        }
    }

    #[test]
    fn sampled_window_count_matches_brute_force() {
        for seed in [0u64, 1, 7, 99] {
            for total_accesses in [0u64, 1, 255, 256, 257, 10_000] {
                let mut s = SampledSink::every_kth(CountingSink::default(), 256, 16, seed);
                let mut expect = 0u64;
                let mut last_window = u64::MAX;
                for k in 0..total_accesses {
                    let w = k / 256;
                    if w != last_window && s.is_sampled(w) {
                        expect += 1;
                        last_window = w;
                    }
                    s.access(k * 8, false);
                }
                assert_eq!(
                    s.windows_sampled(),
                    expect,
                    "seed {seed} len {total_accesses}"
                );
                assert_eq!(s.windows_total(), total_accesses.div_ceil(256));
            }
        }
    }

    #[test]
    fn sampled_seed_is_deterministic_and_varies() {
        let phase_of = |seed: u64| {
            let s = SampledSink::every_kth(NullSink, 256, 16, seed);
            (0..16u64)
                .find(|&w| w != 0 && s.is_sampled(w))
                .unwrap_or(16)
        };
        assert_eq!(phase_of(42), phase_of(42));
        let distinct: std::collections::HashSet<u64> = (0..64).map(phase_of).collect();
        assert!(distinct.len() > 4, "seeds should spread over residues");
    }

    #[test]
    fn observed_cache_as_sink() {
        let mut oc = ObservedCache::new(Cache::new(CacheConfig::i860()), 0);
        oc.register_region("A", 0, 64);
        {
            let mut sink = CacheSink(&mut oc);
            sink.access(0, false);
            sink.access(8, false);
        }
        assert_eq!(oc.stats().hits, 1);
        assert_eq!(oc.per_array().next().unwrap().1.accesses, 2);
    }

    #[test]
    fn cache_as_sink() {
        let mut c = Cache::new(CacheConfig::i860());
        {
            let mut sink = CacheSink(&mut c);
            sink.access(0, false);
            sink.access(8, false);
        }
        assert_eq!(c.stats().hits, 1);
    }
}
