//! The interpreter proper.

use crate::machine::Machine;
use crate::sink::{pack_access, TraceSink, BATCH_LEN};
use cmt_ir::expr::Expr;
use cmt_ir::node::{Loop, Node};
use cmt_ir::program::Program;
use cmt_ir::stmt::{ArrayRef, Stmt};
use std::fmt;

/// Runtime failure during execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Bound or subscript evaluation failed (unbound variable/parameter).
    Eval(String),
    /// An array extent evaluated to a non-positive value.
    BadExtent {
        /// Array name.
        array: String,
        /// Offending extent value.
        extent: i64,
    },
    /// A subscript fell outside the array.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Evaluated subscripts.
        subscripts: Vec<i64>,
        /// Declared extents.
        dims: Vec<i64>,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Eval(s) => write!(f, "evaluation failed: {s}"),
            ExecError::BadExtent { array, extent } => {
                write!(f, "array {array} has non-positive extent {extent}")
            }
            ExecError::OutOfBounds {
                array,
                subscripts,
                dims,
            } => write!(
                f,
                "subscript {subscripts:?} out of bounds for {array} with extents {dims:?}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Aggregate counts from one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecSummary {
    /// Loads performed.
    pub loads: u64,
    /// Stores performed.
    pub stores: u64,
    /// Statement executions.
    pub stmt_executions: u64,
}

struct Exec<'m, 's> {
    machine: &'m mut Machine,
    sink: &'s mut dyn TraceSink,
    summary: ExecSummary,
    program: &'m Program,
    /// Packed-access buffer; flushed through [`TraceSink::access_batch`]
    /// when full, so the virtual dispatch to the sink is paid once per
    /// [`BATCH_LEN`] accesses instead of once per access.
    buf: Vec<u64>,
}

impl Machine {
    /// Executes `program` against this machine's arrays, emitting every
    /// access to `sink` (batched — see [`TraceSink::access_batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on unbound symbols or out-of-bounds
    /// subscripts; array contents up to the failure point are retained,
    /// and accesses performed before the failure are still flushed to
    /// the sink.
    pub fn run(
        &mut self,
        program: &Program,
        sink: &mut dyn TraceSink,
    ) -> Result<ExecSummary, ExecError> {
        let mut exec = Exec {
            machine: self,
            sink,
            summary: ExecSummary::default(),
            program,
            buf: Vec::with_capacity(BATCH_LEN),
        };
        let mut result = Ok(());
        for n in program.body() {
            if let Err(e) = exec.node(n) {
                result = Err(e);
                break;
            }
        }
        exec.flush();
        result.map(|()| exec.summary)
    }
}

impl Exec<'_, '_> {
    #[inline]
    fn emit(&mut self, addr: u64, is_write: bool) {
        self.buf.push(pack_access(addr, is_write));
        if self.buf.len() == BATCH_LEN {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.sink.access_batch(&self.buf);
            self.buf.clear();
        }
    }

    fn node(&mut self, n: &Node) -> Result<(), ExecError> {
        match n {
            Node::Stmt(s) => self.stmt(s),
            Node::Loop(l) => self.loop_(l),
        }
    }

    fn loop_(&mut self, l: &Loop) -> Result<(), ExecError> {
        let lo = l
            .lower()
            .eval(self.machine.env())
            .map_err(|e| ExecError::Eval(e.to_string()))?;
        let hi = l
            .upper()
            .eval(self.machine.env())
            .map_err(|e| ExecError::Eval(e.to_string()))?;
        let step = l.step();
        let var = l.var();
        let mut v = lo;
        loop {
            if step > 0 {
                if v > hi {
                    break;
                }
            } else if v < hi {
                break;
            }
            self.machine.env_mut().bind_var(var, v);
            for n in l.body() {
                self.node(n)?;
            }
            v += step;
        }
        self.machine.env_mut().unbind_var(var);
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), ExecError> {
        let value = self.eval(s.rhs())?;
        let (addr, idx) = self.locate(s.lhs())?;
        self.machine.storage_mut(s.lhs().array()).data[idx] = value;
        self.emit(addr, true);
        self.summary.stores += 1;
        self.summary.stmt_executions += 1;
        Ok(())
    }

    fn locate(&self, r: &ArrayRef) -> Result<(u64, usize), ExecError> {
        // Hot path: avoid a heap allocation per access for the common
        // ranks.
        let mut buf = [0i64; 8];
        let rank = r.rank();
        let subs: &mut [i64] = if rank <= buf.len() {
            &mut buf[..rank]
        } else {
            // Exotic ranks fall back to the slow path.
            return self.locate_slow(r);
        };
        for (slot, s) in subs.iter_mut().zip(r.subscripts()) {
            *slot = s
                .eval(self.machine.env())
                .map_err(|e| ExecError::Eval(e.to_string()))?;
        }
        let st = self.machine.storage(r.array());
        match st.linear_index(subs) {
            Some(idx) => Ok((st.address_of(idx), idx)),
            None => Err(ExecError::OutOfBounds {
                array: self.program.array(r.array()).name().to_string(),
                subscripts: subs.to_vec(),
                dims: st.dims.clone(),
            }),
        }
    }

    #[cold]
    fn locate_slow(&self, r: &ArrayRef) -> Result<(u64, usize), ExecError> {
        let mut subs = Vec::with_capacity(r.rank());
        for s in r.subscripts() {
            subs.push(
                s.eval(self.machine.env())
                    .map_err(|e| ExecError::Eval(e.to_string()))?,
            );
        }
        let st = self.machine.storage(r.array());
        match st.linear_index(&subs) {
            Some(idx) => Ok((st.address_of(idx), idx)),
            None => Err(ExecError::OutOfBounds {
                array: self.program.array(r.array()).name().to_string(),
                subscripts: subs,
                dims: st.dims.clone(),
            }),
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<f64, ExecError> {
        match e {
            Expr::Const(c) => Ok(*c),
            Expr::Index(v) => self
                .machine
                .env()
                .var(*v)
                .map(|x| x as f64)
                .ok_or_else(|| ExecError::Eval(format!("unbound index {v}"))),
            Expr::Param(p) => self
                .machine
                .env()
                .param(*p)
                .map(|x| x as f64)
                .ok_or_else(|| ExecError::Eval(format!("unbound parameter {p}"))),
            Expr::Load(r) => {
                let (addr, idx) = self.locate(r)?;
                let v = self.machine.storage(r.array()).data[idx];
                self.emit(addr, false);
                self.summary.loads += 1;
                Ok(v)
            }
            Expr::Unary(op, inner) => Ok(op.apply(self.eval(inner)?)),
            Expr::Binary(op, a, b) => {
                let x = self.eval(a)?;
                let y = self.eval(b)?;
                Ok(op.apply(x, y))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, NullSink};
    use cmt_ir::affine::Affine;
    use cmt_ir::build::ProgramBuilder;
    use cmt_ir::ids::ArrayId;

    #[test]
    fn triangular_loop_iteration_count() {
        // DO I = 1, N { DO J = 1, I { A(I,J) = 1 } } → N(N+1)/2 stores.
        let mut b = ProgramBuilder::new("tri");
        let n = b.param("N");
        let a = b.matrix("A", n);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            b.loop_("J", 1, i, |b| {
                let j = b.var("J");
                let lhs = b.at(a, [i, j]);
                b.assign(lhs, Expr::Const(1.0));
            });
        });
        let p = b.finish();
        let mut m = Machine::new(&p, &[10]).unwrap();
        let mut sink = CountingSink::default();
        let sum = m.run(&p, &mut sink).unwrap();
        assert_eq!(sum.stores, 55);
        assert_eq!(sink.stores, 55);
        assert_eq!(sum.loads, 0);
    }

    #[test]
    fn empty_range_executes_zero_iterations() {
        let mut b = ProgramBuilder::new("empty");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        b.loop_("I", 5, 4, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            b.assign(lhs, Expr::Const(1.0));
        });
        let p = b.finish();
        let mut m = Machine::new(&p, &[8]).unwrap();
        let sum = m.run(&p, &mut NullSink).unwrap();
        assert_eq!(sum.stores, 0);
    }

    #[test]
    fn negative_step() {
        let mut b = ProgramBuilder::new("down");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        b.loop_step("I", n, 1, -1, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            b.assign(lhs, Expr::Index(i) * Expr::Const(1.0));
        });
        let p = b.finish();
        let mut m = Machine::new(&p, &[5]).unwrap();
        m.run(&p, &mut NullSink).unwrap();
        assert_eq!(m.array_data(ArrayId(0)), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn recurrence_semantics() {
        // A(I) = A(I-1) + 1, A(0-based init 1.0-ish): use explicit init.
        let mut b = ProgramBuilder::new("scan");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        b.loop_("I", 2, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            let rhs = Expr::load(b.at_vec(a, vec![Affine::var(i) - 1])) + Expr::Const(1.0);
            b.assign(lhs, rhs);
        });
        let p = b.finish();
        let mut m = Machine::new(&p, &[6]).unwrap();
        m.init_with(|_, _| 0.0);
        m.run(&p, &mut NullSink).unwrap();
        assert_eq!(m.array_data(ArrayId(0)), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut b = ProgramBuilder::new("oob");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at_vec(a, vec![Affine::var(i) + 1]);
            b.assign(lhs, Expr::Const(0.0));
        });
        let p = b.finish();
        let mut m = Machine::new(&p, &[4]).unwrap();
        let err = m.run(&p, &mut NullSink).unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }), "{err}");
    }

    #[test]
    fn loads_emitted_in_source_order_before_store() {
        let mut b = ProgramBuilder::new("order");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        let c = b.array("C", vec![n.into()]);
        b.loop_("I", 1, 1, |b| {
            let i = b.var("I");
            let lhs = b.at(c, [i]);
            let rhs = Expr::load(b.at(a, [i])) + Expr::load(b.at(c, [i]));
            b.assign(lhs, rhs);
        });
        let p = b.finish();
        let mut m = Machine::new(&p, &[4]).unwrap();

        #[derive(Default)]
        struct Recorder(Vec<(u64, bool)>);
        impl TraceSink for Recorder {
            fn access(&mut self, addr: u64, w: bool) {
                self.0.push((addr, w));
            }
        }
        let mut rec = Recorder::default();
        let a_base = m.storage(ArrayId(0)).base;
        let c_base = m.storage(ArrayId(1)).base;
        m.run(&p, &mut rec).unwrap();
        assert_eq!(
            rec.0,
            vec![(a_base, false), (c_base, false), (c_base, true)]
        );
    }
}
