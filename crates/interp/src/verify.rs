//! The transformation-correctness oracle.
//!
//! Loop permutation, fusion, distribution, and reversal must preserve a
//! program's semantics exactly. [`equivalent`] executes two programs that
//! share declarations (an original and its transformed version) from the
//! same initial state and compares every array bit-for-bit.

use crate::exec::ExecError;
use crate::machine::Machine;
use crate::sink::NullSink;
use cmt_ir::ids::ArrayId;
use cmt_ir::program::Program;

/// The result of an equivalence check.
#[derive(Clone, Debug, PartialEq)]
pub struct EquivalenceReport {
    /// True when every array matched bit-exactly.
    pub equivalent: bool,
    /// First difference found, if any: array, linear index, and the two
    /// values.
    pub first_diff: Option<(ArrayId, usize, f64, f64)>,
}

/// Runs `original` and `transformed` (which must share array/parameter
/// declarations — transformations never change them) on identical initial
/// state and compares final array contents.
///
/// # Errors
///
/// Propagates execution errors from either program.
pub fn equivalent(
    original: &Program,
    transformed: &Program,
    param_values: &[i64],
) -> Result<EquivalenceReport, ExecError> {
    let mut m1 = Machine::new(original, param_values)?;
    let mut m2 = Machine::new(transformed, param_values)?;
    m1.run(original, &mut NullSink)?;
    m2.run(transformed, &mut NullSink)?;

    for aid in 0..original.arrays().len() {
        let id = ArrayId(aid as u32);
        let d1 = m1.array_data(id);
        let d2 = m2.array_data(id);
        debug_assert_eq!(d1.len(), d2.len(), "same declarations, same layout");
        for (k, (x, y)) in d1.iter().zip(d2).enumerate() {
            // Bit-exact comparison (NaN == NaN by bits).
            if x.to_bits() != y.to_bits() {
                return Ok(EquivalenceReport {
                    equivalent: false,
                    first_diff: Some((id, k, *x, *y)),
                });
            }
        }
    }
    Ok(EquivalenceReport {
        equivalent: true,
        first_diff: None,
    })
}

/// Panicking form of [`equivalent`] for tests.
///
/// # Panics
///
/// Panics when execution fails or the programs disagree.
pub fn assert_equivalent(original: &Program, transformed: &Program, param_values: &[i64]) {
    let report = equivalent(original, transformed, param_values)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));
    if !report.equivalent {
        let (id, k, x, y) = report.first_diff.expect("non-equivalent has a diff");
        panic!(
            "programs disagree at {}[{k}]: original={x}, transformed={y}",
            original.array(id).name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::build::ProgramBuilder;
    use cmt_ir::expr::Expr;
    use cmt_locality::{compound::compound, model::CostModel};

    fn matmul(order: [&str; 3]) -> Program {
        let mut b = ProgramBuilder::new("mm");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let bb = b.matrix("B", n);
        let c = b.matrix("C", n);
        // Build nested loops in the given order; body always the same.
        let body = |b: &mut ProgramBuilder| {
            let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
            let lhs = b.at(c, [i, j]);
            let rhs = Expr::load(b.at(c, [i, j]))
                + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
            b.assign(lhs, rhs);
        };
        let o: Vec<String> = order.iter().map(|s| s.to_string()).collect();
        b.loop_(&o[0], 1, n, |b| {
            b.loop_(&o[1], 1, n, |b| {
                b.loop_(&o[2], 1, n, body);
            });
        });
        b.finish()
    }

    #[test]
    fn all_matmul_orders_are_equivalent() {
        let base = matmul(["I", "J", "K"]);
        for order in [
            ["I", "K", "J"],
            ["J", "I", "K"],
            ["J", "K", "I"],
            ["K", "I", "J"],
            ["K", "J", "I"],
        ] {
            let other = matmul(order);
            assert_equivalent(&base, &other, &[12]);
        }
    }

    #[test]
    fn compound_preserves_matmul_semantics() {
        let base = matmul(["I", "J", "K"]);
        let mut transformed = base.clone();
        let _ = compound(&mut transformed, &CostModel::new(4));
        assert_equivalent(&base, &transformed, &[16]);
    }

    #[test]
    fn detects_inequivalence() {
        let mut b = ProgramBuilder::new("one");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            b.assign(lhs, Expr::Const(1.0));
        });
        let p1 = b.finish();

        let mut b = ProgramBuilder::new("two");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            b.assign(lhs, Expr::Const(2.0));
        });
        let p2 = b.finish();

        let rep = equivalent(&p1, &p2, &[4]).unwrap();
        assert!(!rep.equivalent);
        let (_, k, x, y) = rep.first_diff.unwrap();
        assert_eq!((k, x, y), (0, 1.0, 2.0));
    }
}
