//! Property tests for the affine-expression algebra the whole system
//! rests on.

use cmt_ir::affine::{Affine, Env};
use cmt_ir::ids::{ParamId, VarId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct AffSpec {
    constant: i64,
    vars: Vec<(u32, i64)>,
    params: Vec<(u32, i64)>,
}

fn aff_strategy() -> impl Strategy<Value = AffSpec> {
    (
        -100i64..100,
        prop::collection::vec((0u32..4, -10i64..10), 0..4),
        prop::collection::vec((0u32..2, -10i64..10), 0..3),
    )
        .prop_map(|(constant, vars, params)| AffSpec {
            constant,
            vars,
            params,
        })
}

fn build(spec: &AffSpec) -> Affine {
    Affine::from_parts(
        spec.constant,
        spec.vars.iter().map(|&(v, c)| (VarId(v), c)),
        spec.params.iter().map(|&(p, c)| (ParamId(p), c)),
    )
}

fn env(values: &[i64; 4], params: &[i64; 2]) -> Env {
    let mut e = Env::new();
    for (k, &v) in values.iter().enumerate() {
        e.bind_var(VarId(k as u32), v);
    }
    for (k, &p) in params.iter().enumerate() {
        e.bind_param(ParamId(k as u32), p);
    }
    e
}

proptest! {
    /// Evaluation is a ring homomorphism: eval(a ± b) = eval(a) ± eval(b),
    /// eval(k·a) = k·eval(a).
    #[test]
    fn eval_is_linear(
        a in aff_strategy(), b in aff_strategy(),
        vals in prop::array::uniform4(-20i64..20),
        ps in prop::array::uniform2(-20i64..20),
        k in -5i64..5,
    ) {
        let e = env(&vals, &ps);
        let (x, y) = (build(&a), build(&b));
        let (ex, ey) = (x.eval(&e).unwrap(), y.eval(&e).unwrap());
        prop_assert_eq!((x.clone() + y.clone()).eval(&e).unwrap(), ex + ey);
        prop_assert_eq!((x.clone() - y).eval(&e).unwrap(), ex - ey);
        prop_assert_eq!((x * k).eval(&e).unwrap(), ex * k);
    }

    /// Substitution agrees with evaluation: eval(a[v := r]) under E equals
    /// eval(a) under E[v ↦ eval(r)].
    #[test]
    fn substitution_respects_eval(
        a in aff_strategy(), r in aff_strategy(),
        vals in prop::array::uniform4(-20i64..20),
        ps in prop::array::uniform2(-20i64..20),
        which in 0u32..4,
    ) {
        let e = env(&vals, &ps);
        let v = VarId(which);
        let x = build(&a);
        let repl = build(&r);
        let substituted = x.substitute_var(v, &repl);
        let mut e2 = e.clone();
        e2.bind_var(v, repl.eval(&e).unwrap());
        prop_assert_eq!(substituted.eval(&e).unwrap(), x.eval(&e2).unwrap());
    }

    /// Simultaneous renaming is evaluation under a permuted environment.
    #[test]
    fn rename_vars_matches_swapped_env(
        a in aff_strategy(),
        vals in prop::array::uniform4(-20i64..20),
        ps in prop::array::uniform2(-20i64..20),
    ) {
        let e = env(&vals, &ps);
        let x = build(&a);
        // Swap v0 and v1 everywhere.
        let swapped = x.rename_vars(&[(VarId(0), VarId(1)), (VarId(1), VarId(0))]);
        let mut e2 = e.clone();
        e2.bind_var(VarId(0), vals[1]);
        e2.bind_var(VarId(1), vals[0]);
        prop_assert_eq!(swapped.eval(&e).unwrap(), x.eval(&e2).unwrap());
    }

    /// Normalization: structural equality equals semantic equality on a
    /// probing set of environments.
    #[test]
    fn normalization_canonical(a in aff_strategy(), b in aff_strategy()) {
        let (x, y) = (build(&a), build(&b));
        if x == y {
            for probe in [[1, 2, 3, 4], [7, -3, 0, 11], [100, 100, -100, 5]] {
                let e = env(&probe, &[13, -7]);
                prop_assert_eq!(x.eval(&e).unwrap(), y.eval(&e).unwrap());
            }
        }
    }

    /// Negation is an involution and `a - a = 0`.
    #[test]
    fn neg_involution(a in aff_strategy()) {
        let x = build(&a);
        prop_assert_eq!(-(-x.clone()), x.clone());
        prop_assert!((x.clone() - x).is_constant());
    }
}
