//! Property-style tests for the affine-expression algebra the whole
//! system rests on. Inputs come from a seeded in-repo PRNG
//! ([`cmt_obs::SplitMix64`]) so the suite is deterministic and needs no
//! external crates.

use cmt_ir::affine::{Affine, Env};
use cmt_ir::ids::{ParamId, VarId};
use cmt_obs::SplitMix64;

const CASES: usize = 256;

#[derive(Clone, Debug)]
struct AffSpec {
    constant: i64,
    vars: Vec<(u32, i64)>,
    params: Vec<(u32, i64)>,
}

fn random_spec(rng: &mut SplitMix64) -> AffSpec {
    let nvars = rng.gen_range_usize(0, 3);
    let nparams = rng.gen_range_usize(0, 2);
    AffSpec {
        constant: rng.gen_range_i64(-100, 99),
        vars: (0..nvars)
            .map(|_| (rng.gen_range_i64(0, 3) as u32, rng.gen_range_i64(-10, 9)))
            .collect(),
        params: (0..nparams)
            .map(|_| (rng.gen_range_i64(0, 1) as u32, rng.gen_range_i64(-10, 9)))
            .collect(),
    }
}

fn build(spec: &AffSpec) -> Affine {
    Affine::from_parts(
        spec.constant,
        spec.vars.iter().map(|&(v, c)| (VarId(v), c)),
        spec.params.iter().map(|&(p, c)| (ParamId(p), c)),
    )
}

fn env(values: &[i64; 4], params: &[i64; 2]) -> Env {
    let mut e = Env::new();
    for (k, &v) in values.iter().enumerate() {
        e.bind_var(VarId(k as u32), v);
    }
    for (k, &p) in params.iter().enumerate() {
        e.bind_param(ParamId(k as u32), p);
    }
    e
}

fn random_env_values(rng: &mut SplitMix64) -> ([i64; 4], [i64; 2]) {
    let mut vals = [0i64; 4];
    let mut ps = [0i64; 2];
    for v in &mut vals {
        *v = rng.gen_range_i64(-20, 19);
    }
    for p in &mut ps {
        *p = rng.gen_range_i64(-20, 19);
    }
    (vals, ps)
}

/// Evaluation is a ring homomorphism: eval(a ± b) = eval(a) ± eval(b),
/// eval(k·a) = k·eval(a).
#[test]
fn eval_is_linear() {
    let mut rng = SplitMix64::seed_from_u64(0xA11E);
    for _ in 0..CASES {
        let (a, b) = (random_spec(&mut rng), random_spec(&mut rng));
        let (vals, ps) = random_env_values(&mut rng);
        let k = rng.gen_range_i64(-5, 4);
        let e = env(&vals, &ps);
        let (x, y) = (build(&a), build(&b));
        let (ex, ey) = (x.eval(&e).unwrap(), y.eval(&e).unwrap());
        assert_eq!((x.clone() + y.clone()).eval(&e).unwrap(), ex + ey);
        assert_eq!((x.clone() - y).eval(&e).unwrap(), ex - ey);
        assert_eq!((x * k).eval(&e).unwrap(), ex * k);
    }
}

/// Substitution agrees with evaluation: eval(a[v := r]) under E equals
/// eval(a) under E[v ↦ eval(r)].
#[test]
fn substitution_respects_eval() {
    let mut rng = SplitMix64::seed_from_u64(0x5B5);
    for _ in 0..CASES {
        let (a, r) = (random_spec(&mut rng), random_spec(&mut rng));
        let (vals, ps) = random_env_values(&mut rng);
        let which = rng.gen_range_i64(0, 3) as u32;
        let e = env(&vals, &ps);
        let v = VarId(which);
        let x = build(&a);
        let repl = build(&r);
        let substituted = x.substitute_var(v, &repl);
        let mut e2 = e.clone();
        e2.bind_var(v, repl.eval(&e).unwrap());
        assert_eq!(substituted.eval(&e).unwrap(), x.eval(&e2).unwrap());
    }
}

/// Simultaneous renaming is evaluation under a permuted environment.
#[test]
fn rename_vars_matches_swapped_env() {
    let mut rng = SplitMix64::seed_from_u64(0x4E4A);
    for _ in 0..CASES {
        let a = random_spec(&mut rng);
        let (vals, ps) = random_env_values(&mut rng);
        let e = env(&vals, &ps);
        let x = build(&a);
        // Swap v0 and v1 everywhere.
        let swapped = x.rename_vars(&[(VarId(0), VarId(1)), (VarId(1), VarId(0))]);
        let mut e2 = e.clone();
        e2.bind_var(VarId(0), vals[1]);
        e2.bind_var(VarId(1), vals[0]);
        assert_eq!(swapped.eval(&e).unwrap(), x.eval(&e2).unwrap());
    }
}

/// Normalization: structural equality equals semantic equality on a
/// probing set of environments.
#[test]
fn normalization_canonical() {
    let mut rng = SplitMix64::seed_from_u64(0xCA40);
    for _ in 0..CASES {
        let (a, b) = (random_spec(&mut rng), random_spec(&mut rng));
        let (x, y) = (build(&a), build(&b));
        if x == y {
            for probe in [[1, 2, 3, 4], [7, -3, 0, 11], [100, 100, -100, 5]] {
                let e = env(&probe, &[13, -7]);
                assert_eq!(x.eval(&e).unwrap(), y.eval(&e).unwrap());
            }
        }
    }
}

/// Negation is an involution and `a - a = 0`.
#[test]
fn neg_involution() {
    let mut rng = SplitMix64::seed_from_u64(0x1407);
    for _ in 0..CASES {
        let a = random_spec(&mut rng);
        let x = build(&a);
        assert_eq!(-(-x.clone()), x.clone());
        assert!((x.clone() - x).is_constant());
    }
}
