//! The top-level program container.

use crate::affine::Env;
use crate::array::ArrayInfo;
use crate::ids::{ArrayId, LoopId, ParamId, StmtId, VarId};
use crate::node::{Loop, Node};
use crate::stmt::Stmt;

/// Metadata for a symbolic parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamInfo {
    /// Source-level name, e.g. `"N"`.
    pub name: String,
}

/// Metadata for a loop index variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarInfo {
    /// Source-level name, e.g. `"I"`.
    pub name: String,
}

/// A complete procedure: declarations plus an ordered forest of loop nests
/// and straight-line statements.
///
/// `Program` corresponds to one Fortran subroutine after front-end
/// normalization (induction-variable substitution, constant propagation),
/// which is exactly what the paper's Memoria compiler hands to the
/// locality phase.
///
/// Construct programs with [`crate::build::ProgramBuilder`]; transformations
/// in the `cmt-locality` crate rewrite the body in place.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    name: String,
    params: Vec<ParamInfo>,
    vars: Vec<VarInfo>,
    arrays: Vec<ArrayInfo>,
    body: Vec<Node>,
    next_stmt: u32,
    next_loop: u32,
}

impl Program {
    /// Creates an empty program; prefer [`crate::build::ProgramBuilder`].
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            params: Vec::new(),
            vars: Vec::new(),
            arrays: Vec::new(),
            body: Vec::new(),
            next_stmt: 0,
            next_loop: 0,
        }
    }

    /// The program (procedure) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared parameters, indexed by [`ParamId`].
    pub fn params(&self) -> &[ParamInfo] {
        &self.params
    }

    /// Declared index variables, indexed by [`VarId`].
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// Declared arrays, indexed by [`ArrayId`].
    pub fn arrays(&self) -> &[ArrayInfo] {
        &self.arrays
    }

    /// Looks up an array declaration.
    ///
    /// # Panics
    ///
    /// Panics if the id was not declared by this program.
    pub fn array(&self, id: ArrayId) -> &ArrayInfo {
        &self.arrays[id.index()]
    }

    /// Looks up a parameter's name.
    pub fn param_name(&self, id: ParamId) -> &str {
        &self.params[id.index()].name
    }

    /// Looks up an index variable's name.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.vars[id.index()].name
    }

    /// The top-level body.
    pub fn body(&self) -> &[Node] {
        &self.body
    }

    /// Mutable top-level body, for transformations.
    pub fn body_mut(&mut self) -> &mut Vec<Node> {
        &mut self.body
    }

    /// The top-level loop nests (loops only, skipping any stray top-level
    /// statements), in source order.
    pub fn nests(&self) -> Vec<&Loop> {
        self.body.iter().filter_map(Node::as_loop).collect()
    }

    /// All statements in the program, source order.
    pub fn statements(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        for n in &self.body {
            out.extend(n.statements());
        }
        out
    }

    /// Allocates a fresh statement id (builder and transformations).
    pub fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    /// Allocates a fresh loop id (builder, distribution).
    pub fn fresh_loop_id(&mut self) -> LoopId {
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        id
    }

    /// Declares a parameter, returning its id.
    pub fn declare_param(&mut self, name: impl Into<String>) -> ParamId {
        self.params.push(ParamInfo { name: name.into() });
        ParamId(self.params.len() as u32 - 1)
    }

    /// Declares an index variable, returning its id.
    pub fn declare_var(&mut self, name: impl Into<String>) -> VarId {
        self.vars.push(VarInfo { name: name.into() });
        VarId(self.vars.len() as u32 - 1)
    }

    /// Declares an array, returning its id.
    pub fn declare_array(&mut self, info: ArrayInfo) -> ArrayId {
        self.arrays.push(info);
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Finds a declared index variable by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Finds a declared parameter by name.
    pub fn find_param(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| ParamId(i as u32))
    }

    /// Finds a declared array by name.
    pub fn find_array(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name() == name)
            .map(|i| ArrayId(i as u32))
    }

    /// An environment with the given values bound to this program's
    /// parameters in declaration order. Convenience for tests and the
    /// interpreter.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of declared
    /// parameters.
    pub fn param_env(&self, values: &[i64]) -> Env {
        assert_eq!(
            values.len(),
            self.params.len(),
            "program {} declares {} parameter(s), got {} value(s)",
            self.name,
            self.params.len(),
            values.len()
        );
        let mut env = Env::new();
        for (i, &v) in values.iter().enumerate() {
            env.bind_param(ParamId(i as u32), v);
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::array::Extent;
    use crate::expr::Expr;
    use crate::stmt::ArrayRef;

    #[test]
    fn declarations_round_trip() {
        let mut p = Program::new("t");
        let n = p.declare_param("N");
        let i = p.declare_var("I");
        let a = p.declare_array(ArrayInfo::new("A", vec![Extent::param(n)]));
        assert_eq!(p.find_param("N"), Some(n));
        assert_eq!(p.find_var("I"), Some(i));
        assert_eq!(p.find_array("A"), Some(a));
        assert_eq!(p.find_array("B"), None);
        assert_eq!(p.param_name(n), "N");
        assert_eq!(p.var_name(i), "I");
        assert_eq!(p.array(a).name(), "A");
    }

    #[test]
    fn fresh_ids_are_sequential() {
        let mut p = Program::new("t");
        assert_eq!(p.fresh_stmt_id(), StmtId(0));
        assert_eq!(p.fresh_stmt_id(), StmtId(1));
        assert_eq!(p.fresh_loop_id(), LoopId(0));
        assert_eq!(p.fresh_loop_id(), LoopId(1));
    }

    #[test]
    fn nests_skips_top_level_statements() {
        let mut p = Program::new("t");
        let n = p.declare_param("N");
        let i = p.declare_var("I");
        let a = p.declare_array(ArrayInfo::new("A", vec![Extent::param(n)]));
        let sid = p.fresh_stmt_id();
        let lid = p.fresh_loop_id();
        let s = Stmt::new(
            sid,
            ArrayRef::new(a, vec![Affine::constant(1)]),
            Expr::Const(0.0),
        );
        p.body_mut().push(Node::Stmt(s.clone()));
        p.body_mut().push(Node::Loop(Loop::new(
            lid,
            i,
            Affine::constant(1),
            Affine::param(n),
            1,
            vec![Node::Stmt(Stmt::new(
                StmtId(99),
                ArrayRef::new(a, vec![Affine::var(i)]),
                Expr::Const(1.0),
            ))],
        )));
        assert_eq!(p.nests().len(), 1);
        assert_eq!(p.statements().len(), 2);
    }

    #[test]
    #[should_panic(expected = "parameter")]
    fn param_env_arity_checked() {
        let mut p = Program::new("t");
        p.declare_param("N");
        let _ = p.param_env(&[]);
    }
}
