//! Fortran-like pretty-printing of programs.
//!
//! The printer resolves ids back to declared names so transformed programs
//! can be eyeballed against the paper's figures:
//!
//! ```text
//! DO K = 1, N
//!   A(K,K) = SQRT(A(K,K))
//!   DO I = K+1, N
//!     A(I,K) = A(I,K) / A(K,K)
//! ```

use crate::affine::Affine;
use crate::expr::{BinOp, Expr};
use crate::node::{Loop, Node};
use crate::program::Program;
use crate::stmt::{ArrayRef, Stmt};
use std::fmt::Write as _;

/// Renders a program as indented Fortran-like text.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PROGRAM {}", p.name());
    for n in p.body() {
        print_node(p, n, 1, &mut out);
    }
    out
}

/// Renders a program as complete, re-parseable source: `PROGRAM` header,
/// `PARAM` and `REAL` declarations, then the body. The output satisfies
/// `parse_program(program_to_source(p)) ≈ p` (fresh ids, same structure).
pub fn program_to_source(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PROGRAM {}", p.name());
    if !p.params().is_empty() {
        let names: Vec<&str> = p.params().iter().map(|q| q.name.as_str()).collect();
        let _ = writeln!(out, "PARAM {}", names.join(", "));
    }
    if !p.arrays().is_empty() {
        let decls: Vec<String> = p
            .arrays()
            .iter()
            .map(|a| {
                let dims: Vec<String> = a
                    .dims()
                    .iter()
                    .map(|d| affine_str(p, d.as_affine()))
                    .collect();
                format!("{}({})", a.name(), dims.join(","))
            })
            .collect();
        let _ = writeln!(out, "REAL {}", decls.join(", "));
    }
    for n in p.body() {
        print_node_src(p, n, 0, &mut out);
    }
    out
}

/// Body printer for [`program_to_source`]: every `DO` gets an explicit
/// `ENDDO` so imperfect nests re-parse unambiguously.
fn print_node_src(p: &Program, n: &Node, level: usize, out: &mut String) {
    match n {
        Node::Stmt(s) => print_stmt(p, s, level, out),
        Node::Loop(l) => {
            indent(out, level);
            let var = p.var_name(l.var());
            if l.step() == 1 {
                let _ = writeln!(
                    out,
                    "DO {var} = {}, {}",
                    affine_str(p, l.lower()),
                    affine_str(p, l.upper())
                );
            } else {
                let _ = writeln!(
                    out,
                    "DO {var} = {}, {}, {}",
                    affine_str(p, l.lower()),
                    affine_str(p, l.upper()),
                    l.step()
                );
            }
            for inner in l.body() {
                print_node_src(p, inner, level + 1, out);
            }
            indent(out, level);
            out.push_str("ENDDO\n");
        }
    }
}

/// Renders one loop nest.
pub fn nest_to_string(p: &Program, l: &Loop) -> String {
    let mut out = String::new();
    print_loop(p, l, 0, &mut out);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_node(p: &Program, n: &Node, level: usize, out: &mut String) {
    match n {
        Node::Loop(l) => print_loop(p, l, level, out),
        Node::Stmt(s) => print_stmt(p, s, level, out),
    }
}

fn print_loop(p: &Program, l: &Loop, level: usize, out: &mut String) {
    indent(out, level);
    let var = p.var_name(l.var());
    if l.step() == 1 {
        let _ = writeln!(
            out,
            "DO {var} = {}, {}",
            affine_str(p, l.lower()),
            affine_str(p, l.upper())
        );
    } else {
        let _ = writeln!(
            out,
            "DO {var} = {}, {}, {}",
            affine_str(p, l.lower()),
            affine_str(p, l.upper()),
            l.step()
        );
    }
    for n in l.body() {
        print_node(p, n, level + 1, out);
    }
}

fn print_stmt(p: &Program, s: &Stmt, level: usize, out: &mut String) {
    indent(out, level);
    let _ = writeln!(out, "{} = {}", ref_str(p, s.lhs()), expr_str(p, s.rhs()));
}

/// Renders an affine expression with declared names.
pub fn affine_str(p: &Program, e: &Affine) -> String {
    let mut parts: Vec<(i64, String)> = Vec::new();
    for (v, c) in e.var_terms() {
        parts.push((c, p.var_name(v).to_string()));
    }
    for (q, c) in e.param_terms() {
        parts.push((c, p.param_name(q).to_string()));
    }
    let mut s = String::new();
    for (k, (c, name)) in parts.iter().enumerate() {
        if k == 0 {
            match *c {
                1 => {
                    let _ = write!(s, "{name}");
                }
                -1 => {
                    let _ = write!(s, "-{name}");
                }
                c => {
                    let _ = write!(s, "{c}*{name}");
                }
            }
        } else if *c < 0 {
            if *c == -1 {
                let _ = write!(s, "-{name}");
            } else {
                let _ = write!(s, "{}*{name}", *c);
            }
        } else if *c == 1 {
            let _ = write!(s, "+{name}");
        } else {
            let _ = write!(s, "+{c}*{name}");
        }
    }
    let c = e.constant_term();
    if s.is_empty() {
        let _ = write!(s, "{c}");
    } else if c > 0 {
        let _ = write!(s, "+{c}");
    } else if c < 0 {
        let _ = write!(s, "{c}");
    }
    s
}

/// Renders an array reference with declared names.
pub fn ref_str(p: &Program, r: &ArrayRef) -> String {
    let mut s = String::new();
    let _ = write!(s, "{}(", p.array(r.array()).name());
    for (k, sub) in r.subscripts().iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        s.push_str(&affine_str(p, sub));
    }
    s.push(')');
    s
}

/// Renders an expression with declared names.
pub fn expr_str(p: &Program, e: &Expr) -> String {
    fn prec(op: BinOp) -> u8 {
        match op {
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Mul | BinOp::Div => 2,
            BinOp::Min | BinOp::Max => 3,
        }
    }
    fn go(p: &Program, e: &Expr, parent_prec: u8, out: &mut String) {
        match e {
            Expr::Const(c) => {
                let _ = write!(out, "{c}");
            }
            Expr::Index(v) => out.push_str(p.var_name(*v)),
            Expr::Param(q) => out.push_str(p.param_name(*q)),
            Expr::Load(r) => out.push_str(&ref_str(p, r)),
            Expr::Unary(op, inner) => {
                let _ = write!(out, "{op}(");
                go(p, inner, 0, out);
                out.push(')');
            }
            Expr::Binary(op @ (BinOp::Min | BinOp::Max), a, b) => {
                let _ = write!(out, "{op}(");
                go(p, a, 0, out);
                out.push_str(", ");
                go(p, b, 0, out);
                out.push(')');
            }
            Expr::Binary(op, a, b) => {
                let this = prec(*op);
                let need_parens = this < parent_prec;
                if need_parens {
                    out.push('(');
                }
                go(p, a, this, out);
                let _ = write!(out, " {op} ");
                // Right operand of - and / needs parens at equal precedence.
                go(
                    p,
                    b,
                    this + u8::from(matches!(op, BinOp::Sub | BinOp::Div)),
                    out,
                );
                if need_parens {
                    out.push(')');
                }
            }
        }
    }
    let mut s = String::new();
    go(p, e, 0, &mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;

    fn matmul() -> Program {
        let mut b = ProgramBuilder::new("mm");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let bb = b.matrix("B", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                b.loop_("K", 1, n, |b| {
                    let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
                    let lhs = b.at(c, [i, j]);
                    let rhs = Expr::load(b.at(c, [i, j]))
                        + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                    b.assign(lhs, rhs);
                });
            });
        });
        b.finish()
    }

    #[test]
    fn matmul_prints_like_fortran() {
        let p = matmul();
        let s = program_to_string(&p);
        assert!(s.contains("DO I = 1, N"), "{s}");
        assert!(s.contains("C(I,J) = C(I,J) + A(I,K) * B(K,J)"), "{s}");
    }

    #[test]
    fn precedence_parenthesization() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i]);
            // A(I) = (A(I) + 1) * 2
            let rhs = (Expr::load(b.at(a, [i])) + Expr::Const(1.0)) * Expr::Const(2.0);
            b.assign(lhs, rhs);
        });
        let p = b.finish();
        let s = program_to_string(&p);
        assert!(s.contains("(A(I) + 1) * 2"), "{s}");
    }

    #[test]
    fn source_round_trips_through_parser() {
        let p = matmul();
        let src = crate::pretty::program_to_source(&p);
        let q = crate::parse::parse_program(&src).unwrap();
        assert_eq!(crate::pretty::program_to_source(&q), src);
        assert_eq!(program_to_string(&q), program_to_string(&p));
    }

    #[test]
    fn source_includes_declarations_and_enddo() {
        let p = matmul();
        let src = crate::pretty::program_to_source(&p);
        assert!(src.contains("PARAM N"), "{src}");
        assert!(src.contains("REAL A(N,N), B(N,N), C(N,N)"), "{src}");
        assert_eq!(src.matches("ENDDO").count(), 3, "{src}");
    }

    #[test]
    fn affine_rendering_uses_names() {
        let p = matmul();
        let i = p.find_var("I").unwrap();
        let e = Affine::var(i) * 2 - 1;
        assert_eq!(affine_str(&p, &e), "2*I-1");
        assert_eq!(affine_str(&p, &Affine::zero()), "0");
    }
}
