//! Array declarations.
//!
//! Arrays are Fortran-style: column-major, with one [`Extent`] per
//! dimension. Extents may reference symbolic parameters but never loop
//! index variables (array shapes are loop-invariant).

use crate::affine::{Affine, Env, EvalError};
use crate::ids::ParamId;
use std::fmt;

/// The extent (number of elements) of one array dimension.
///
/// An extent is an affine expression in symbolic parameters only, e.g. `N`,
/// `N+1`, or the constant `5` (the `applu`-style tiny leading dimension).
///
/// # Example
///
/// ```
/// use cmt_ir::array::Extent;
/// use cmt_ir::ids::ParamId;
///
/// let n = ParamId(0);
/// let e = Extent::param(n);
/// assert!(e.as_affine().is_var_free());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Extent(Affine);

impl Extent {
    /// An extent of a fixed number of elements.
    ///
    /// # Panics
    ///
    /// Panics if `n < 1`; zero-extent dimensions are not representable in
    /// the Fortran programs the paper studies.
    pub fn constant(n: i64) -> Self {
        assert!(n >= 1, "array extents must be at least 1, got {n}");
        Extent(Affine::constant(n))
    }

    /// An extent equal to a symbolic parameter.
    pub fn param(p: ParamId) -> Self {
        Extent(Affine::param(p))
    }

    /// An extent given by an arbitrary variable-free affine expression.
    ///
    /// # Panics
    ///
    /// Panics if `e` mentions a loop index variable.
    pub fn from_affine(e: Affine) -> Self {
        assert!(
            e.is_var_free(),
            "array extents may not reference loop index variables: {e}"
        );
        Extent(e)
    }

    /// A view of the underlying affine expression.
    pub fn as_affine(&self) -> &Affine {
        &self.0
    }

    /// Evaluates the extent under parameter bindings.
    ///
    /// # Errors
    ///
    /// Returns an error if a referenced parameter is unbound.
    pub fn eval(&self, env: &Env) -> Result<i64, EvalError> {
        self.0.eval(env)
    }
}

impl From<ParamId> for Extent {
    fn from(p: ParamId) -> Extent {
        Extent::param(p)
    }
}

impl From<Affine> for Extent {
    fn from(e: Affine) -> Extent {
        Extent::from_affine(e)
    }
}

impl From<i64> for Extent {
    fn from(n: i64) -> Extent {
        Extent::constant(n)
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Declaration of one array: a name and a shape.
///
/// Subscripts in array references are 1-based (Fortran convention); element
/// `(1, 1, …)` is the first element of the column-major layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayInfo {
    name: String,
    dims: Vec<Extent>,
}

impl ArrayInfo {
    /// Creates an array declaration.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty — scalars are modeled as statements'
    /// temporaries, not zero-dimensional arrays.
    pub fn new(name: impl Into<String>, dims: Vec<Extent>) -> Self {
        let name = name.into();
        assert!(
            !dims.is_empty(),
            "array {name} must have at least 1 dimension"
        );
        ArrayInfo { name, dims }
    }

    /// The source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-dimension extents, leftmost (fastest-varying, column-major)
    /// first.
    pub fn dims(&self) -> &[Extent] {
        &self.dims
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements under the given parameter bindings.
    ///
    /// # Errors
    ///
    /// Returns an error if an extent references an unbound parameter.
    pub fn len(&self, env: &Env) -> Result<i64, EvalError> {
        let mut total = 1i64;
        for d in &self.dims {
            total *= d.eval(env)?;
        }
        Ok(total)
    }

    /// True when the array has zero total elements; always false for valid
    /// parameter bindings (extents are ≥ 1), provided for completeness.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for ArrayInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (k, d) in self.dims.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_constructors() {
        let e = Extent::constant(5);
        assert_eq!(e.as_affine().constant_term(), 5);
        let p = Extent::param(ParamId(0));
        assert_eq!(p.as_affine().coeff_of_param(ParamId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_extent_rejected() {
        let _ = Extent::constant(0);
    }

    #[test]
    fn array_len_is_product_of_extents() {
        let n = ParamId(0);
        let a = ArrayInfo::new("A", vec![Extent::param(n), Extent::constant(3)]);
        let mut env = Env::new();
        env.bind_param(n, 10);
        assert_eq!(a.len(&env).unwrap(), 30);
        assert_eq!(a.rank(), 2);
        assert_eq!(a.name(), "A");
    }

    #[test]
    fn array_display_is_fortran_like() {
        let a = ArrayInfo::new(
            "X",
            vec![Extent::param(ParamId(0)), Extent::param(ParamId(0))],
        );
        assert_eq!(a.to_string(), "X(p0,p0)");
    }

    #[test]
    #[should_panic(expected = "at least 1 dimension")]
    fn zero_rank_rejected() {
        let _ = ArrayInfo::new("A", vec![]);
    }
}
