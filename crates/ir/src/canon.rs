//! Canonical structural hashing of programs: the memo-cache key for
//! the optimization service.
//!
//! [`nest_key`] reduces a program to a [`NestKey`] that is invariant
//! under everything that cannot change what the optimizer does:
//!
//! * **alpha-renaming** — loop variables are numbered by binding depth,
//!   arrays by first use in the body, parameters by declaration index;
//!   source-level names (including the program name) never enter the
//!   hash;
//! * **declaration reordering** — arrays hash in first-use order, so
//!   permuting the `REAL` declarations of a program leaves the key
//!   unchanged (arrays the body never touches are appended in a
//!   name-free canonical order);
//! * **re-serialization** — the key is computed from the IR structure,
//!   so `parse(pretty(p))` produces the same key even though every
//!   internal id was reassigned.
//!
//! Bounds are normalized by rendering each [`Affine`] with its variable
//! terms sorted by binding depth and parameter terms by parameter
//! index, so syntactically shuffled but equal bounds agree.
//!
//! The key is 128 bits (two independent FNV-1a streams over the
//! canonical form), which makes accidental collisions across any
//! realistic corpus vanishingly unlikely; the 256-seed fuzz corpus is
//! pinned collision-free in the service crate's tests.

use crate::affine::Affine;
use crate::expr::Expr;
use crate::ids::{ArrayId, VarId};
use crate::node::{Loop, Node};
use crate::program::Program;
use crate::stmt::ArrayRef;
use std::fmt;

/// A 128-bit structural hash of a program (see module docs for the
/// invariances). Ordered and hashable so it can key any map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NestKey(pub [u64; 2]);

impl NestKey {
    /// Lower-case 32-character hex rendering, the wire format.
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl fmt::Display for NestKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

const FNV_PRIME: u64 = 0x100_0000_01b3;
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
// Second stream: FNV-1a from an independent, odd offset basis.
const FNV_BASIS2: u64 = FNV_BASIS ^ 0x9e37_79b9_7f4a_7c15;

fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Renders the name-free canonical form [`nest_key`] hashes. Exposed
/// for debugging and for collision tests: two programs share a key by
/// construction iff their canonical sources are byte-identical.
pub fn canonical_source(p: &Program) -> String {
    Canon::new(p).render()
}

/// Computes the canonical structural key of `p`.
pub fn nest_key(p: &Program) -> NestKey {
    let src = canonical_source(p);
    NestKey([
        fnv1a(FNV_BASIS, src.as_bytes()),
        fnv1a(FNV_BASIS2, src.as_bytes()),
    ])
}

struct Canon<'p> {
    p: &'p Program,
    /// ArrayId index → canonical index, assigned at first use.
    array_slot: Vec<Option<usize>>,
    /// Canonical array signatures, in first-use order.
    array_sigs: Vec<String>,
    /// Innermost-last stack of bound loop variables.
    scope: Vec<VarId>,
    body: String,
}

impl<'p> Canon<'p> {
    fn new(p: &'p Program) -> Self {
        Canon {
            p,
            array_slot: vec![None; p.arrays().len()],
            array_sigs: Vec::new(),
            scope: Vec::new(),
            body: String::new(),
        }
    }

    fn render(mut self) -> String {
        for node in self.p.body() {
            self.node(node);
        }
        // Arrays the body never references cannot influence the
        // optimizer; fold them in by shape only, order-free.
        let mut unused: Vec<String> = (0..self.p.arrays().len())
            .filter(|&k| self.array_slot[k].is_none())
            .map(|k| self.array_sig(ArrayId(k as u32)))
            .collect();
        unused.sort();
        let mut out = format!("params:{}\n", self.p.params().len());
        for (i, sig) in self.array_sigs.iter().enumerate() {
            out.push_str(&format!("array a{i}:{sig}\n"));
        }
        for sig in unused {
            out.push_str(&format!("array _:{sig}\n"));
        }
        out.push_str(&self.body);
        out
    }

    fn array_sig(&self, id: ArrayId) -> String {
        let info = &self.p.arrays()[id.0 as usize];
        let dims: Vec<String> = info
            .dims()
            .iter()
            .map(|d| self.affine(d.as_affine()))
            .collect();
        format!("[{}]", dims.join(","))
    }

    fn node(&mut self, n: &Node) {
        match n {
            Node::Loop(l) => self.loop_(l),
            Node::Stmt(s) => {
                let lhs = self.array_ref(s.lhs());
                let rhs = self.expr(s.rhs());
                self.body.push_str(&format!("{lhs}={rhs};\n"));
            }
        }
    }

    fn loop_(&mut self, l: &Loop) {
        let lo = self.affine(l.lower());
        let hi = self.affine(l.upper());
        let depth = self.scope.len();
        self.body
            .push_str(&format!("do v{depth}=({lo})..({hi})step{}{{\n", l.step()));
        self.scope.push(l.var());
        for child in l.body() {
            self.node(child);
        }
        self.scope.pop();
        self.body.push_str("}\n");
    }

    fn array_ref(&mut self, r: &ArrayRef) -> String {
        let k = r.array().0 as usize;
        let slot = match self.array_slot.get(k).copied().flatten() {
            Some(s) => s,
            None => {
                let s = self.array_sigs.len();
                if k < self.array_slot.len() {
                    self.array_slot[k] = Some(s);
                }
                let sig = self.array_sig(r.array());
                self.array_sigs.push(sig);
                s
            }
        };
        let subs: Vec<String> = r.subscripts().iter().map(|a| self.affine(a)).collect();
        format!("a{slot}({})", subs.join(","))
    }

    /// Renders an affine form with variable terms sorted by binding
    /// depth and parameter terms by parameter index — the bound
    /// normalization.
    fn affine(&self, a: &Affine) -> String {
        let mut vars: Vec<(i64, i64)> = a
            .var_terms()
            .map(|(v, c)| {
                // Innermost binding wins, matching variable shadowing.
                let depth = self
                    .scope
                    .iter()
                    .rposition(|&b| b == v)
                    .map(|d| d as i64)
                    // A free variable cannot be alpha-renamed; keep its
                    // raw id, offset past any real depth.
                    .unwrap_or(v.0 as i64 + 1_000_000);
                (depth, c)
            })
            .filter(|&(_, c)| c != 0)
            .collect();
        vars.sort_unstable();
        let mut params: Vec<(u32, i64)> = a
            .param_terms()
            .filter(|&(_, c)| c != 0)
            .map(|(p, c)| (p.0, c))
            .collect();
        params.sort_unstable();
        let mut s = format!("{}", a.constant_term());
        for (d, c) in vars {
            s.push_str(&format!("{c:+}v{d}"));
        }
        for (p, c) in params {
            s.push_str(&format!("{c:+}p{p}"));
        }
        s
    }

    fn expr(&mut self, e: &Expr) -> String {
        match e {
            // Bit-exact constants: formatting must not lose precision.
            Expr::Const(c) => format!("c{:016x}", c.to_bits()),
            Expr::Index(v) => {
                let depth = self
                    .scope
                    .iter()
                    .rposition(|&b| b == *v)
                    .map(|d| d as i64)
                    .unwrap_or(v.0 as i64 + 1_000_000);
                format!("v{depth}")
            }
            Expr::Param(p) => format!("p{}", p.0),
            Expr::Load(r) => self.array_ref(r),
            Expr::Unary(op, inner) => format!("{op:?}({})", self.expr(inner)),
            Expr::Binary(op, a, b) => {
                format!("{op:?}({},{})", self.expr(a), self.expr(b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::parse::parse_program;
    use crate::pretty::program_to_source;

    /// `C(i,j) = A(i,j) + A(i,j+1)` under configurable names and array
    /// declaration order.
    fn copy_like(program_name: &str, names: [&str; 2], a_first: bool) -> Program {
        let mut b = ProgramBuilder::new(program_name);
        let n = b.param("N");
        let (a, c) = if a_first {
            (b.matrix("A", n), b.matrix("C", n))
        } else {
            let c = b.matrix("C", n);
            (b.matrix("A", n), c)
        };
        b.loop_(names[0], 1, n, |b| {
            b.loop_(names[1], 1, n, |b| {
                let (i, j) = (b.var(names[0]), b.var(names[1]));
                let lhs = b.at(c, [i, j]);
                let rhs = Expr::Binary(
                    crate::expr::BinOp::Add,
                    Box::new(Expr::load(b.at(a, [i, j]))),
                    Box::new(Expr::load(b.at(a, [Affine::var(i), Affine::var(j) + 1]))),
                );
                b.assign(lhs, rhs);
            });
        });
        b.finish()
    }

    #[test]
    fn alpha_renaming_loop_vars_preserves_key() {
        let p = copy_like("copy", ["I", "J"], true);
        let q = copy_like("copy", ["II", "KK"], true);
        assert_eq!(nest_key(&p), nest_key(&q));
        assert_eq!(canonical_source(&p), canonical_source(&q));
    }

    #[test]
    fn reordering_array_declarations_preserves_key() {
        let p = copy_like("copy", ["I", "J"], true);
        let q = copy_like("copy", ["I", "J"], false);
        assert_eq!(nest_key(&p), nest_key(&q));
    }

    #[test]
    fn reserialization_preserves_key() {
        let p = copy_like("copy", ["I", "J"], true);
        let src = program_to_source(&p);
        let q = parse_program(&src).expect("round-trip parse");
        assert_eq!(nest_key(&p), nest_key(&q));
    }

    #[test]
    fn distinct_subscript_structure_changes_key() {
        let ij = copy_like("t", ["I", "J"], true);
        // Same shape but transposed A accesses: different dependence
        // structure, must not collide.
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                let (i, j) = (b.var("I"), b.var("J"));
                let lhs = b.at(c, [i, j]);
                let rhs = Expr::Binary(
                    crate::expr::BinOp::Add,
                    Box::new(Expr::load(b.at(a, [j, i]))),
                    Box::new(Expr::load(b.at(a, [Affine::var(j), Affine::var(i) + 1]))),
                );
                b.assign(lhs, rhs);
            });
        });
        let ji = b.finish();
        assert_ne!(nest_key(&ij), nest_key(&ji));
    }

    #[test]
    fn program_name_never_enters_the_key() {
        let p = copy_like("one-name", ["I", "J"], true);
        let q = copy_like("another-name", ["I", "J"], true);
        assert_eq!(nest_key(&p), nest_key(&q));
    }

    #[test]
    fn hex_rendering_is_stable_and_32_chars() {
        let p = copy_like("copy", ["I", "J"], true);
        let k = nest_key(&p);
        assert_eq!(k.to_hex().len(), 32);
        assert_eq!(k.to_hex(), format!("{k}"));
    }
}
