//! Structural validation of programs.
//!
//! Validation enforces the IR invariants every pass relies on:
//!
//! * loop index variables, parameters, and arrays are declared;
//! * no index variable is bound twice on one nesting path;
//! * loop bounds reference only *outer* index variables (plus parameters);
//! * subscripts reference only enclosing index variables;
//! * array reference ranks match declarations;
//! * statement and loop ids are unique program-wide.
//!
//! Transformations call [`validate`] in debug assertions after rewriting.

use crate::affine::Affine;
use crate::ids::{LoopId, StmtId, VarId};
use crate::node::{Loop, Node};
use crate::program::Program;
use crate::stmt::Stmt;
use std::collections::HashSet;
use std::fmt;

/// A violated IR invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// An id referenced an undeclared variable.
    UndeclaredVar(VarId),
    /// An id referenced an undeclared parameter.
    UndeclaredParam(u32),
    /// An id referenced an undeclared array.
    UndeclaredArray(u32),
    /// A loop bound or subscript used an index variable not bound by an
    /// enclosing loop.
    OutOfScopeVar {
        /// The offending variable.
        var: VarId,
        /// Human-readable location.
        site: String,
    },
    /// The same variable was bound by two loops on one nesting path.
    RedundantBinding(VarId),
    /// An array reference's rank differed from the declaration.
    RankMismatch {
        /// Array name.
        array: String,
        /// Declared rank.
        declared: usize,
        /// Rank at the reference.
        used: usize,
    },
    /// Two statements shared an id.
    DuplicateStmtId(StmtId),
    /// Two loops shared an id.
    DuplicateLoopId(LoopId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UndeclaredVar(v) => write!(f, "undeclared index variable {v}"),
            ValidateError::UndeclaredParam(p) => write!(f, "undeclared parameter p{p}"),
            ValidateError::UndeclaredArray(a) => write!(f, "undeclared array a{a}"),
            ValidateError::OutOfScopeVar { var, site } => {
                write!(f, "variable {var} used out of scope at {site}")
            }
            ValidateError::RedundantBinding(v) => {
                write!(f, "variable {v} bound twice on one nesting path")
            }
            ValidateError::RankMismatch {
                array,
                declared,
                used,
            } => write!(
                f,
                "array {array} declared rank {declared} but referenced with {used} subscript(s)"
            ),
            ValidateError::DuplicateStmtId(s) => write!(f, "duplicate statement id {s}"),
            ValidateError::DuplicateLoopId(l) => write!(f, "duplicate loop id {l}"),
        }
    }
}

impl std::error::Error for ValidateError {}

struct Checker<'p> {
    program: &'p Program,
    scope: Vec<VarId>,
    stmt_ids: HashSet<StmtId>,
    loop_ids: HashSet<LoopId>,
}

impl<'p> Checker<'p> {
    fn check_affine(&self, e: &Affine, site: &str, allow: &[VarId]) -> Result<(), ValidateError> {
        for (v, _) in e.var_terms() {
            if v.index() >= self.program.vars().len() {
                return Err(ValidateError::UndeclaredVar(v));
            }
            if !allow.contains(&v) {
                return Err(ValidateError::OutOfScopeVar {
                    var: v,
                    site: site.to_string(),
                });
            }
        }
        for (p, _) in e.param_terms() {
            if p.index() >= self.program.params().len() {
                return Err(ValidateError::UndeclaredParam(p.0));
            }
        }
        Ok(())
    }

    fn check_expr_scope(&self, e: &crate::expr::Expr) -> Result<(), ValidateError> {
        match e {
            crate::expr::Expr::Index(v) => {
                if v.index() >= self.program.vars().len() {
                    return Err(ValidateError::UndeclaredVar(*v));
                }
                if !self.scope.contains(v) {
                    return Err(ValidateError::OutOfScopeVar {
                        var: *v,
                        site: "index expression".to_string(),
                    });
                }
                Ok(())
            }
            crate::expr::Expr::Param(p) => {
                if p.index() >= self.program.params().len() {
                    return Err(ValidateError::UndeclaredParam(p.0));
                }
                Ok(())
            }
            crate::expr::Expr::Const(_) | crate::expr::Expr::Load(_) => Ok(()),
            crate::expr::Expr::Unary(_, inner) => self.check_expr_scope(inner),
            crate::expr::Expr::Binary(_, a, b) => {
                self.check_expr_scope(a)?;
                self.check_expr_scope(b)
            }
        }
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), ValidateError> {
        if !self.stmt_ids.insert(s.id()) {
            return Err(ValidateError::DuplicateStmtId(s.id()));
        }
        self.check_expr_scope(s.rhs())?;
        for r in s.refs() {
            let aidx = r.array().index();
            if aidx >= self.program.arrays().len() {
                return Err(ValidateError::UndeclaredArray(r.array().0));
            }
            let decl = self.program.array(r.array());
            if decl.rank() != r.rank() {
                return Err(ValidateError::RankMismatch {
                    array: decl.name().to_string(),
                    declared: decl.rank(),
                    used: r.rank(),
                });
            }
            for (d, sub) in r.subscripts().iter().enumerate() {
                let site = format!("{}(subscript {})", decl.name(), d + 1);
                self.check_affine(sub, &site, &self.scope)?;
            }
        }
        Ok(())
    }

    fn check_loop(&mut self, l: &Loop) -> Result<(), ValidateError> {
        if !self.loop_ids.insert(l.id()) {
            return Err(ValidateError::DuplicateLoopId(l.id()));
        }
        if l.var().index() >= self.program.vars().len() {
            return Err(ValidateError::UndeclaredVar(l.var()));
        }
        if self.scope.contains(&l.var()) {
            return Err(ValidateError::RedundantBinding(l.var()));
        }
        let site = format!("bounds of loop {}", l.id());
        // Bounds may reference only *outer* variables.
        self.check_affine(l.lower(), &site, &self.scope)?;
        self.check_affine(l.upper(), &site, &self.scope)?;
        self.scope.push(l.var());
        for n in l.body() {
            self.check_node(n)?;
        }
        self.scope.pop();
        Ok(())
    }

    fn check_node(&mut self, n: &Node) -> Result<(), ValidateError> {
        match n {
            Node::Stmt(s) => self.check_stmt(s),
            Node::Loop(l) => self.check_loop(l),
        }
    }
}

/// Validates a program against the IR invariants listed in the
/// [module docs](self).
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let mut checker = Checker {
        program,
        scope: Vec::new(),
        stmt_ids: HashSet::new(),
        loop_ids: HashSet::new(),
    };
    for n in program.body() {
        checker.check_node(n)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::array::{ArrayInfo, Extent};
    use crate::expr::Expr;
    use crate::stmt::ArrayRef;

    fn base() -> Program {
        let mut p = Program::new("t");
        p.declare_param("N");
        p.declare_var("I");
        p.declare_array(ArrayInfo::new("A", vec![Extent::constant(10)]));
        p
    }

    #[test]
    fn valid_program_passes() {
        let mut p = base();
        let i = p.find_var("I").unwrap();
        let a = p.find_array("A").unwrap();
        let sid = p.fresh_stmt_id();
        let lid = p.fresh_loop_id();
        p.body_mut().push(Node::Loop(Loop::new(
            lid,
            i,
            Affine::constant(1),
            Affine::constant(10),
            1,
            vec![Node::Stmt(Stmt::new(
                sid,
                ArrayRef::new(a, vec![Affine::var(i)]),
                Expr::Const(0.0),
            ))],
        )));
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn out_of_scope_subscript_rejected() {
        let mut p = base();
        let a = p.find_array("A").unwrap();
        let sid = p.fresh_stmt_id();
        // Statement at top level references loop variable I.
        let i = p.find_var("I").unwrap();
        p.body_mut().push(Node::Stmt(Stmt::new(
            sid,
            ArrayRef::new(a, vec![Affine::var(i)]),
            Expr::Const(0.0),
        )));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::OutOfScopeVar { .. })
        ));
    }

    #[test]
    fn out_of_scope_index_expression_rejected() {
        // A(1) = I with I not bound by any loop: Expr::Index scoping.
        let mut p = base();
        let i = p.find_var("I").unwrap();
        let a = p.find_array("A").unwrap();
        let sid = p.fresh_stmt_id();
        p.body_mut().push(Node::Stmt(Stmt::new(
            sid,
            ArrayRef::new(a, vec![Affine::constant(1)]),
            Expr::Index(i),
        )));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::OutOfScopeVar { .. })
        ));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let mut p = base();
        let a = p.find_array("A").unwrap();
        let sid = p.fresh_stmt_id();
        p.body_mut().push(Node::Stmt(Stmt::new(
            sid,
            ArrayRef::new(a, vec![Affine::constant(1), Affine::constant(1)]),
            Expr::Const(0.0),
        )));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::RankMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_stmt_ids_rejected() {
        let mut p = base();
        let a = p.find_array("A").unwrap();
        let mk = |id| {
            Node::Stmt(Stmt::new(
                StmtId(id),
                ArrayRef::new(a, vec![Affine::constant(1)]),
                Expr::Const(0.0),
            ))
        };
        p.body_mut().push(mk(0));
        p.body_mut().push(mk(0));
        assert_eq!(validate(&p), Err(ValidateError::DuplicateStmtId(StmtId(0))));
    }

    #[test]
    fn redundant_binding_rejected() {
        let mut p = base();
        let i = p.find_var("I").unwrap();
        let inner_id = p.fresh_loop_id();
        let outer_id = p.fresh_loop_id();
        let inner = Loop::new(
            inner_id,
            i,
            Affine::constant(1),
            Affine::constant(2),
            1,
            vec![],
        );
        p.body_mut().push(Node::Loop(Loop::new(
            outer_id,
            i,
            Affine::constant(1),
            Affine::constant(2),
            1,
            vec![Node::Loop(inner)],
        )));
        assert_eq!(validate(&p), Err(ValidateError::RedundantBinding(i)));
    }

    #[test]
    fn bound_referencing_inner_var_rejected() {
        let mut p = base();
        let i = p.find_var("I").unwrap();
        let j = p.declare_var("J");
        let l0 = p.fresh_loop_id();
        let l1 = p.fresh_loop_id();
        // DO I = 1, J  — J not bound anywhere outside.
        let inner = Loop::new(l1, j, Affine::constant(1), Affine::constant(5), 1, vec![]);
        p.body_mut().push(Node::Loop(Loop::new(
            l0,
            i,
            Affine::constant(1),
            Affine::var(j),
            1,
            vec![Node::Loop(inner)],
        )));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::OutOfScopeVar { .. })
        ));
    }
}
