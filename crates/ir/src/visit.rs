//! Traversal helpers shared by analyses and transformations.

use crate::node::{Loop, Node};
use crate::stmt::Stmt;

/// Calls `f` for every statement under `nodes`, passing the stack of
/// enclosing loops outermost-first. This is the shape every analysis in the
/// paper consumes: a statement plus its loop context.
pub fn for_each_stmt<'a>(nodes: &'a [Node], f: &mut impl FnMut(&[&'a Loop], &'a Stmt)) {
    fn go<'a>(
        nodes: &'a [Node],
        stack: &mut Vec<&'a Loop>,
        f: &mut impl FnMut(&[&'a Loop], &'a Stmt),
    ) {
        for n in nodes {
            match n {
                Node::Stmt(s) => f(stack, s),
                Node::Loop(l) => {
                    stack.push(l);
                    go(l.body(), stack, f);
                    stack.pop();
                }
            }
        }
    }
    let mut stack = Vec::new();
    go(nodes, &mut stack, f);
}

/// Collects `(enclosing loops, statement)` pairs in source order.
pub fn stmts_with_context(nodes: &[Node]) -> Vec<(Vec<&Loop>, &Stmt)> {
    let mut out = Vec::new();
    for_each_stmt(nodes, &mut |loops, s| out.push((loops.to_vec(), s)));
    out
}

/// The maximal *perfect* chain of loops starting at `l`: `l`, then its only
/// loop child, and so on while each body is exactly one loop. The last
/// element's body holds the statements (and possibly further imperfect
/// structure).
pub fn perfect_chain(l: &Loop) -> Vec<&Loop> {
    let mut chain = vec![l];
    let mut cur = l;
    while let Some(child) = cur.only_loop_child() {
        chain.push(child);
        cur = child;
    }
    chain
}

/// True when the nest rooted at `l` is perfect all the way down to
/// statements: every level has exactly one loop child, and the innermost
/// level contains statements only.
pub fn is_perfect(l: &Loop) -> bool {
    let chain = perfect_chain(l);
    let innermost = chain.last().expect("chain contains at least the root");
    innermost.body().iter().all(|n| matches!(n, Node::Stmt(_)))
}

/// All loops in the subtree rooted at `l`, preorder.
pub fn all_loops(l: &Loop) -> Vec<&Loop> {
    let mut out = Vec::new();
    fn go<'a>(l: &'a Loop, out: &mut Vec<&'a Loop>) {
        out.push(l);
        for n in l.body() {
            if let Node::Loop(inner) = n {
                go(inner, out);
            }
        }
    }
    go(l, &mut out);
    out
}

/// The immediate loop children of a body (direct `Node::Loop` entries).
pub fn loop_children(nodes: &[Node]) -> Vec<&Loop> {
    nodes.iter().filter_map(Node::as_loop).collect()
}

/// Mutable visitor over every loop in a body, preorder. `f` may rewrite
/// headers and bodies; the walk recurses into the possibly-rewritten body.
pub fn for_each_loop_mut(nodes: &mut [Node], f: &mut impl FnMut(&mut Loop)) {
    for n in nodes {
        if let Node::Loop(l) = n {
            f(l);
            for_each_loop_mut(l.body_mut(), f);
        }
    }
}

/// The induction-variable names down the perfect chain of `l`, joined
/// with `.` — e.g. `"I.J.K"`. This is the per-nest half of the stable
/// labels optimization remarks use.
pub fn chain_label(program: &crate::program::Program, l: &Loop) -> String {
    perfect_chain(l)
        .iter()
        .map(|lp| program.var_name(lp.var()))
        .collect::<Vec<_>>()
        .join(".")
}

/// Stable label for the top-level nest at body index `idx`:
/// `"{program}/nest{idx}:I.J.K"`. Remark streams key on these labels,
/// so they must stay deterministic across runs of the same program.
/// Non-loop body entries get a `stmt` suffix instead of a chain.
pub fn nest_label(program: &crate::program::Program, idx: usize) -> String {
    match program.body().get(idx) {
        Some(Node::Loop(l)) => {
            format!("{}/nest{}:{}", program.name(), idx, chain_label(program, l))
        }
        _ => format!("{}/nest{}:stmt", program.name(), idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::expr::Expr;
    use crate::ids::{ArrayId, LoopId, StmtId, VarId};
    use crate::stmt::ArrayRef;

    fn stmt(n: u32) -> Stmt {
        Stmt::new(
            StmtId(n),
            ArrayRef::new(ArrayId(0), vec![Affine::constant(1)]),
            Expr::Const(0.0),
        )
    }

    fn lp(id: u32, var: u32, body: Vec<Node>) -> Loop {
        Loop::new(
            LoopId(id),
            VarId(var),
            Affine::constant(1),
            Affine::constant(4),
            1,
            body,
        )
    }

    #[test]
    fn for_each_stmt_reports_context() {
        let inner = lp(1, 1, vec![stmt(0).into()]);
        let outer = lp(0, 0, vec![inner.into(), stmt(1).into()]);
        let nodes = vec![Node::Loop(outer)];
        let mut seen = Vec::new();
        for_each_stmt(&nodes, &mut |loops, s| {
            seen.push((s.id().0, loops.iter().map(|l| l.id().0).collect::<Vec<_>>()));
        });
        assert_eq!(seen, vec![(0, vec![0, 1]), (1, vec![0])]);
    }

    #[test]
    fn perfect_chain_stops_at_imperfection() {
        let innermost = lp(2, 2, vec![stmt(0).into()]);
        let mid = lp(1, 1, vec![innermost.into()]);
        let outer = lp(0, 0, vec![mid.into()]);
        assert_eq!(perfect_chain(&outer).len(), 3);
        assert!(is_perfect(&outer));

        let imperfect = lp(
            3,
            0,
            vec![stmt(1).into(), lp(4, 1, vec![stmt(2).into()]).into()],
        );
        assert_eq!(perfect_chain(&imperfect).len(), 1);
        assert!(!is_perfect(&imperfect));
    }

    #[test]
    fn all_loops_preorder() {
        let a = lp(1, 1, vec![stmt(0).into()]);
        let b = lp(2, 2, vec![stmt(1).into()]);
        let outer = lp(0, 0, vec![a.into(), b.into()]);
        let ids: Vec<u32> = all_loops(&outer).iter().map(|l| l.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn is_perfect_requires_stmt_only_innermost() {
        // DO i { DO j { } }  — innermost has empty body, trivially all-stmt.
        let outer = lp(0, 0, vec![lp(1, 1, vec![]).into()]);
        assert!(is_perfect(&outer));
    }

    #[test]
    fn nest_labels_are_stable() {
        use crate::affine::Affine;
        use crate::build::ProgramBuilder;

        let mut b = ProgramBuilder::new("mm");
        let n = b.param("N");
        b.loop_("I", 1, Affine::param(n), |b| {
            b.loop_("J", 1, Affine::param(n), |_| {});
        });
        let p = b.finish();
        assert_eq!(nest_label(&p, 0), "mm/nest0:I.J");
        assert_eq!(nest_label(&p, 7), "mm/nest7:stmt");
        let l = p.body()[0].as_loop().unwrap();
        assert_eq!(chain_label(&p, l), "I.J");
    }
}
