//! Loop-nest intermediate representation for the Carr–McKinley–Tseng
//! data-locality reproduction.
//!
//! This crate models the program representation a Fortran 77 front end would
//! hand to the locality optimizer of *Compiler Optimizations for Improving
//! Data Locality* (ASPLOS 1994): imperfectly nested `DO` loops with affine
//! bounds (rectangular, triangular, and symbolic), statements that assign
//! array elements, and array references with affine subscripts. Arrays are
//! column-major, matching Fortran.
//!
//! # Example
//!
//! Build the matrix-multiply nest from Figure 2 of the paper:
//!
//! ```
//! use cmt_ir::build::ProgramBuilder;
//! use cmt_ir::expr::Expr;
//!
//! let mut b = ProgramBuilder::new("matmul");
//! let n = b.param("N");
//! let a = b.array("A", vec![n.into(), n.into()]);
//! let bb = b.array("B", vec![n.into(), n.into()]);
//! let c = b.array("C", vec![n.into(), n.into()]);
//! b.loop_("I", 1, n, |b| {
//!     b.loop_("J", 1, n, |b| {
//!         b.loop_("K", 1, n, |b| {
//!             let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
//!             let cij = b.at(c, [i, j]);
//!             let rhs = Expr::load(b.at(c, [i, j]))
//!                 + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
//!             b.assign(cij, rhs);
//!         });
//!     });
//! });
//! let program = b.finish();
//! assert_eq!(program.nests().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod affine;
pub mod array;
pub mod build;
pub mod canon;
pub mod expr;
pub mod ids;
pub mod node;
pub mod parse;
pub mod pretty;
pub mod program;
pub mod stmt;
pub mod validate;
pub mod visit;

pub use affine::Affine;
pub use array::{ArrayInfo, Extent};
pub use build::ProgramBuilder;
pub use canon::{canonical_source, nest_key, NestKey};
pub use expr::{BinOp, Expr, UnOp};
pub use ids::{ArrayId, LoopId, ParamId, StmtId, VarId};
pub use node::{Loop, Node};
pub use program::Program;
pub use stmt::{ArrayRef, Stmt};
pub use validate::ValidateError;
