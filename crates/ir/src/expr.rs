//! Right-hand-side expression language for statements.
//!
//! Statements assign the value of an [`Expr`] to an array element. The
//! expression language is deliberately small — arithmetic over array loads,
//! index variables, parameters, and constants — but rich enough to express
//! every kernel in the paper (matrix multiply, Cholesky with `SQRT`, ADI
//! integration, stencils, reductions).

use crate::ids::{ParamId, VarId};
use crate::stmt::ArrayRef;
use std::fmt;

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
}

impl BinOp {
    /// Applies the operator to two values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "MIN",
            BinOp::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Square root (`SQRT` in the paper's Cholesky kernel).
    Sqrt,
    /// Absolute value.
    Abs,
}

impl UnOp {
    /// Applies the operator to a value.
    pub fn apply(self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Sqrt => a.sqrt(),
            UnOp::Abs => a.abs(),
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Sqrt => "SQRT",
            UnOp::Abs => "ABS",
        };
        f.write_str(s)
    }
}

/// A right-hand-side expression.
///
/// # Example
///
/// ```
/// use cmt_ir::expr::Expr;
///
/// let e = Expr::Const(1.0) + Expr::Const(2.0) * Expr::Const(3.0);
/// assert_eq!(e.loads().count(), 0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A floating-point literal.
    Const(f64),
    /// The current value of a loop index variable, as a float.
    Index(VarId),
    /// The value of a symbolic parameter, as a float.
    Param(ParamId),
    /// A load from an array element.
    Load(ArrayRef),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a load.
    pub fn load(r: ArrayRef) -> Expr {
        Expr::Load(r)
    }

    /// Square root of an expression.
    pub fn sqrt(e: Expr) -> Expr {
        Expr::Unary(UnOp::Sqrt, Box::new(e))
    }

    /// Iterates over every [`ArrayRef`] read by this expression, in
    /// left-to-right source order.
    pub fn loads(&self) -> Loads<'_> {
        Loads { stack: vec![self] }
    }

    /// Rewrites every array reference with `f` (used by transformations
    /// that rename index variables, e.g. reversal).
    pub fn map_refs(&self, f: &mut impl FnMut(&ArrayRef) -> ArrayRef) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Index(v) => Expr::Index(*v),
            Expr::Param(p) => Expr::Param(*p),
            Expr::Load(r) => Expr::Load(f(r)),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.map_refs(f))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Box::new(a.map_refs(f)), Box::new(b.map_refs(f)))
            }
        }
    }

    /// Rewrites every [`Expr::Index`] leaf with `f` — the expression-side
    /// counterpart of subscript substitution, required whenever a
    /// transformation renames or re-expresses a loop variable.
    pub fn map_index(&self, f: &mut impl FnMut(VarId) -> Expr) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Index(v) => f(*v),
            Expr::Param(p) => Expr::Param(*p),
            Expr::Load(r) => Expr::Load(r.clone()),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.map_index(f))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Box::new(a.map_index(f)), Box::new(b.map_index(f)))
            }
        }
    }

    /// Builds the expression computing an affine form's value at run
    /// time: `2i − j + N + 3` becomes the corresponding `Expr` tree.
    pub fn from_affine(a: &crate::affine::Affine) -> Expr {
        fn push(acc: &mut Option<Expr>, term: Expr) {
            *acc = Some(match acc.take() {
                None => term,
                Some(prev) => prev + term,
            });
        }
        let mut acc: Option<Expr> = None;
        for (v, c) in a.var_terms() {
            let base = Expr::Index(v);
            push(
                &mut acc,
                if c == 1 {
                    base
                } else {
                    Expr::Const(c as f64) * base
                },
            );
        }
        for (p, c) in a.param_terms() {
            let base = Expr::Param(p);
            push(
                &mut acc,
                if c == 1 {
                    base
                } else {
                    Expr::Const(c as f64) * base
                },
            );
        }
        let k = a.constant_term();
        if k != 0 || acc.is_none() {
            push(&mut acc, Expr::Const(k as f64));
        }
        acc.expect("at least the constant was pushed")
    }

    /// The number of operator nodes; used by property-test size bounds.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Index(_) | Expr::Param(_) | Expr::Load(_) => 1,
            Expr::Unary(_, e) => 1 + e.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
        }
    }
}

/// Iterator over array loads in an expression; see [`Expr::loads`].
#[derive(Debug)]
pub struct Loads<'a> {
    stack: Vec<&'a Expr>,
}

impl<'a> Iterator for Loads<'a> {
    type Item = &'a ArrayRef;

    fn next(&mut self) -> Option<&'a ArrayRef> {
        while let Some(e) = self.stack.pop() {
            match e {
                Expr::Load(r) => return Some(r),
                Expr::Unary(_, inner) => self.stack.push(inner),
                Expr::Binary(_, a, b) => {
                    // Push right first so left pops first (source order).
                    self.stack.push(b);
                    self.stack.push(a);
                }
                _ => {}
            }
        }
        None
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::ids::ArrayId;

    fn r(a: u32, sub: i64) -> ArrayRef {
        ArrayRef::new(ArrayId(a), vec![Affine::constant(sub)])
    }

    #[test]
    fn binop_apply() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(6.0, 3.0), 2.0);
        assert_eq!(BinOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(BinOp::Max.apply(2.0, 3.0), 3.0);
    }

    #[test]
    fn unop_apply() {
        assert_eq!(UnOp::Neg.apply(2.0), -2.0);
        assert_eq!(UnOp::Sqrt.apply(9.0), 3.0);
        assert_eq!(UnOp::Abs.apply(-4.0), 4.0);
    }

    #[test]
    fn loads_in_source_order() {
        let e = Expr::load(r(0, 1)) + Expr::load(r(1, 2)) * Expr::load(r(2, 3));
        let arrays: Vec<u32> = e.loads().map(|l| l.array().0).collect();
        assert_eq!(arrays, vec![0, 1, 2]);
    }

    #[test]
    fn loads_skips_non_load_leaves() {
        let e = Expr::Index(VarId(0)) + Expr::Param(ParamId(0)) - Expr::Const(1.0);
        assert_eq!(e.loads().count(), 0);
    }

    #[test]
    fn map_refs_rewrites_all_loads() {
        let e = Expr::load(r(0, 1)) + Expr::sqrt(Expr::load(r(0, 2)));
        let out = e.map_refs(&mut |rf| ArrayRef::new(ArrayId(9), rf.subscripts().to_vec()));
        assert!(out.loads().all(|l| l.array() == ArrayId(9)));
        assert_eq!(out.loads().count(), 2);
    }

    #[test]
    fn map_index_rewrites_leaves() {
        let e = Expr::Index(VarId(0)) + Expr::load(r(0, 1)) * Expr::Index(VarId(1));
        let out = e.map_index(&mut |v| {
            if v == VarId(0) {
                Expr::Const(7.0)
            } else {
                Expr::Index(v)
            }
        });
        // The load is untouched, Index(0) replaced, Index(1) kept.
        assert_eq!(out.loads().count(), 1);
        match &out {
            Expr::Binary(BinOp::Add, a, _) => assert_eq!(**a, Expr::Const(7.0)),
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn from_affine_builds_equivalent_expression() {
        use crate::affine::{Affine, Env};
        // 2i − j + 3
        let a = Affine::var(VarId(0)) * 2 - Affine::var(VarId(1)) + 3;
        let e = Expr::from_affine(&a);
        // Evaluate both ways.
        let mut env = Env::new();
        env.bind_var(VarId(0), 5);
        env.bind_var(VarId(1), 2);
        let expect = a.eval(&env).unwrap() as f64;
        fn eval(e: &Expr, env: &Env) -> f64 {
            match e {
                Expr::Const(c) => *c,
                Expr::Index(v) => env.var(*v).unwrap() as f64,
                Expr::Param(p) => env.param(*p).unwrap() as f64,
                Expr::Load(_) => unreachable!("no loads in affine exprs"),
                Expr::Unary(op, x) => op.apply(eval(x, env)),
                Expr::Binary(op, x, y) => op.apply(eval(x, env), eval(y, env)),
            }
        }
        assert_eq!(eval(&e, &env), expect);
        // Zero builds the constant 0.
        assert_eq!(Expr::from_affine(&Affine::zero()), Expr::Const(0.0));
    }

    #[test]
    fn size_counts_nodes() {
        let e = -(Expr::Const(1.0) + Expr::Const(2.0));
        assert_eq!(e.size(), 4);
    }
}
