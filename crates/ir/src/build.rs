//! Ergonomic construction of programs.
//!
//! [`ProgramBuilder`] builds the loop-nest tree with nested closures, so the
//! Rust source visually mirrors the Fortran it models:
//!
//! ```
//! use cmt_ir::build::ProgramBuilder;
//! use cmt_ir::expr::Expr;
//!
//! // DO I = 1, N
//! //   A(I) = A(I) + 1.0
//! let mut b = ProgramBuilder::new("inc");
//! let n = b.param("N");
//! let a = b.array("A", vec![n.into()]);
//! b.loop_("I", 1, n, |b| {
//!     let i = b.var("I");
//!     let ai = b.at(a, [i]);
//!     let rhs = Expr::load(b.at(a, [i])) + Expr::Const(1.0);
//!     b.assign(ai, rhs);
//! });
//! let p = b.finish();
//! assert_eq!(p.nests().len(), 1);
//! ```

use crate::affine::Affine;
use crate::array::{ArrayInfo, Extent};
use crate::expr::Expr;
use crate::ids::{ArrayId, LoopId, ParamId, VarId};
use crate::node::{Loop, Node};
use crate::program::Program;
use crate::stmt::{ArrayRef, Stmt};
use crate::validate::{validate, ValidateError};

/// Incremental builder for [`Program`]; see the [module docs](self).
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    /// Stack of open loop bodies; index 0 is the program's top level.
    bodies: Vec<Vec<Node>>,
    /// Headers of currently-open loops, parallel to `bodies[1..]`.
    open: Vec<(LoopId, VarId, Affine, Affine, i64)>,
}

impl ProgramBuilder {
    /// Starts building a program with the given procedure name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program::new(name),
            bodies: vec![Vec::new()],
            open: Vec::new(),
        }
    }

    /// Declares a symbolic parameter.
    pub fn param(&mut self, name: &str) -> ParamId {
        assert!(
            self.program.find_param(name).is_none(),
            "parameter {name} declared twice"
        );
        self.program.declare_param(name)
    }

    /// Declares an array with the given per-dimension extents.
    pub fn array(&mut self, name: &str, dims: Vec<Extent>) -> ArrayId {
        assert!(
            self.program.find_array(name).is_none(),
            "array {name} declared twice"
        );
        self.program.declare_array(ArrayInfo::new(name, dims))
    }

    /// Declares a square 2-D array `name(n, n)`.
    pub fn matrix(&mut self, name: &str, n: ParamId) -> ArrayId {
        self.array(name, vec![Extent::param(n), Extent::param(n)])
    }

    /// Returns the index variable with the given name, declaring it on
    /// first use. Loop headers and subscripts share variables by name.
    pub fn var(&mut self, name: &str) -> VarId {
        match self.program.find_var(name) {
            Some(v) => v,
            None => self.program.declare_var(name),
        }
    }

    /// Opens a `DO name = lower, upper` loop (step 1), runs `body` to fill
    /// it, and appends it to the current nesting level. Returns the loop's
    /// id.
    pub fn loop_<L, U>(
        &mut self,
        name: &str,
        lower: L,
        upper: U,
        body: impl FnOnce(&mut Self),
    ) -> LoopId
    where
        L: Into<Affine>,
        U: Into<Affine>,
    {
        self.loop_step(name, lower, upper, 1, body)
    }

    /// Opens a loop with an explicit step.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0` or if the variable is already bound by an
    /// enclosing open loop.
    pub fn loop_step<L, U>(
        &mut self,
        name: &str,
        lower: L,
        upper: U,
        step: i64,
        body: impl FnOnce(&mut Self),
    ) -> LoopId
    where
        L: Into<Affine>,
        U: Into<Affine>,
    {
        assert!(step != 0, "loop step must be nonzero");
        let var = self.var(name);
        assert!(
            !self.open.iter().any(|(_, v, ..)| *v == var),
            "index variable {name} already bound by an enclosing loop"
        );
        let id = self.program.fresh_loop_id();
        self.open.push((id, var, lower.into(), upper.into(), step));
        self.bodies.push(Vec::new());
        body(self);
        let nodes = self.bodies.pop().expect("builder body stack underflow");
        let (id, var, lo, hi, st) = self.open.pop().expect("builder open stack underflow");
        let l = Loop::new(id, var, lo, hi, st, nodes);
        self.bodies
            .last_mut()
            .expect("builder body stack underflow")
            .push(Node::Loop(l));
        id
    }

    /// Builds an array reference `array(subs…)`.
    pub fn at<S, const N: usize>(&self, array: ArrayId, subs: [S; N]) -> ArrayRef
    where
        S: Into<Affine>,
    {
        ArrayRef::new(array, subs.into_iter().map(Into::into).collect())
    }

    /// Builds an array reference from a `Vec` of subscripts (for callers
    /// whose rank is not a compile-time constant).
    pub fn at_vec(&self, array: ArrayId, subs: Vec<Affine>) -> ArrayRef {
        ArrayRef::new(array, subs)
    }

    /// Appends an assignment statement at the current nesting level and
    /// returns its id.
    pub fn assign(&mut self, lhs: ArrayRef, rhs: Expr) -> crate::ids::StmtId {
        let id = self.program.fresh_stmt_id();
        self.bodies
            .last_mut()
            .expect("builder body stack underflow")
            .push(Node::Stmt(Stmt::new(id, lhs, rhs)));
        id
    }

    /// Finishes the build, validating the program.
    ///
    /// # Panics
    ///
    /// Panics if validation fails — builder misuse is a programming error.
    /// Use [`ProgramBuilder::try_finish`] to handle errors.
    pub fn finish(self) -> Program {
        match self.try_finish() {
            Ok(p) => p,
            Err(e) => panic!("invalid program: {e}"),
        }
    }

    /// Finishes the build, returning a validation error instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] when the constructed tree violates IR
    /// invariants (see [`crate::validate`]).
    pub fn try_finish(mut self) -> Result<Program, ValidateError> {
        assert!(
            self.open.is_empty() && self.bodies.len() == 1,
            "finish called with unclosed loops"
        );
        let body = self.bodies.pop().unwrap();
        *self.program.body_mut() = body;
        validate(&self.program)?;
        Ok(self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_loops() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", vec![n.into(), n.into()]);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                let (i, j) = (b.var("I"), b.var("J"));
                let lhs = b.at(a, [i, j]);
                b.assign(lhs, Expr::Const(0.0));
            });
        });
        let p = b.finish();
        let nest = p.nests()[0];
        assert_eq!(p.var_name(nest.var()), "I");
        let inner = nest.only_loop_child().unwrap();
        assert_eq!(p.var_name(inner.var()), "J");
        assert_eq!(Node::Loop(nest.clone()).depth(), 2);
    }

    #[test]
    fn triangular_bounds() {
        let mut b = ProgramBuilder::new("tri");
        let n = b.param("N");
        let a = b.matrix("A", n);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            b.loop_("J", Affine::var(i) + 1, n, |b| {
                let j = b.var("J");
                let lhs = b.at(a, [i, j]);
                b.assign(lhs, Expr::Const(1.0));
            });
        });
        let p = b.finish();
        let inner = p.nests()[0].only_loop_child().unwrap();
        assert_eq!(inner.lower().coeff_of_var(p.find_var("I").unwrap()), 1);
    }

    #[test]
    fn sibling_loops_may_reuse_variables() {
        let mut b = ProgramBuilder::new("sib");
        let n = b.param("N");
        let a = b.array("A", vec![n.into()]);
        for _ in 0..2 {
            b.loop_("I", 1, n, |b| {
                let i = b.var("I");
                let lhs = b.at(a, [i]);
                b.assign(lhs, Expr::Const(0.0));
            });
        }
        let p = b.finish();
        assert_eq!(p.nests().len(), 2);
        assert_eq!(p.vars().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn nested_variable_reuse_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let n = b.param("N");
        b.loop_("I", 1, n, |b| {
            b.loop_("I", 1, n, |_| {});
        });
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_param_rejected() {
        let mut b = ProgramBuilder::new("bad");
        b.param("N");
        b.param("N");
    }
}
