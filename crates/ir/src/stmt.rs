//! Statements and array references.

use crate::affine::Affine;
use crate::expr::Expr;
use crate::ids::{ArrayId, StmtId, VarId};
use std::fmt;

/// A reference to an array element: `A(f1, f2, …)` with affine subscripts.
///
/// Subscripts are listed leftmost-first; with Fortran's column-major
/// storage, the *first* subscript is the one with unit stride in memory —
/// the cost model's "consecutive" test inspects `f1` only.
///
/// # Example
///
/// ```
/// use cmt_ir::{affine::Affine, ids::{ArrayId, VarId}, stmt::ArrayRef};
///
/// // A(I, K+1)
/// let r = ArrayRef::new(
///     ArrayId(0),
///     vec![Affine::var(VarId(0)), Affine::var(VarId(2)) + 1],
/// );
/// assert_eq!(r.rank(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    array: ArrayId,
    subscripts: Vec<Affine>,
}

impl ArrayRef {
    /// Creates a reference.
    ///
    /// # Panics
    ///
    /// Panics if `subscripts` is empty.
    pub fn new(array: ArrayId, subscripts: Vec<Affine>) -> Self {
        assert!(!subscripts.is_empty(), "array references need ≥1 subscript");
        ArrayRef { array, subscripts }
    }

    /// The referenced array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// The subscript expressions, leftmost first.
    pub fn subscripts(&self) -> &[Affine] {
        &self.subscripts
    }

    /// Number of subscripts.
    pub fn rank(&self) -> usize {
        self.subscripts.len()
    }

    /// Coefficient of index variable `v` in subscript `dim` (0-based).
    pub fn coeff(&self, dim: usize, v: VarId) -> i64 {
        self.subscripts[dim].coeff_of_var(v)
    }

    /// True if no subscript mentions `v` — a candidate loop-invariant
    /// reference with respect to loop `v`.
    pub fn invariant_in(&self, v: VarId) -> bool {
        self.subscripts.iter().all(|s| !s.mentions_var(v))
    }

    /// Returns a copy with each subscript rewritten by `f`.
    pub fn map_subscripts(&self, mut f: impl FnMut(&Affine) -> Affine) -> ArrayRef {
        ArrayRef {
            array: self.array,
            subscripts: self.subscripts.iter().map(&mut f).collect(),
        }
    }
}

impl fmt::Debug for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.array)?;
        for (k, s) in self.subscripts.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

/// An assignment statement `lhs = rhs`.
///
/// The left-hand side is always an array element (Fortran scalars that
/// carry locality significance are modeled as rank-1 single-element
/// arrays).
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    id: StmtId,
    lhs: ArrayRef,
    rhs: Expr,
}

impl Stmt {
    /// Creates a statement. Ids are assigned by
    /// [`crate::build::ProgramBuilder`]; tests may construct them directly.
    pub fn new(id: StmtId, lhs: ArrayRef, rhs: Expr) -> Self {
        Stmt { id, lhs, rhs }
    }

    /// The statement's stable identifier.
    pub fn id(&self) -> StmtId {
        self.id
    }

    /// The store target.
    pub fn lhs(&self) -> &ArrayRef {
        &self.lhs
    }

    /// The right-hand-side expression.
    pub fn rhs(&self) -> &Expr {
        &self.rhs
    }

    /// All array references in the statement: the store target first, then
    /// the loads in source order. This is the reference universe the cost
    /// model's `RefGroup` partitions.
    pub fn refs(&self) -> Vec<&ArrayRef> {
        let mut v = Vec::with_capacity(1 + self.rhs.size());
        v.push(&self.lhs);
        v.extend(self.rhs.loads());
        v
    }

    /// Returns a copy with every array reference (including the store)
    /// rewritten by `f`.
    pub fn map_refs(&self, mut f: impl FnMut(&ArrayRef) -> ArrayRef) -> Stmt {
        Stmt {
            id: self.id,
            lhs: f(&self.lhs),
            rhs: self.rhs.map_refs(&mut f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i() -> VarId {
        VarId(0)
    }
    fn j() -> VarId {
        VarId(1)
    }

    fn aref() -> ArrayRef {
        ArrayRef::new(ArrayId(0), vec![Affine::var(i()), Affine::var(j())])
    }

    #[test]
    fn invariance_query() {
        let r = aref();
        assert!(!r.invariant_in(i()));
        assert!(r.invariant_in(VarId(7)));
    }

    #[test]
    fn coeff_query() {
        let r = ArrayRef::new(ArrayId(1), vec![Affine::var(i()) * 2 + 1]);
        assert_eq!(r.coeff(0, i()), 2);
        assert_eq!(r.coeff(0, j()), 0);
    }

    #[test]
    fn stmt_refs_lhs_first() {
        let s = Stmt::new(
            StmtId(0),
            aref(),
            Expr::load(ArrayRef::new(ArrayId(1), vec![Affine::var(j())]))
                + Expr::load(ArrayRef::new(ArrayId(2), vec![Affine::var(i())])),
        );
        let ids: Vec<u32> = s.refs().iter().map(|r| r.array().0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn map_refs_covers_lhs_and_rhs() {
        let s = Stmt::new(StmtId(0), aref(), Expr::load(aref()) * Expr::Const(2.0));
        let out = s.map_refs(|r| r.map_subscripts(|sub| sub.clone() + 1));
        assert_eq!(out.lhs().subscripts()[0], Affine::var(i()) + 1);
        let load = out.rhs().loads().next().unwrap();
        assert_eq!(load.subscripts()[1], Affine::var(j()) + 1);
        assert_eq!(out.id(), s.id());
    }

    #[test]
    fn display_is_fortran_like() {
        assert_eq!(aref().to_string(), "a0(i0,i1)");
    }
}
