//! Affine integer expressions over loop index variables and symbolic
//! parameters.
//!
//! Loop bounds and array subscripts in the IR are affine:
//! `c0 + Σ ci·var_i + Σ dj·param_j`. This module provides a normalized
//! representation ([`Affine`]) with ring operations, coefficient queries
//! (the cost model constantly asks "what is the coefficient of index `i` in
//! subscript `f`?"), and evaluation under a variable/parameter environment.

use crate::ids::{ParamId, VarId};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A normalized affine expression `constant + Σ coeff·var + Σ coeff·param`.
///
/// Invariants: term lists are sorted by id and contain no zero coefficients,
/// so structural equality is semantic equality.
///
/// # Example
///
/// ```
/// use cmt_ir::affine::Affine;
/// use cmt_ir::ids::VarId;
///
/// let i = VarId(0);
/// let e = Affine::var(i) * 2 + Affine::constant(1); // 2*i + 1
/// assert_eq!(e.coeff_of_var(i), 2);
/// assert_eq!(e.constant_term(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Affine {
    constant: i64,
    vars: Vec<(VarId, i64)>,
    params: Vec<(ParamId, i64)>,
}

impl Affine {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        Affine {
            constant: c,
            ..Default::default()
        }
    }

    /// The expression consisting of a single index variable.
    pub fn var(v: VarId) -> Self {
        Affine {
            constant: 0,
            vars: vec![(v, 1)],
            params: Vec::new(),
        }
    }

    /// The expression consisting of a single symbolic parameter.
    pub fn param(p: ParamId) -> Self {
        Affine {
            constant: 0,
            vars: Vec::new(),
            params: vec![(p, 1)],
        }
    }

    /// Builds an expression from raw parts; zero coefficients are dropped
    /// and terms are canonicalized.
    pub fn from_parts(
        constant: i64,
        vars: impl IntoIterator<Item = (VarId, i64)>,
        params: impl IntoIterator<Item = (ParamId, i64)>,
    ) -> Self {
        let mut a = Affine::constant(constant);
        for (v, c) in vars {
            a.add_var_term(v, c);
        }
        for (p, c) in params {
            a.add_param_term(p, c);
        }
        a
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// The coefficient of index variable `v` (zero if absent).
    pub fn coeff_of_var(&self, v: VarId) -> i64 {
        self.vars
            .iter()
            .find(|(w, _)| *w == v)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// The coefficient of parameter `p` (zero if absent).
    pub fn coeff_of_param(&self, p: ParamId) -> i64 {
        self.params
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Iterates over `(variable, coefficient)` terms with nonzero
    /// coefficients, in increasing variable order.
    pub fn var_terms(&self) -> impl Iterator<Item = (VarId, i64)> + '_ {
        self.vars.iter().copied()
    }

    /// Iterates over `(parameter, coefficient)` terms with nonzero
    /// coefficients, in increasing parameter order.
    pub fn param_terms(&self) -> impl Iterator<Item = (ParamId, i64)> + '_ {
        self.params.iter().copied()
    }

    /// True if the expression mentions no index variables (it may still
    /// mention parameters).
    pub fn is_var_free(&self) -> bool {
        self.vars.is_empty()
    }

    /// True if the expression is a plain integer constant.
    pub fn is_constant(&self) -> bool {
        self.vars.is_empty() && self.params.is_empty()
    }

    /// True if the expression mentions variable `v`.
    pub fn mentions_var(&self, v: VarId) -> bool {
        self.coeff_of_var(v) != 0
    }

    /// Adds `c` times variable `v` to the expression in place.
    pub fn add_var_term(&mut self, v: VarId, c: i64) {
        if c == 0 {
            return;
        }
        match self.vars.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(pos) => {
                self.vars[pos].1 += c;
                if self.vars[pos].1 == 0 {
                    self.vars.remove(pos);
                }
            }
            Err(pos) => self.vars.insert(pos, (v, c)),
        }
    }

    /// Adds `c` times parameter `p` to the expression in place.
    pub fn add_param_term(&mut self, p: ParamId, c: i64) {
        if c == 0 {
            return;
        }
        match self.params.binary_search_by_key(&p, |&(q, _)| q) {
            Ok(pos) => {
                self.params[pos].1 += c;
                if self.params[pos].1 == 0 {
                    self.params.remove(pos);
                }
            }
            Err(pos) => self.params.insert(pos, (p, c)),
        }
    }

    /// Substitutes an affine expression for a variable: `self[v := e]`.
    ///
    /// Used by loop reversal (replace `i` by `lb+ub-i`) and by triangular
    /// bound manipulation during interchange.
    pub fn substitute_var(&self, v: VarId, e: &Affine) -> Affine {
        let c = self.coeff_of_var(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.add_var_term(v, -c);
        out + e.clone() * c
    }

    /// Renames variables *simultaneously*: every `(from, to)` pair is
    /// applied against the original expression, so swap maps like
    /// `{i→j, j→i}` behave correctly (sequential substitution would
    /// collapse both onto one variable).
    pub fn rename_vars(&self, map: &[(VarId, VarId)]) -> Affine {
        let moved: Vec<(VarId, i64)> = map
            .iter()
            .filter_map(|&(from, to)| {
                let c = self.coeff_of_var(from);
                (c != 0 && from != to).then_some((to, c))
            })
            .collect();
        let mut out = self.clone();
        for &(from, to) in map {
            if from != to {
                let c = out.coeff_of_var(from);
                out.add_var_term(from, -c);
            }
        }
        for (to, c) in moved {
            out.add_var_term(to, c);
        }
        out
    }

    /// Evaluates the expression. Unbound variables or parameters yield an
    /// error naming the missing binding.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a variable or parameter has no binding in
    /// `env`.
    pub fn eval(&self, env: &Env) -> Result<i64, EvalError> {
        let mut acc = self.constant;
        for &(v, c) in &self.vars {
            let val = env.var(v).ok_or(EvalError::UnboundVar(v))?;
            acc += c * val;
        }
        for &(p, c) in &self.params {
            let val = env.param(p).ok_or(EvalError::UnboundParam(p))?;
            acc += c * val;
        }
        Ok(acc)
    }
}

impl Add for Affine {
    type Output = Affine;
    fn add(mut self, rhs: Affine) -> Affine {
        self.constant += rhs.constant;
        for (v, c) in rhs.vars {
            self.add_var_term(v, c);
        }
        for (p, c) in rhs.params {
            self.add_param_term(p, c);
        }
        self
    }
}

impl Sub for Affine {
    type Output = Affine;
    fn sub(self, rhs: Affine) -> Affine {
        self + (-rhs)
    }
}

impl Neg for Affine {
    type Output = Affine;
    fn neg(mut self) -> Affine {
        self.constant = -self.constant;
        for t in &mut self.vars {
            t.1 = -t.1;
        }
        for t in &mut self.params {
            t.1 = -t.1;
        }
        self
    }
}

impl Mul<i64> for Affine {
    type Output = Affine;
    fn mul(mut self, k: i64) -> Affine {
        if k == 0 {
            return Affine::zero();
        }
        self.constant *= k;
        for t in &mut self.vars {
            t.1 *= k;
        }
        for t in &mut self.params {
            t.1 *= k;
        }
        self
    }
}

impl Add<i64> for Affine {
    type Output = Affine;
    fn add(mut self, k: i64) -> Affine {
        self.constant += k;
        self
    }
}

impl Sub<i64> for Affine {
    type Output = Affine;
    fn sub(mut self, k: i64) -> Affine {
        self.constant -= k;
        self
    }
}

impl From<i64> for Affine {
    fn from(c: i64) -> Affine {
        Affine::constant(c)
    }
}

impl From<VarId> for Affine {
    fn from(v: VarId) -> Affine {
        Affine::var(v)
    }
}

impl From<ParamId> for Affine {
    fn from(p: ParamId) -> Affine {
        Affine::param(p)
    }
}

impl fmt::Debug for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut write_term =
            |f: &mut fmt::Formatter<'_>, coeff: i64, name: String| -> fmt::Result {
                if coeff == 0 {
                    return Ok(());
                }
                if first {
                    first = false;
                    if coeff == -1 {
                        write!(f, "-{name}")?;
                    } else if coeff == 1 {
                        write!(f, "{name}")?;
                    } else {
                        write!(f, "{coeff}*{name}")?;
                    }
                } else if coeff < 0 {
                    if coeff == -1 {
                        write!(f, " - {name}")?;
                    } else {
                        write!(f, " - {}*{name}", -coeff)?;
                    }
                } else if coeff == 1 {
                    write!(f, " + {name}")?;
                } else {
                    write!(f, " + {coeff}*{name}")?;
                }
                Ok(())
            };
        for &(v, c) in &self.vars {
            write_term(f, c, v.to_string())?;
        }
        for &(p, c) in &self.params {
            write_term(f, c, p.to_string())?;
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// A variable/parameter binding environment for [`Affine::eval`] and
/// expression evaluation in the interpreter.
///
/// Backed by dense vectors indexed by id — variable lookup is the
/// interpreter's hottest operation.
#[derive(Clone, Debug, Default)]
pub struct Env {
    vars: Vec<Option<i64>>,
    params: Vec<Option<i64>>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds or rebinds an index variable.
    pub fn bind_var(&mut self, v: VarId, value: i64) {
        let idx = v.index();
        if idx >= self.vars.len() {
            self.vars.resize(idx + 1, None);
        }
        self.vars[idx] = Some(value);
    }

    /// Removes an index-variable binding (used when a loop exits).
    pub fn unbind_var(&mut self, v: VarId) {
        if let Some(slot) = self.vars.get_mut(v.index()) {
            *slot = None;
        }
    }

    /// Binds a symbolic parameter.
    pub fn bind_param(&mut self, p: ParamId, value: i64) {
        let idx = p.index();
        if idx >= self.params.len() {
            self.params.resize(idx + 1, None);
        }
        self.params[idx] = Some(value);
    }

    /// Looks up an index variable.
    #[inline]
    pub fn var(&self, v: VarId) -> Option<i64> {
        self.vars.get(v.index()).copied().flatten()
    }

    /// Looks up a parameter.
    #[inline]
    pub fn param(&self, p: ParamId) -> Option<i64> {
        self.params.get(p.index()).copied().flatten()
    }
}

/// Error produced when evaluating an [`Affine`] with a missing binding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// An index variable had no binding.
    UnboundVar(VarId),
    /// A parameter had no binding.
    UnboundParam(ParamId),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound index variable {v}"),
            EvalError::UnboundParam(p) => write!(f, "unbound parameter {p}"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> VarId {
        VarId(n)
    }
    fn p(n: u32) -> ParamId {
        ParamId(n)
    }

    #[test]
    fn construction_and_coefficients() {
        let e = Affine::var(v(0)) * 3 + Affine::param(p(1)) * 2 - Affine::constant(5);
        assert_eq!(e.coeff_of_var(v(0)), 3);
        assert_eq!(e.coeff_of_var(v(1)), 0);
        assert_eq!(e.coeff_of_param(p(1)), 2);
        assert_eq!(e.constant_term(), -5);
    }

    #[test]
    fn addition_cancels_terms() {
        let e = Affine::var(v(0)) + Affine::var(v(0)) * -1;
        assert_eq!(e, Affine::zero());
        assert!(e.is_constant());
    }

    #[test]
    fn normalization_makes_equality_semantic() {
        let a = Affine::from_parts(1, [(v(0), 2), (v(1), 0)], [(p(0), 1)]);
        let b = Affine::from_parts(1, [(v(0), 1), (v(0), 1)], [(p(0), 2), (p(0), -1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn eval_with_env() {
        let e = Affine::var(v(0)) * 2 + Affine::param(p(0)) + Affine::constant(1);
        let mut env = Env::new();
        env.bind_var(v(0), 10);
        env.bind_param(p(0), 100);
        assert_eq!(e.eval(&env).unwrap(), 121);
    }

    #[test]
    fn eval_reports_missing_bindings() {
        let e = Affine::var(v(3));
        let env = Env::new();
        assert_eq!(e.eval(&env), Err(EvalError::UnboundVar(v(3))));
        let e = Affine::param(p(2));
        assert_eq!(e.eval(&env), Err(EvalError::UnboundParam(p(2))));
    }

    #[test]
    fn substitute_var_replaces_occurrences() {
        // e = 2*i + j + 1, substitute i := N - i  (reversal-style)
        let e = Affine::var(v(0)) * 2 + Affine::var(v(1)) + Affine::constant(1);
        let repl = Affine::param(p(0)) - Affine::var(v(0));
        let out = e.substitute_var(v(0), &repl);
        // 2*(N - i) + j + 1 = -2i + j + 2N + 1
        assert_eq!(out.coeff_of_var(v(0)), -2);
        assert_eq!(out.coeff_of_var(v(1)), 1);
        assert_eq!(out.coeff_of_param(p(0)), 2);
        assert_eq!(out.constant_term(), 1);
    }

    #[test]
    fn substitute_var_noop_when_absent() {
        let e = Affine::var(v(1)) + Affine::constant(4);
        let out = e.substitute_var(v(0), &Affine::constant(77));
        assert_eq!(out, e);
    }

    #[test]
    fn rename_vars_handles_swaps() {
        // e = 2i + 3j; swap i and j → 2j + 3i.
        let e = Affine::var(v(0)) * 2 + Affine::var(v(1)) * 3;
        let out = e.rename_vars(&[(v(0), v(1)), (v(1), v(0))]);
        assert_eq!(out.coeff_of_var(v(0)), 3);
        assert_eq!(out.coeff_of_var(v(1)), 2);
        // Identity entries are no-ops.
        let same = e.rename_vars(&[(v(0), v(0))]);
        assert_eq!(same, e);
        // Cycle of three.
        let f = Affine::var(v(0)) + Affine::var(v(1)) * 2 + Affine::var(v(2)) * 4;
        let out = f.rename_vars(&[(v(0), v(1)), (v(1), v(2)), (v(2), v(0))]);
        assert_eq!(out.coeff_of_var(v(1)), 1);
        assert_eq!(out.coeff_of_var(v(2)), 2);
        assert_eq!(out.coeff_of_var(v(0)), 4);
    }

    #[test]
    fn scaling_by_zero_gives_zero() {
        let e = Affine::var(v(0)) + Affine::param(p(0)) + Affine::constant(9);
        let k = 0; // via a binding so the intent (testing Mul) is explicit
        #[allow(clippy::erasing_op)]
        let scaled = e * k;
        assert_eq!(scaled, Affine::zero());
    }

    #[test]
    fn display_is_readable() {
        let e = Affine::var(v(0)) * 2 - Affine::var(v(1)) + Affine::constant(3);
        assert_eq!(e.to_string(), "2*i0 - i1 + 3");
        assert_eq!(Affine::zero().to_string(), "0");
        assert_eq!((Affine::var(v(0)) * -1).to_string(), "-i0");
    }
}
