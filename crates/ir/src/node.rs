//! Loop-nest tree nodes.
//!
//! A program body is an ordered forest of [`Node`]s; a node is either a
//! `DO` loop containing a nested body, or a statement. This directly
//! represents *imperfect* nests, which the paper's `Compound` algorithm
//! must handle (fusing or distributing to expose permutable perfect nests).

use crate::affine::Affine;
use crate::ids::{LoopId, VarId};
use crate::stmt::Stmt;

/// A `DO var = lower, upper, step` loop and its body.
///
/// `step` is a nonzero compile-time constant (the common case in the
/// paper's suite; symbolic steps defeat the stride analysis anyway and
/// would be classified "no reuse"). Bounds are affine in outer loop
/// variables and parameters, which covers rectangular, triangular, and
/// symbolically-bounded loops.
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    id: LoopId,
    var: VarId,
    lower: Affine,
    upper: Affine,
    step: i64,
    body: Vec<Node>,
}

impl Loop {
    /// Creates a loop.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn new(
        id: LoopId,
        var: VarId,
        lower: Affine,
        upper: Affine,
        step: i64,
        body: Vec<Node>,
    ) -> Self {
        assert!(step != 0, "loop step must be nonzero");
        Loop {
            id,
            var,
            lower,
            upper,
            step,
            body,
        }
    }

    /// The loop's stable identifier.
    pub fn id(&self) -> LoopId {
        self.id
    }

    /// The index variable bound by this loop.
    pub fn var(&self) -> VarId {
        self.var
    }

    /// Lower bound expression.
    pub fn lower(&self) -> &Affine {
        &self.lower
    }

    /// Upper bound expression.
    pub fn upper(&self) -> &Affine {
        &self.upper
    }

    /// Constant step.
    pub fn step(&self) -> i64 {
        self.step
    }

    /// The loop body.
    pub fn body(&self) -> &[Node] {
        &self.body
    }

    /// Mutable access to the body (transformations rewrite in place).
    pub fn body_mut(&mut self) -> &mut Vec<Node> {
        &mut self.body
    }

    /// Consumes the loop, returning its body.
    pub fn into_body(self) -> Vec<Node> {
        self.body
    }

    /// Replaces the header (id, var, bounds, step) keeping the body.
    /// Used by permutation, which moves headers rather than bodies.
    pub fn set_header(&mut self, id: LoopId, var: VarId, lower: Affine, upper: Affine, step: i64) {
        assert!(step != 0, "loop step must be nonzero");
        self.id = id;
        self.var = var;
        self.lower = lower;
        self.upper = upper;
        self.step = step;
    }

    /// True if the loop body is a single loop (the nest continues
    /// perfectly below this level).
    pub fn has_single_loop_body(&self) -> bool {
        self.body.len() == 1 && matches!(self.body[0], Node::Loop(_))
    }

    /// If the body is exactly one loop, a reference to it.
    pub fn only_loop_child(&self) -> Option<&Loop> {
        match self.body.as_slice() {
            [Node::Loop(l)] => Some(l),
            _ => None,
        }
    }

    /// The trip count `(ub - lb + step)/step` as an affine expression when
    /// the division is exact at the symbolic level, i.e. `step == 1` or
    /// `-1`; otherwise `None` and callers fall back on numeric evaluation.
    pub fn symbolic_trip(&self) -> Option<Affine> {
        match self.step {
            1 => Some(self.upper.clone() - self.lower.clone() + 1),
            -1 => Some(self.lower.clone() - self.upper.clone() + 1),
            _ => None,
        }
    }
}

/// One element of a loop body: a nested loop or a statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// A nested loop.
    Loop(Loop),
    /// An assignment statement.
    Stmt(Stmt),
}

impl Node {
    /// The node as a loop, if it is one.
    pub fn as_loop(&self) -> Option<&Loop> {
        match self {
            Node::Loop(l) => Some(l),
            Node::Stmt(_) => None,
        }
    }

    /// The node as a mutable loop, if it is one.
    pub fn as_loop_mut(&mut self) -> Option<&mut Loop> {
        match self {
            Node::Loop(l) => Some(l),
            Node::Stmt(_) => None,
        }
    }

    /// The node as a statement, if it is one.
    pub fn as_stmt(&self) -> Option<&Stmt> {
        match self {
            Node::Stmt(s) => Some(s),
            Node::Loop(_) => None,
        }
    }

    /// Maximum loop nesting depth of the subtree rooted here: a statement
    /// has depth 0; a loop has depth 1 + max over body.
    pub fn depth(&self) -> usize {
        match self {
            Node::Stmt(_) => 0,
            Node::Loop(l) => 1 + l.body().iter().map(Node::depth).max().unwrap_or(0),
        }
    }

    /// All statements in the subtree, in source order.
    pub fn statements(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        self.collect_statements(&mut out);
        out
    }

    fn collect_statements<'a>(&'a self, out: &mut Vec<&'a Stmt>) {
        match self {
            Node::Stmt(s) => out.push(s),
            Node::Loop(l) => {
                for n in l.body() {
                    n.collect_statements(out);
                }
            }
        }
    }
}

impl From<Loop> for Node {
    fn from(l: Loop) -> Node {
        Node::Loop(l)
    }
}

impl From<Stmt> for Node {
    fn from(s: Stmt) -> Node {
        Node::Stmt(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ids::{ArrayId, StmtId};
    use crate::stmt::ArrayRef;

    fn stmt(n: u32) -> Stmt {
        Stmt::new(
            StmtId(n),
            ArrayRef::new(ArrayId(0), vec![Affine::var(VarId(0))]),
            Expr::Const(0.0),
        )
    }

    fn simple_loop(id: u32, var: u32, body: Vec<Node>) -> Loop {
        Loop::new(
            LoopId(id),
            VarId(var),
            Affine::constant(1),
            Affine::constant(10),
            1,
            body,
        )
    }

    #[test]
    fn depth_of_imperfect_nest() {
        // DO i { s0; DO j { s1 } }
        let inner = simple_loop(1, 1, vec![stmt(1).into()]);
        let outer = simple_loop(0, 0, vec![stmt(0).into(), inner.into()]);
        let node: Node = outer.into();
        assert_eq!(node.depth(), 2);
        assert_eq!(node.statements().len(), 2);
    }

    #[test]
    fn statements_in_source_order() {
        let inner = simple_loop(1, 1, vec![stmt(5).into(), stmt(6).into()]);
        let outer = simple_loop(0, 0, vec![stmt(4).into(), inner.into(), stmt(7).into()]);
        let node: Node = outer.into();
        let ids: Vec<u32> = node.statements().iter().map(|s| s.id().0).collect();
        assert_eq!(ids, vec![4, 5, 6, 7]);
    }

    #[test]
    fn symbolic_trip_unit_step() {
        let l = simple_loop(0, 0, vec![]);
        assert_eq!(l.symbolic_trip().unwrap(), Affine::constant(10));
        let l2 = Loop::new(
            LoopId(1),
            VarId(0),
            Affine::constant(0),
            Affine::constant(9),
            2,
            vec![],
        );
        assert!(l2.symbolic_trip().is_none());
    }

    #[test]
    fn only_loop_child_detection() {
        let inner = simple_loop(1, 1, vec![stmt(0).into()]);
        let perfect = simple_loop(0, 0, vec![inner.clone().into()]);
        assert!(perfect.has_single_loop_body());
        assert_eq!(perfect.only_loop_child().unwrap().id(), LoopId(1));
        let imperfect = simple_loop(2, 0, vec![stmt(0).into(), inner.into()]);
        assert!(imperfect.only_loop_child().is_none());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_step_rejected() {
        let _ = Loop::new(
            LoopId(0),
            VarId(0),
            Affine::constant(1),
            Affine::constant(2),
            0,
            vec![],
        );
    }
}
