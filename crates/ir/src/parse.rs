//! A parser for the Fortran-like loop language the pretty-printer emits.
//!
//! Programs can be written as text instead of through the builder:
//!
//! ```
//! use cmt_ir::parse::parse_program;
//!
//! let p = parse_program(
//!     "PROGRAM matmul
//!      PARAM N
//!      REAL A(N,N), B(N,N), C(N,N)
//!      DO I = 1, N
//!        DO J = 1, N
//!          DO K = 1, N
//!            C(I,J) = C(I,J) + A(I,K) * B(K,J)",
//! ).unwrap();
//! assert_eq!(p.nests().len(), 1);
//! ```
//!
//! Grammar (indentation-insensitive; nesting is tracked by `DO`/`ENDDO`,
//! with `ENDDO` optional — a `DO` body extends to the next `DO`/statement
//! at the same or outer syntactic level using explicit `ENDDO` or to the
//! end of input):
//!
//! ```text
//! program   := "PROGRAM" name decl* node*
//! decl      := "PARAM" name ("," name)*
//!            | "REAL" array ("," array)*
//! array     := name "(" extent ("," extent)* ")"
//! node      := do | stmt
//! do        := "DO" name "=" affine "," affine ("," int)? node* ["ENDDO"]
//! stmt      := ref "=" expr
//! ref       := name "(" affine ("," affine)* ")"
//! expr      := term (("+"|"-") term)*
//! term      := factor (("*"|"/") factor)*
//! factor    := number | ref | name | "(" expr ")"
//!            | ("SQRT"|"ABS"|"MIN"|"MAX") "(" args ")" | "-" factor
//! affine    := integer linear combination of names and constants
//! ```
//!
//! Since `ENDDO` is optional, *without* it every following node nests
//! inside the most recent `DO` (convenient for the perfectly nested
//! kernels of the paper); mixed bodies need explicit `ENDDO`.

use crate::affine::Affine;
use crate::array::{ArrayInfo, Extent};
use crate::expr::{BinOp, Expr, UnOp};
use crate::ids::{ArrayId, VarId};
use crate::node::{Loop, Node};
use crate::program::Program;
use crate::stmt::{ArrayRef, Stmt};
use crate::validate::validate;
use std::fmt;

/// A parse or validation failure, with a 1-based line number when the
/// location is known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 when unknown).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole program. See the [module docs](self) for the grammar.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line for syntax errors,
/// unknown names, or IR validation failures.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src).parse()
}

struct Parser<'s> {
    lines: Vec<(usize, &'s str)>,
    pos: usize,
    program: Program,
}

/// A token scanner over one line.
struct Cursor<'s> {
    s: &'s str,
    at: usize,
    line: usize,
}

impl<'s> Cursor<'s> {
    fn new(s: &'s str, line: usize) -> Self {
        Cursor { s, at: 0, line }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.s[self.at..].starts_with(' ') || self.s[self.at..].starts_with('\t') {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.s[self.at..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.at += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn ident(&mut self) -> Option<&'s str> {
        self.skip_ws();
        let rest = &self.s[self.at..];
        let end = rest
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_')
            .map(|(k, c)| k + c.len_utf8())
            .last()?;
        let word = &rest[..end];
        if word.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
            self.at += end;
            Some(word)
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        let rest = &self.s[self.at..];
        let mut end = 0;
        let mut dot = false;
        for (k, c) in rest.char_indices() {
            if c.is_ascii_digit() {
                end = k + 1;
            } else if c == '.' && !dot && k == end {
                dot = true;
                end = k + 1;
            } else {
                break;
            }
        }
        if end == 0 || rest[..end].ends_with('.') && end == 1 {
            return None;
        }
        let parsed = rest[..end].parse().ok()?;
        self.at += end;
        Some(parsed)
    }

    fn integer(&mut self) -> Option<i64> {
        self.skip_ws();
        let save = self.at;
        let neg = self.eat('-');
        let rest = &self.s[self.at..];
        let end = rest.chars().take_while(|c| c.is_ascii_digit()).count();
        if end == 0 {
            self.at = save;
            return None;
        }
        let v: i64 = rest[..end].parse().ok()?;
        self.at += end;
        Some(if neg { -v } else { v })
    }

    fn done(&mut self) -> bool {
        self.skip_ws();
        self.at >= self.s.len()
    }
}

impl<'s> Parser<'s> {
    fn new(src: &'s str) -> Self {
        let lines = src
            .lines()
            .enumerate()
            .map(|(k, l)| (k + 1, l.split('!').next().unwrap_or("").trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            lines,
            pos: 0,
            program: Program::new("anonymous"),
        }
    }

    fn current(&self) -> Option<(usize, &'s str)> {
        self.lines.get(self.pos).copied()
    }

    fn parse(mut self) -> Result<Program, ParseError> {
        // Header.
        if let Some((line, text)) = self.current() {
            let mut c = Cursor::new(text, line);
            if c.ident() == Some("PROGRAM") {
                let name = c.ident().ok_or_else(|| c.err("expected program name"))?;
                self.program = Program::new(name);
                self.pos += 1;
            }
        }
        // Declarations.
        while let Some((line, text)) = self.current() {
            let mut c = Cursor::new(text, line);
            match c.ident() {
                Some("PARAM") => {
                    loop {
                        let name = c.ident().ok_or_else(|| c.err("expected parameter name"))?;
                        if self.program.find_param(name).is_some() {
                            return Err(c.err(format!("parameter {name} declared twice")));
                        }
                        self.program.declare_param(name);
                        if !c.eat(',') {
                            break;
                        }
                    }
                    if !c.done() {
                        return Err(c.err("trailing input after PARAM"));
                    }
                    self.pos += 1;
                }
                Some("REAL") => {
                    loop {
                        let name = c.ident().ok_or_else(|| c.err("expected array name"))?;
                        c.expect('(')?;
                        let mut dims = Vec::new();
                        loop {
                            let e = self.parse_affine(&mut c, /*vars_allowed=*/ false)?;
                            dims.push(Extent::from_affine(e));
                            if !c.eat(',') {
                                break;
                            }
                        }
                        c.expect(')')?;
                        if self.program.find_array(name).is_some() {
                            return Err(c.err(format!("array {name} declared twice")));
                        }
                        self.program.declare_array(ArrayInfo::new(name, dims));
                        if !c.eat(',') {
                            break;
                        }
                    }
                    if !c.done() {
                        return Err(c.err("trailing input after REAL"));
                    }
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // Body.
        let mut scope: Vec<VarId> = Vec::new();
        let body = self.parse_nodes(&mut scope)?;
        *self.program.body_mut() = body;
        validate(&self.program).map_err(|e| ParseError {
            line: 0,
            message: format!("invalid program: {e}"),
        })?;
        Ok(self.program)
    }

    /// Parses nodes until `ENDDO` or end of input.
    fn parse_nodes(&mut self, scope: &mut Vec<VarId>) -> Result<Vec<Node>, ParseError> {
        let mut out = Vec::new();
        while let Some((line, text)) = self.current() {
            let mut c = Cursor::new(text, line);
            let save = c.at;
            match c.ident() {
                Some("ENDDO") => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some("DO") => {
                    self.pos += 1;
                    out.push(Node::Loop(self.parse_do(&mut c, scope)?));
                }
                Some(_) => {
                    c.at = save;
                    self.pos += 1;
                    out.push(Node::Stmt(self.parse_stmt(&mut c, scope)?));
                }
                None => return Err(c.err("expected DO, ENDDO, or a statement")),
            }
        }
        Ok(out)
    }

    fn parse_do(&mut self, c: &mut Cursor<'_>, scope: &mut Vec<VarId>) -> Result<Loop, ParseError> {
        let name = c.ident().ok_or_else(|| c.err("expected loop variable"))?;
        let var = match self.program.find_var(name) {
            Some(v) => v,
            None => self.program.declare_var(name),
        };
        if scope.contains(&var) {
            return Err(c.err(format!("loop variable {name} already bound")));
        }
        c.expect('=')?;
        let lo = self.parse_affine(c, true)?;
        c.expect(',')?;
        let hi = self.parse_affine(c, true)?;
        let step = if c.eat(',') {
            c.integer().ok_or_else(|| c.err("expected step"))?
        } else {
            1
        };
        if step == 0 {
            return Err(c.err("loop step must be nonzero"));
        }
        if !c.done() {
            return Err(c.err("trailing input after DO header"));
        }
        scope.push(var);
        let body = self.parse_nodes(scope)?;
        scope.pop();
        let id = self.program.fresh_loop_id();
        Ok(Loop::new(id, var, lo, hi, step, body))
    }

    fn parse_stmt(&mut self, c: &mut Cursor<'_>, scope: &[VarId]) -> Result<Stmt, ParseError> {
        let lhs = self.parse_ref(c, scope)?;
        c.expect('=')?;
        let rhs = self.parse_expr(c, scope)?;
        if !c.done() {
            return Err(c.err("trailing input after statement"));
        }
        let id = self.program.fresh_stmt_id();
        Ok(Stmt::new(id, lhs, rhs))
    }

    fn parse_ref(&mut self, c: &mut Cursor<'_>, scope: &[VarId]) -> Result<ArrayRef, ParseError> {
        let name = c.ident().ok_or_else(|| c.err("expected array name"))?;
        let array = self.lookup_array(c, name)?;
        c.expect('(')?;
        let mut subs = Vec::new();
        loop {
            subs.push(self.parse_affine(c, true)?);
            if !c.eat(',') {
                break;
            }
        }
        c.expect(')')?;
        let _ = scope;
        Ok(ArrayRef::new(array, subs))
    }

    fn lookup_array(&self, c: &Cursor<'_>, name: &str) -> Result<ArrayId, ParseError> {
        self.program
            .find_array(name)
            .ok_or_else(|| c.err(format!("unknown array {name}")))
    }

    /// Affine expressions: `±? term (± term)*` where
    /// `term := int ["*" name] | name` and `name` is a loop variable or
    /// parameter.
    fn parse_affine(
        &mut self,
        c: &mut Cursor<'_>,
        vars_allowed: bool,
    ) -> Result<Affine, ParseError> {
        let mut acc = Affine::zero();
        let mut sign = 1i64;
        if c.eat('-') {
            sign = -1;
        } else {
            let _ = c.eat('+');
        }
        loop {
            if let Some(k) = c.integer() {
                if c.eat('*') {
                    let name = c.ident().ok_or_else(|| c.err("expected name after '*'"))?;
                    acc = acc + self.name_term(c, name, vars_allowed)? * (sign * k);
                } else {
                    acc = acc + sign * k;
                }
            } else if let Some(name) = c.ident() {
                acc = acc + self.name_term(c, name, vars_allowed)? * sign;
            } else {
                return Err(c.err("expected affine term"));
            }
            if c.eat('+') {
                sign = 1;
            } else if c.eat('-') {
                sign = -1;
            } else {
                return Ok(acc);
            }
        }
    }

    fn name_term(
        &mut self,
        c: &Cursor<'_>,
        name: &str,
        vars_allowed: bool,
    ) -> Result<Affine, ParseError> {
        if let Some(p) = self.program.find_param(name) {
            return Ok(Affine::param(p));
        }
        if vars_allowed {
            if let Some(v) = self.program.find_var(name) {
                return Ok(Affine::var(v));
            }
        }
        Err(c.err(format!("unknown name {name}")))
    }

    fn parse_expr(&mut self, c: &mut Cursor<'_>, scope: &[VarId]) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term(c, scope)?;
        loop {
            if c.eat('+') {
                let rhs = self.parse_term(c, scope)?;
                lhs = lhs + rhs;
            } else if c.eat('-') {
                let rhs = self.parse_term(c, scope)?;
                lhs = lhs - rhs;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_term(&mut self, c: &mut Cursor<'_>, scope: &[VarId]) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_factor(c, scope)?;
        loop {
            if c.eat('*') {
                let rhs = self.parse_factor(c, scope)?;
                lhs = lhs * rhs;
            } else if c.eat('/') {
                let rhs = self.parse_factor(c, scope)?;
                lhs = lhs / rhs;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_factor(&mut self, c: &mut Cursor<'_>, scope: &[VarId]) -> Result<Expr, ParseError> {
        if c.eat('(') {
            let e = self.parse_expr(c, scope)?;
            c.expect(')')?;
            return Ok(e);
        }
        if c.eat('-') {
            let e = self.parse_factor(c, scope)?;
            return Ok(-e);
        }
        if let Some(n) = c.number() {
            return Ok(Expr::Const(n));
        }
        let save = c.at;
        let name = c.ident().ok_or_else(|| c.err("expected expression"))?;
        match name {
            "SQRT" | "ABS" => {
                c.expect('(')?;
                let inner = self.parse_expr(c, scope)?;
                c.expect(')')?;
                let op = if name == "SQRT" {
                    UnOp::Sqrt
                } else {
                    UnOp::Abs
                };
                return Ok(Expr::Unary(op, Box::new(inner)));
            }
            "MIN" | "MAX" => {
                c.expect('(')?;
                let a = self.parse_expr(c, scope)?;
                c.expect(',')?;
                let b = self.parse_expr(c, scope)?;
                c.expect(')')?;
                let op = if name == "MIN" {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                return Ok(Expr::Binary(op, Box::new(a), Box::new(b)));
            }
            _ => {}
        }
        // Array reference, loop variable, or parameter.
        if self.program.find_array(name).is_some() {
            c.at = save;
            let r = self.parse_ref(c, scope)?;
            return Ok(Expr::load(r));
        }
        if let Some(v) = self.program.find_var(name) {
            return Ok(Expr::Index(v));
        }
        if let Some(p) = self.program.find_param(name) {
            return Ok(Expr::Param(p));
        }
        Err(c.err(format!("unknown name {name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::program_to_string;

    const MATMUL: &str = "PROGRAM matmul
        PARAM N
        REAL A(N,N), B(N,N), C(N,N)
        DO I = 1, N
          DO J = 1, N
            DO K = 1, N
              C(I,J) = C(I,J) + A(I,K) * B(K,J)";

    #[test]
    fn parses_matmul() {
        let p = parse_program(MATMUL).unwrap();
        assert_eq!(p.name(), "matmul");
        assert_eq!(p.arrays().len(), 3);
        assert_eq!(p.nests().len(), 1);
        let chain = crate::visit::perfect_chain(p.nests()[0]);
        assert_eq!(chain.len(), 3);
        let names: Vec<&str> = chain.iter().map(|l| p.var_name(l.var())).collect();
        assert_eq!(names, vec!["I", "J", "K"]);
    }

    #[test]
    fn round_trips_with_pretty_printer() {
        let p = parse_program(MATMUL).unwrap();
        let printed = program_to_string(&p);
        let reparsed = parse_program(&format!(
            "PROGRAM matmul\nPARAM N\nREAL A(N,N), B(N,N), C(N,N)\n{}",
            printed.lines().skip(1).collect::<Vec<_>>().join("\n")
        ))
        .unwrap();
        assert_eq!(program_to_string(&reparsed), printed);
    }

    #[test]
    fn enddo_closes_scopes() {
        let src = "PROGRAM two
            PARAM N
            REAL A(N), B(N)
            DO I = 1, N
              A(I) = 1.0
            ENDDO
            DO J = 1, N
              B(J) = 2.0
            ENDDO";
        let p = parse_program(src).unwrap();
        assert_eq!(p.nests().len(), 2);
    }

    #[test]
    fn triangular_bounds_and_steps() {
        let src = "PROGRAM tri
            PARAM N
            REAL A(N,N)
            DO K = 1, N, 2
              DO J = K+1, N
                A(J,K) = A(J,K) / 2.0";
        let p = parse_program(src).unwrap();
        let outer = p.nests()[0];
        assert_eq!(outer.step(), 2);
        let inner = outer.only_loop_child().unwrap();
        assert_eq!(inner.lower().coeff_of_var(p.find_var("K").unwrap()), 1);
        assert_eq!(inner.lower().constant_term(), 1);
    }

    #[test]
    fn intrinsics_parse() {
        let src = "PROGRAM f
            PARAM N
            REAL A(N)
            DO I = 1, N
              A(I) = SQRT(A(I)) + MIN(A(I), 2.0) - ABS(-A(I))";
        let p = parse_program(src).unwrap();
        let s = p.statements()[0].rhs().clone();
        assert!(s.size() > 5);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "PROGRAM c
            ! header comment
            PARAM N

            REAL A(N)   ! trailing comment
            DO I = 1, N
              A(I) = 0.0  ! set";
        let p = parse_program(src).unwrap();
        assert_eq!(p.nests().len(), 1);
    }

    #[test]
    fn unknown_array_reported_with_line() {
        let src = "PROGRAM e
            PARAM N
            REAL A(N)
            DO I = 1, N
              B(I) = 0.0";
        let err = parse_program(src).unwrap_err();
        assert!(err.message.contains("unknown array B"), "{err}");
        assert_eq!(err.line, 5);
    }

    #[test]
    fn duplicate_binding_rejected() {
        let src = "PROGRAM e
            PARAM N
            REAL A(N,N)
            DO I = 1, N
              DO I = 1, N
                A(I,I) = 0.0";
        let err = parse_program(src).unwrap_err();
        assert!(err.message.contains("already bound"), "{err}");
    }

    #[test]
    fn negative_constants_and_subtraction() {
        let src = "PROGRAM neg
            PARAM N
            REAL A(N)
            DO I = 2, N-1
              A(I) = A(I-1) - 0.5";
        let p = parse_program(src).unwrap();
        let nest = p.nests()[0];
        assert_eq!(nest.upper().constant_term(), -1);
        let load = p.statements()[0].rhs().loads().next().unwrap();
        assert_eq!(load.subscripts()[0].constant_term(), -1);
    }

    #[test]
    fn coefficient_syntax() {
        let src = "PROGRAM co
            PARAM N
            REAL A(2*N+1)
            DO I = 1, N
              A(2*I+1) = 0.0";
        let p = parse_program(src).unwrap();
        let lhs = p.statements()[0].lhs();
        assert_eq!(
            lhs.subscripts()[0].coeff_of_var(p.find_var("I").unwrap()),
            2
        );
        assert_eq!(lhs.subscripts()[0].constant_term(), 1);
    }

    #[test]
    fn parsed_program_executes() {
        let p = parse_program(MATMUL).unwrap();
        // Equivalent to the builder-made matmul.
        use crate::build::ProgramBuilder;
        use crate::expr::Expr;
        let mut b = ProgramBuilder::new("matmul");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let bb = b.matrix("B", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                b.loop_("K", 1, n, |b| {
                    let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
                    let lhs = b.at(c, [i, j]);
                    let rhs = Expr::load(b.at(c, [i, j]))
                        + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                    b.assign(lhs, rhs);
                });
            });
        });
        let built = b.finish();
        // Structural equality modulo ids: compare pretty-printed text.
        assert_eq!(program_to_string(&p), program_to_string(&built));
    }
}
