//! Typed identifiers for IR entities.
//!
//! Every entity in a [`crate::Program`] — symbolic parameters, loop index
//! variables, arrays, statements, and loops — is referred to by a small
//! integer id wrapped in a newtype, so the type system prevents mixing them
//! up (C-NEWTYPE).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index, usable to index side tables.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// A symbolic integer parameter of a program, e.g. the matrix order `N`.
    ///
    /// Parameters are fixed for a whole program execution; loop bounds and
    /// array extents may reference them.
    ParamId,
    "p"
);
id_type!(
    /// A loop index variable.
    ///
    /// Each `DO` loop binds exactly one index variable; the same variable
    /// may be bound by sibling loops (e.g. after loop distribution) but
    /// never by two loops on the same nesting path.
    VarId,
    "i"
);
id_type!(
    /// An array declared by a program.
    ArrayId,
    "a"
);
id_type!(
    /// A statement. Statement ids are unique within a program and survive
    /// transformations (statements move between loops, they are not
    /// re-created), which lets reports track statements across rewrites.
    StmtId,
    "s"
);
id_type!(
    /// A loop occurrence. Unique within a program; loop distribution clones
    /// a loop header into several loops with fresh ids.
    LoopId,
    "L"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", ParamId(3)), "p3");
        assert_eq!(format!("{:?}", VarId(0)), "i0");
        assert_eq!(format!("{}", ArrayId(7)), "a7");
        assert_eq!(format!("{}", StmtId(2)), "s2");
        assert_eq!(format!("{}", LoopId(9)), "L9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(VarId(1));
        set.insert(VarId(2));
        set.insert(VarId(1));
        assert_eq!(set.len(), 2);
        assert!(VarId(1) < VarId(2));
    }

    #[test]
    fn id_index_round_trip() {
        assert_eq!(StmtId(5).index(), 5);
        let as_usize: usize = LoopId(11).into();
        assert_eq!(as_usize, 11);
    }
}
