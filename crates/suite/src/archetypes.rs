//! Nest archetypes: the building blocks of the benchmark-program models.
//!
//! Each archetype is a small loop nest with a *known* fate under the
//! compound algorithm, verified by unit tests:
//!
//! | archetype | fate |
//! |---|---|
//! | [`add_good`] | already in memory order |
//! | [`add_permutable`] | permuted into memory order |
//! | [`add_good3`] / [`add_permutable3`] | depth-3 variants |
//! | [`add_blocked`] | dependences block memory order (Fail) |
//! | [`add_complex_bounds`] | banded bounds defeat interchange (Fail) |
//! | [`add_unanalyzable`] | coupled subscripts defeat analysis (Fail) — models index-array / linearized-array coding styles |
//! | [`add_fusion_pair`] | two compatible nests fused for temporal reuse |
//! | [`add_distributable`] | distribution + permutation splits the nest |
//! | [`add_reduction_small_dim`] | tiny leading dimension (`applu`-style); transformation legal but unprofitable at run time |

use cmt_ir::affine::Affine;
use cmt_ir::build::ProgramBuilder;
use cmt_ir::expr::Expr;
use cmt_ir::ids::ParamId;

/// `DO J { DO I { C(I,J) = A(I,J)+1 } }` — unit stride innermost; already
/// in memory order.
pub fn add_good(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let a = b.matrix(&format!("GA{tag}"), n);
    let c = b.matrix(&format!("GC{tag}"), n);
    let (jn, inn) = (format!("gj{tag}"), format!("gi{tag}"));
    b.loop_(&jn, 1, n, |b| {
        b.loop_(&inn, 1, n, |b| {
            let (i, j) = (b.var(&inn), b.var(&jn));
            let lhs = b.at(c, [i, j]);
            let rhs = Expr::load(b.at(a, [i, j])) + Expr::Const(1.0);
            b.assign(lhs, rhs);
        });
    });
}

/// `DO I { DO J { C(I,J) = A(I,J) } }` — strides across rows; the
/// compiler interchanges it.
pub fn add_permutable(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let a = b.matrix(&format!("PA{tag}"), n);
    let c = b.matrix(&format!("PC{tag}"), n);
    let (jn, inn) = (format!("pj{tag}"), format!("pi{tag}"));
    b.loop_(&inn, 1, n, |b| {
        b.loop_(&jn, 1, n, |b| {
            let (i, j) = (b.var(&inn), b.var(&jn));
            let lhs = b.at(c, [i, j]);
            let rhs = Expr::load(b.at(a, [i, j])) * Expr::Const(0.5);
            b.assign(lhs, rhs);
        });
    });
}

/// Depth-3 nest already in memory order (JKI matmul shape). The `K`
/// extent is a constant 8 so simulation stays O(n²); the LoopCost ranking
/// (J > K > I) is unchanged.
pub fn add_good3(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let a = b.matrix(&format!("G3A{tag}"), n);
    let bb = b.matrix(&format!("G3B{tag}"), n);
    let c = b.matrix(&format!("G3C{tag}"), n);
    let (jn, kn, inn) = (
        format!("g3j{tag}"),
        format!("g3k{tag}"),
        format!("g3i{tag}"),
    );
    b.loop_(&jn, 1, n, |b| {
        b.loop_(&kn, 1, 8, |b| {
            b.loop_(&inn, 1, n, |b| {
                let (i, j, k) = (b.var(&inn), b.var(&jn), b.var(&kn));
                let lhs = b.at(c, [i, j]);
                let rhs = Expr::load(b.at(c, [i, j]))
                    + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                b.assign(lhs, rhs);
            });
        });
    });
}

/// Depth-3 nest in IJK order; permuted to JKI. Constant `K` extent as in
/// [`add_good3`].
pub fn add_permutable3(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let a = b.matrix(&format!("P3A{tag}"), n);
    let bb = b.matrix(&format!("P3B{tag}"), n);
    let c = b.matrix(&format!("P3C{tag}"), n);
    let (jn, kn, inn) = (
        format!("p3j{tag}"),
        format!("p3k{tag}"),
        format!("p3i{tag}"),
    );
    b.loop_(&inn, 1, n, |b| {
        b.loop_(&jn, 1, n, |b| {
            b.loop_(&kn, 1, 8, |b| {
                let (i, j, k) = (b.var(&inn), b.var(&jn), b.var(&kn));
                let lhs = b.at(c, [i, j]);
                let rhs = Expr::load(b.at(c, [i, j]))
                    + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                b.assign(lhs, rhs);
            });
        });
    });
}

/// `A(I,J) = A(I-1,J-1) + A(I-1,J+1)` — the (1,1)/(1,−1) vector pair
/// blocks every improving permutation (and reversal).
pub fn add_blocked(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let a = b.matrix(&format!("BA{tag}"), n);
    let (jn, inn) = (format!("bj{tag}"), format!("bi{tag}"));
    b.loop_(&inn, 2, Affine::param(n) - 1, |b| {
        b.loop_(&jn, 2, Affine::param(n) - 1, |b| {
            let (i, j) = (b.var(&inn), b.var(&jn));
            let lhs = b.at(a, [i, j]);
            let rhs = Expr::load(b.at_vec(a, vec![Affine::var(i) - 1, Affine::var(j) - 1]))
                + Expr::load(b.at_vec(a, vec![Affine::var(i) - 1, Affine::var(j) + 1]));
            b.assign(lhs, rhs);
        });
    });
}

/// Banded inner bounds `DO J = I, I+2` — memory order wants the
/// interchange but the bound rewrite is unsupported ("bounds too
/// complex").
pub fn add_complex_bounds(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let a = b.matrix(&format!("XA{tag}"), n);
    let c = b.matrix(&format!("XC{tag}"), n);
    let (jn, inn) = (format!("xj{tag}"), format!("xi{tag}"));
    b.loop_(&inn, 1, Affine::param(n) - 2, |b| {
        let i = b.var(&inn);
        b.loop_(&jn, Affine::var(i), Affine::var(i) + 2, |b| {
            let j = b.var(&jn);
            let lhs = b.at(c, [i, j]);
            let rhs = Expr::load(b.at(a, [i, j])) + Expr::Const(2.0);
            b.assign(lhs, rhs);
        });
    });
}

/// Coupled subscripts `A(I+J, J) = A(I+J−1, J±1)` — the coupled first
/// dimension degrades the dependence tests to `*`, and the resulting
/// conservative vectors block the interchange the model wants. Stands in
/// for the index-array (`cgm`) and linearized-array (`mg3d`) coding
/// styles whose analysis the paper reports as defeated.
pub fn add_unanalyzable(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let a = b.array(
        &format!("UA{tag}"),
        vec![(Affine::param(n) * 2 + 1).into(), Affine::param(n).into()],
    );
    let (jn, inn) = (format!("uj{tag}"), format!("ui{tag}"));
    b.loop_(&inn, 1, n, |b| {
        b.loop_(&jn, 2, Affine::param(n) - 1, |b| {
            let (i, j) = (b.var(&inn), b.var(&jn));
            let lhs = b.at_vec(a, vec![Affine::var(i) + Affine::var(j), Affine::var(j)]);
            let rhs = Expr::load(b.at_vec(
                a,
                vec![Affine::var(i) + Affine::var(j) - 1, Affine::var(j) + 1],
            )) + Expr::load(b.at_vec(
                a,
                vec![Affine::var(i) + Affine::var(j) - 1, Affine::var(j) - 1],
            ));
            b.assign(lhs, rhs);
        });
    });
}

/// Two adjacent memory-order nests that share array `A` — the final
/// fusion pass merges them for group-temporal reuse.
pub fn add_fusion_pair(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let a = b.matrix(&format!("FA{tag}"), n);
    let c = b.matrix(&format!("FC{tag}"), n);
    let d = b.matrix(&format!("FD{tag}"), n);
    let (j1, i1) = (format!("fj{tag}"), format!("fi{tag}"));
    b.loop_(&j1, 1, n, |b| {
        b.loop_(&i1, 1, n, |b| {
            let (i, j) = (b.var(&i1), b.var(&j1));
            let lhs = b.at(c, [i, j]);
            let rhs = Expr::load(b.at(a, [i, j])) + Expr::Const(1.0);
            b.assign(lhs, rhs);
        });
    });
    let (j2, i2) = (format!("fj2{tag}"), format!("fi2{tag}"));
    b.loop_(&j2, 1, n, |b| {
        b.loop_(&i2, 1, n, |b| {
            let (i, j) = (b.var(&i2), b.var(&j2));
            let lhs = b.at(d, [i, j]);
            let rhs = Expr::load(b.at(a, [i, j])) * Expr::Const(2.0);
            b.assign(lhs, rhs);
        });
    });
}

/// Two independent statements in one nest: `S1` streams unit-stride data
/// and wants the interchange, `S2` carries a dependence pair that pins
/// the nest. Distribution separates them so `S1`'s copy can be permuted
/// into memory order while `S2`'s copy stays — the paper's motivation for
/// `Distribute` ("statements in different partitions may prefer different
/// memory orders").
pub fn add_distributable(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let c = b.matrix(&format!("DC{tag}"), n);
    let e: Vec<_> = (0..4)
        .map(|k| b.matrix(&format!("DE{k}{tag}"), n))
        .collect();
    let bb = b.matrix(&format!("DB{tag}"), n);
    let (jn, inn) = (format!("dj{tag}"), format!("di{tag}"));
    b.loop_(&inn, 2, Affine::param(n) - 1, |b| {
        b.loop_(&jn, 2, n, |b| {
            let (i, j) = (b.var(&inn), b.var(&jn));
            // S1: recurrence carried by J; every read unit-stride in I.
            let lhs = b.at(c, [i, j]);
            let rhs = Expr::load(b.at_vec(c, vec![Affine::var(i), Affine::var(j) - 1]))
                + Expr::load(b.at(e[0], [i, j]))
                + Expr::load(b.at(e[1], [i, j]))
                + Expr::load(b.at(e[2], [i, j]))
                + Expr::load(b.at(e[3], [i, j]));
            b.assign(lhs, rhs);
            // S2: (1,−1)/(1,1)-style vectors in (I,J) block its movement.
            let lhs2 = b.at(bb, [j, i]);
            let rhs2 = Expr::load(b.at_vec(bb, vec![Affine::var(j) - 1, Affine::var(i) + 1]))
                + Expr::load(b.at_vec(bb, vec![Affine::var(j) - 1, Affine::var(i) - 1]));
            b.assign(lhs2, rhs2);
        });
    });
}

/// `applu`-style reduction over arrays with a tiny leading dimension
/// (5×N): the model prefers unit stride, but with 5-element columns the
/// original reduction is at least as fast — the paper's one degradation.
pub fn add_reduction_small_dim(b: &mut ProgramBuilder, tag: &str, n: ParamId) {
    let a = b.array(&format!("RA{tag}"), vec![5.into(), Affine::param(n).into()]);
    let r = b.array(&format!("RR{tag}"), vec![5.into()]);
    let (jn, mn) = (format!("rj{tag}"), format!("rm{tag}"));
    b.loop_(&jn, 1, n, |b| {
        b.loop_(&mn, 1, 5, |b| {
            let (j, m) = (b.var(&jn), b.var(&mn));
            let lhs = b.at(r, [m]);
            let rhs = Expr::load(b.at(r, [m])) + Expr::load(b.at(a, [m, j]));
            b.assign(lhs, rhs);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::program::Program;
    use cmt_locality::compound::compound;
    use cmt_locality::model::CostModel;

    fn one(adder: impl FnOnce(&mut ProgramBuilder, &str, ParamId)) -> Program {
        let mut b = ProgramBuilder::new("arch");
        let n = b.param("N");
        adder(&mut b, "0", n);
        b.finish()
    }

    #[test]
    fn good_is_untouched() {
        let mut p = one(add_good);
        let r = compound(&mut p, &CostModel::new(4));
        assert_eq!(r.nests_orig_memory_order, 1);
        assert_eq!(r.nests_failed, 0);
    }

    #[test]
    fn permutable_is_permuted() {
        for adder in
            [add_permutable, add_permutable3] as [fn(&mut ProgramBuilder, &str, ParamId); 2]
        {
            let mut p = one(adder);
            let orig = p.clone();
            let r = compound(&mut p, &CostModel::new(4));
            assert_eq!(r.nests_permuted, 1, "{r:#?}");
            cmt_interp::assert_equivalent(&orig, &p, &[10]);
        }
    }

    #[test]
    fn good3_is_memory_order() {
        let mut p = one(add_good3);
        let r = compound(&mut p, &CostModel::new(4));
        assert_eq!(r.nests_orig_memory_order, 1);
    }

    #[test]
    fn blocked_fails_on_dependences() {
        let mut p = one(add_blocked);
        let orig = p.clone();
        let r = compound(&mut p, &CostModel::new(4));
        assert_eq!(r.nests_failed, 1, "{r:#?}");
        assert_eq!(r.fail_dependences, 1);
        assert_eq!(p, orig, "blocked nest must not change");
    }

    #[test]
    fn complex_bounds_fail() {
        let mut p = one(add_complex_bounds);
        let r = compound(&mut p, &CostModel::new(4));
        assert_eq!(r.nests_failed, 1, "{r:#?}");
        assert_eq!(r.fail_complex_bounds, 1, "{r:#?}");
    }

    #[test]
    fn unanalyzable_fails() {
        let mut p = one(add_unanalyzable);
        let orig = p.clone();
        let r = compound(&mut p, &CostModel::new(4));
        assert_eq!(r.nests_failed, 1, "{r:#?}");
        assert_eq!(p, orig);
    }

    #[test]
    fn fusion_pair_fuses() {
        let mut p = one(add_fusion_pair);
        let orig = p.clone();
        let r = compound(&mut p, &CostModel::new(4));
        assert_eq!(r.fusion_candidates, 2, "{r:#?}");
        assert_eq!(r.nests_fused, 2, "{r:#?}");
        assert_eq!(p.nests().len(), 1);
        cmt_interp::assert_equivalent(&orig, &p, &[10]);
    }

    #[test]
    fn distributable_distributes() {
        let mut p = one(add_distributable);
        let orig = p.clone();
        let r = compound(&mut p, &CostModel::new(4));
        assert_eq!(r.distributions, 1, "{r:#?}");
        assert!(r.nests_resulting >= 2);
        cmt_interp::assert_equivalent(&orig, &p, &[10]);
    }

    #[test]
    fn reduction_small_dim_behaviour() {
        let mut p = one(add_reduction_small_dim);
        let orig = p.clone();
        let _ = compound(&mut p, &CostModel::new(4));
        cmt_interp::assert_equivalent(&orig, &p, &[10]);
    }
}
