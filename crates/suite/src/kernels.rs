//! The paper's figure kernels, exactly as written there.

use cmt_ir::affine::Affine;
use cmt_ir::build::ProgramBuilder;
use cmt_ir::expr::Expr;
use cmt_ir::program::Program;

/// Matrix multiply `C += A·B` (Figure 2) with the loops nested in the
/// given order, e.g. `"IJK"` for the textbook form or `"JKI"` for memory
/// order. Characters must be a permutation of `I`, `J`, `K`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `"IJK"`.
pub fn matmul(order: &str) -> Program {
    let mut sorted: Vec<char> = order.chars().collect();
    sorted.sort_unstable();
    assert_eq!(sorted, vec!['I', 'J', 'K'], "order must permute IJK");
    let names: Vec<String> = order.chars().map(|c| c.to_string()).collect();

    let mut b = ProgramBuilder::new(format!("matmul-{order}"));
    let n = b.param("N");
    let a = b.matrix("A", n);
    let bb = b.matrix("B", n);
    let c = b.matrix("C", n);
    b.loop_(&names[0], 1, n, |b| {
        b.loop_(&names[1], 1, n, |b| {
            b.loop_(&names[2], 1, n, |b| {
                let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
                let lhs = b.at(c, [i, j]);
                let rhs = Expr::load(b.at(c, [i, j]))
                    + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                b.assign(lhs, rhs);
            });
        });
    });
    b.finish()
}

/// All six loop orders of [`matmul`], least-cost first per the paper's
/// ranking (JKI, KJI, JIK, IJK, KIJ, IKJ).
pub fn matmul_orders() -> Vec<(&'static str, Program)> {
    ["JKI", "KJI", "JIK", "IJK", "KIJ", "IKJ"]
        .into_iter()
        .map(|o| (o, matmul(o)))
        .collect()
}

/// Cholesky factorization in the paper's KIJ form (Figure 7a).
pub fn cholesky_kij() -> Program {
    let mut b = ProgramBuilder::new("cholesky-KIJ");
    let n = b.param("N");
    let a = b.matrix("A", n);
    b.loop_("K", 1, n, |b| {
        let k = b.var("K");
        let akk = b.at(a, [k, k]);
        let rhs = Expr::sqrt(Expr::load(b.at(a, [k, k])));
        b.assign(akk, rhs); // S1
        b.loop_("I", Affine::var(k) + 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i, k]);
            let rhs = Expr::load(b.at(a, [i, k])) / Expr::load(b.at(a, [k, k]));
            b.assign(lhs, rhs); // S2
            b.loop_("J", Affine::var(k) + 1, i, |b| {
                let j = b.var("J");
                let lhs = b.at(a, [i, j]);
                let rhs = Expr::load(b.at(a, [i, j]))
                    - Expr::load(b.at(a, [i, k])) * Expr::load(b.at(a, [j, k]));
                b.assign(lhs, rhs); // S3
            });
        });
    });
    b.finish()
}

/// Cholesky in KJI form — the memory order the paper's Figure 7(b)
/// reaches via distribution and triangular interchange:
/// `DO K { S1; DO I {S2}; DO J { DO I {S3} } }`.
pub fn cholesky_kji() -> Program {
    let mut b = ProgramBuilder::new("cholesky-KJI");
    let n = b.param("N");
    let a = b.matrix("A", n);
    b.loop_("K", 1, n, |b| {
        let k = b.var("K");
        let akk = b.at(a, [k, k]);
        let rhs = Expr::sqrt(Expr::load(b.at(a, [k, k])));
        b.assign(akk, rhs);
        b.loop_("I", Affine::var(k) + 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i, k]);
            let rhs = Expr::load(b.at(a, [i, k])) / Expr::load(b.at(a, [k, k]));
            b.assign(lhs, rhs);
        });
        b.loop_("J", Affine::var(k) + 1, n, |b| {
            let j = b.var("J");
            b.loop_("I2", Affine::var(j), n, |b| {
                let i2 = b.var("I2");
                let lhs = b.at(a, [i2, j]);
                let rhs = Expr::load(b.at(a, [i2, j]))
                    - Expr::load(b.at(a, [i2, k])) * Expr::load(b.at(a, [j, k]));
                b.assign(lhs, rhs);
            });
        });
    });
    b.finish()
}

/// Cholesky with the update sweep in KIJ order but distributed (the
/// "distributed, no interchange" point used when ranking variants).
pub fn cholesky_kij_distributed() -> Program {
    let mut b = ProgramBuilder::new("cholesky-KIJ-dist");
    let n = b.param("N");
    let a = b.matrix("A", n);
    b.loop_("K", 1, n, |b| {
        let k = b.var("K");
        let akk = b.at(a, [k, k]);
        let rhs = Expr::sqrt(Expr::load(b.at(a, [k, k])));
        b.assign(akk, rhs);
        b.loop_("I", Affine::var(k) + 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i, k]);
            let rhs = Expr::load(b.at(a, [i, k])) / Expr::load(b.at(a, [k, k]));
            b.assign(lhs, rhs);
        });
        b.loop_("I2", Affine::var(k) + 1, n, |b| {
            let i2 = b.var("I2");
            b.loop_("J", Affine::var(k) + 1, i2, |b| {
                let j = b.var("J");
                let lhs = b.at(a, [i2, j]);
                let rhs = Expr::load(b.at(a, [i2, j]))
                    - Expr::load(b.at(a, [i2, k])) * Expr::load(b.at(a, [j, k]));
                b.assign(lhs, rhs);
            });
        });
    });
    b.finish()
}

/// The named Cholesky variants compared in Figure 7's ranking study.
pub fn cholesky_variants() -> Vec<(&'static str, Program)> {
    vec![
        ("KJI", cholesky_kji()),
        ("KIJ-dist", cholesky_kij_distributed()),
        ("KIJ", cholesky_kij()),
    ]
}

/// ADI integration, Fortran-90 scalarization (Figure 3b): an imperfect
/// `I` nest containing two `K` sweeps.
pub fn adi_scalarized() -> Program {
    let mut b = ProgramBuilder::new("adi-scalarized");
    let n = b.param("N");
    let x = b.matrix("X", n);
    let a = b.matrix("A", n);
    let bb = b.matrix("B", n);
    b.loop_("I", 2, n, |b| {
        let i = b.var("I");
        b.loop_("K", 1, n, |b| {
            let k = b.var("K");
            let lhs = b.at(x, [i, k]);
            let rhs = Expr::load(b.at(x, [i, k]))
                - Expr::load(b.at_vec(x, vec![Affine::var(i) - 1, Affine::var(k)]))
                    * Expr::load(b.at(a, [i, k]))
                    / Expr::load(b.at_vec(bb, vec![Affine::var(i) - 1, Affine::var(k)]));
            b.assign(lhs, rhs);
        });
        b.loop_("K2", 1, n, |b| {
            let k2 = b.var("K2");
            let lhs = b.at(bb, [i, k2]);
            let rhs = Expr::load(b.at(bb, [i, k2]))
                - Expr::load(b.at(a, [i, k2])) * Expr::load(b.at(a, [i, k2]))
                    / Expr::load(b.at_vec(bb, vec![Affine::var(i) - 1, Affine::var(k2)]));
            b.assign(lhs, rhs);
        });
    });
    b.finish()
}

/// ADI after fusion and interchange (Figure 3c): `DO K { DO I { S1; S2 } }`.
pub fn adi_fused_interchanged() -> Program {
    let mut b = ProgramBuilder::new("adi-fused");
    let n = b.param("N");
    let x = b.matrix("X", n);
    let a = b.matrix("A", n);
    let bb = b.matrix("B", n);
    b.loop_("K", 1, n, |b| {
        let k = b.var("K");
        b.loop_("I", 2, n, |b| {
            let i = b.var("I");
            let lhs = b.at(x, [i, k]);
            let rhs = Expr::load(b.at(x, [i, k]))
                - Expr::load(b.at_vec(x, vec![Affine::var(i) - 1, Affine::var(k)]))
                    * Expr::load(b.at(a, [i, k]))
                    / Expr::load(b.at_vec(bb, vec![Affine::var(i) - 1, Affine::var(k)]));
            b.assign(lhs, rhs);
            let lhs = b.at(bb, [i, k]);
            let rhs = Expr::load(b.at(bb, [i, k]))
                - Expr::load(b.at(a, [i, k])) * Expr::load(b.at(a, [i, k]))
                    / Expr::load(b.at_vec(bb, vec![Affine::var(i) - 1, Affine::var(k)]));
            b.assign(lhs, rhs);
        });
    });
    b.finish()
}

/// An Erlebacher-style ADI sweep pipeline over 3-D data: `stages`
/// single-statement triple nests in memory order (`K`,`J`,`I` outermost to
/// innermost), each stage consuming its predecessor's output — the
/// "Distributed" program version of Table 1.
pub fn erlebacher_distributed(stages: usize) -> Program {
    assert!(stages >= 2, "a pipeline needs at least two stages");
    let mut b = ProgramBuilder::new("erlebacher-distributed");
    let n = b.param("N");
    let dims = vec![n.into(), n.into(), n.into()];
    let arrays: Vec<_> = (0..=stages)
        .map(|s| b.array(&format!("V{s}"), dims.clone()))
        .collect();
    for s in 0..stages {
        let (kn, jn, inn) = (format!("K{s}"), format!("J{s}"), format!("I{s}"));
        b.loop_(&kn, 1, n, |b| {
            b.loop_(&jn, 1, n, |b| {
                b.loop_(&inn, 1, n, |b| {
                    let (k, j, i) = (b.var(&kn), b.var(&jn), b.var(&inn));
                    let lhs = b.at(arrays[s + 1], [i, j, k]);
                    let rhs = Expr::load(b.at(arrays[s], [i, j, k])) * Expr::Const(0.5)
                        + Expr::load(b.at(arrays[s + 1], [i, j, k]));
                    b.assign(lhs, rhs);
                });
            });
        });
    }
    b.finish()
}

/// The "Hand" version of Table 1: the same pipeline with stages fused in
/// pairs (as the original author hand-coded some, but not all, fusion).
pub fn erlebacher_hand(stages: usize) -> Program {
    assert!(
        stages >= 2 && stages.is_multiple_of(2),
        "pairs require even stages"
    );
    let mut b = ProgramBuilder::new("erlebacher-hand");
    let n = b.param("N");
    let dims = vec![n.into(), n.into(), n.into()];
    let arrays: Vec<_> = (0..=stages)
        .map(|s| b.array(&format!("V{s}"), dims.clone()))
        .collect();
    for pair in 0..stages / 2 {
        let s = pair * 2;
        let (kn, jn, inn) = (format!("K{pair}"), format!("J{pair}"), format!("I{pair}"));
        b.loop_(&kn, 1, n, |b| {
            b.loop_(&jn, 1, n, |b| {
                b.loop_(&inn, 1, n, |b| {
                    let (k, j, i) = (b.var(&kn), b.var(&jn), b.var(&inn));
                    for t in [s, s + 1] {
                        let lhs = b.at(arrays[t + 1], [i, j, k]);
                        let rhs = Expr::load(b.at(arrays[t], [i, j, k])) * Expr::Const(0.5)
                            + Expr::load(b.at(arrays[t + 1], [i, j, k]));
                        b.assign(lhs, rhs);
                    }
                });
            });
        });
    }
    b.finish()
}

/// `Gmtry`-style Gaussian elimination *across rows* (§5.7): the
/// elimination loop strides along the non-contiguous dimension, so the
/// original has no spatial locality.
pub fn gmtry_rowwise() -> Program {
    let mut b = ProgramBuilder::new("gmtry-rowwise");
    let n = b.param("N");
    let a = b.matrix("RMATRX", n);
    b.loop_("K", 1, n, |b| {
        let k = b.var("K");
        b.loop_("I", Affine::var(k) + 1, n, |b| {
            let i = b.var("I");
            b.loop_("J", Affine::var(k) + 1, n, |b| {
                let j = b.var("J");
                // A(K,J) and A(K,K) stride across rows: poor locality in
                // every inner order until permuted.
                let lhs = b.at(a, [i, j]);
                let rhs = Expr::load(b.at(a, [i, j]))
                    - Expr::load(b.at(a, [i, k])) * Expr::load(b.at(a, [k, j]));
                b.assign(lhs, rhs);
            });
        });
    });
    b.finish()
}

/// Every figure kernel, one entry per distinct program, keyed by the
/// program's own name. This is the profiling subsystem's ground-truth
/// workload: a sampled hotspot ranking over these kernels is compared
/// against full simulation in tests and CI (`cmt-profile --check`).
///
/// The list is deterministic (fixed order, fixed names) and every
/// program is valid for any `N >= 5`, like the generated verify corpus.
pub fn paper_kernels() -> Vec<Program> {
    let mut kernels: Vec<Program> = matmul_orders().into_iter().map(|(_, p)| p).collect();
    kernels.extend([
        cholesky_kij(),
        cholesky_kji(),
        cholesky_kij_distributed(),
        adi_scalarized(),
        adi_fused_interchanged(),
        erlebacher_distributed(4),
        erlebacher_hand(4),
        gmtry_rowwise(),
    ]);
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::validate::validate;
    use cmt_locality::model::CostModel;
    use cmt_locality::report::nest_in_memory_order;

    #[test]
    fn all_kernels_validate() {
        for (_, p) in matmul_orders() {
            validate(&p).unwrap();
        }
        for (_, p) in cholesky_variants() {
            validate(&p).unwrap();
        }
        validate(&adi_scalarized()).unwrap();
        validate(&adi_fused_interchanged()).unwrap();
        validate(&erlebacher_distributed(4)).unwrap();
        validate(&erlebacher_hand(4)).unwrap();
        validate(&gmtry_rowwise()).unwrap();
    }

    #[test]
    fn matmul_jki_is_memory_order() {
        let model = CostModel::new(4);
        let p = matmul("JKI");
        assert!(nest_in_memory_order(&p, p.nests()[0], &model));
        let p = matmul("IJK");
        assert!(!nest_in_memory_order(&p, p.nests()[0], &model));
    }

    #[test]
    fn matmul_variants_compute_identically() {
        let base = matmul("IJK");
        for (name, p) in matmul_orders() {
            cmt_interp::assert_equivalent(&base, &p, &[10]);
            let _ = name;
        }
    }

    #[test]
    fn cholesky_variants_compute_identically() {
        let base = cholesky_kij();
        // Seed a symmetric positive-definite-ish matrix: the default
        // machine init is positive and diagonally safe for these sizes.
        for (name, p) in cholesky_variants() {
            cmt_interp::assert_equivalent(&base, &p, &[12]);
            let _ = name;
        }
    }

    #[test]
    fn adi_versions_compute_identically() {
        cmt_interp::assert_equivalent(&adi_scalarized(), &adi_fused_interchanged(), &[12]);
    }

    #[test]
    fn erlebacher_versions_compute_identically() {
        cmt_interp::assert_equivalent(&erlebacher_distributed(4), &erlebacher_hand(4), &[8]);
    }

    #[test]
    fn paper_kernels_have_unique_names_and_validate() {
        let kernels = paper_kernels();
        assert!(kernels.len() >= 12);
        let names: std::collections::HashSet<&str> = kernels.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), kernels.len(), "kernel names must be unique");
        for p in &kernels {
            validate(p).unwrap_or_else(|e| panic!("{}: {e:?}", p.name()));
        }
    }

    #[test]
    fn matmul_bad_order_panics() {
        let result = std::panic::catch_unwind(|| matmul("IIK"));
        assert!(result.is_err());
    }
}
