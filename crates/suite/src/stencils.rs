//! Additional scientific kernels in the paper's domain.
//!
//! These extend [`crate::kernels`] with the loop shapes the benchmark
//! suites of the era are made of: relaxations, transposition, banded and
//! block solvers, and BLAS-style updates. Each comes in a "bad stride"
//! and/or natural form so the optimizer has real work to do, and each is
//! exercised by equivalence and transformation tests.

use cmt_ir::affine::Affine;
use cmt_ir::build::ProgramBuilder;
use cmt_ir::expr::Expr;
use cmt_ir::program::Program;

/// Jacobi 2-D relaxation, `order` selects `"IJ"` (row-major walk — bad for
/// Fortran) or `"JI"` (memory order):
/// `B(I,J) = 0.25·(A(I−1,J)+A(I+1,J)+A(I,J−1)+A(I,J+1))`.
pub fn jacobi2d(order: &str) -> Program {
    assert!(order == "IJ" || order == "JI", "order must be IJ or JI");
    let mut b = ProgramBuilder::new(format!("jacobi2d-{order}"));
    let n = b.param("N");
    let a = b.matrix("A", n);
    let out = b.matrix("B", n);
    let body = |b: &mut ProgramBuilder| {
        let (i, j) = (b.var("I"), b.var("J"));
        let lhs = b.at(out, [i, j]);
        let rhs = (Expr::load(b.at_vec(a, vec![Affine::var(i) - 1, Affine::var(j)]))
            + Expr::load(b.at_vec(a, vec![Affine::var(i) + 1, Affine::var(j)]))
            + Expr::load(b.at_vec(a, vec![Affine::var(i), Affine::var(j) - 1]))
            + Expr::load(b.at_vec(a, vec![Affine::var(i), Affine::var(j) + 1])))
            * Expr::Const(0.25);
        b.assign(lhs, rhs);
    };
    if order == "IJ" {
        b.loop_("I", 2, Affine::param(n) - 1, |b| {
            b.loop_("J", 2, Affine::param(n) - 1, body);
        });
    } else {
        b.loop_("J", 2, Affine::param(n) - 1, |b| {
            b.loop_("I", 2, Affine::param(n) - 1, body);
        });
    }
    b.finish()
}

/// Gauss–Seidel / SOR sweep with the classic wavefront dependence
/// (`A(I,J)` updated from `A(I−1,J)` and `A(I,J−1)`): every interchange
/// is legal here (vectors (1,0) and (0,1)) but tiling the band is too —
/// a workhorse for legality tests.
pub fn sor(order_ij: bool) -> Program {
    let mut b = ProgramBuilder::new(if order_ij { "sor-IJ" } else { "sor-JI" });
    let n = b.param("N");
    let a = b.matrix("A", n);
    let body = |b: &mut ProgramBuilder| {
        let (i, j) = (b.var("I"), b.var("J"));
        let lhs = b.at(a, [i, j]);
        let rhs = (Expr::load(b.at(a, [i, j]))
            + Expr::load(b.at_vec(a, vec![Affine::var(i) - 1, Affine::var(j)]))
            + Expr::load(b.at_vec(a, vec![Affine::var(i), Affine::var(j) - 1])))
            * Expr::Const(1.0 / 3.0);
        b.assign(lhs, rhs);
    };
    if order_ij {
        b.loop_("I", 2, n, |b| {
            b.loop_("J", 2, n, body);
        });
    } else {
        b.loop_("J", 2, n, |b| {
            b.loop_("I", 2, n, body);
        });
    }
    b.finish()
}

/// Out-of-place matrix transpose `B(J,I) = A(I,J)`: the canonical kernel
/// where *no* loop order achieves unit stride for both references —
/// LoopCost ties, and §6's observation about tiling outer loops with many
/// unit-stride references applies.
pub fn transpose() -> Program {
    let mut b = ProgramBuilder::new("transpose");
    let n = b.param("N");
    let a = b.matrix("A", n);
    let t = b.matrix("B", n);
    b.loop_("I", 1, n, |b| {
        b.loop_("J", 1, n, |b| {
            let (i, j) = (b.var("I"), b.var("J"));
            let lhs = b.at(t, [j, i]);
            let rhs = Expr::load(b.at(a, [i, j]));
            b.assign(lhs, rhs);
        });
    });
    b.finish()
}

/// Symmetric rank-2k update (`C += A·Bᵀ + B·Aᵀ` restricted to the lower
/// triangle) — a triangular-bounds kernel beyond Cholesky.
pub fn syr2k() -> Program {
    let mut b = ProgramBuilder::new("syr2k");
    let n = b.param("N");
    let a = b.matrix("A", n);
    let bb = b.matrix("B", n);
    let c = b.matrix("C", n);
    b.loop_("J", 1, n, |b| {
        let j = b.var("J");
        b.loop_("I", j, n, |b| {
            b.loop_("K", 1, n, |b| {
                let (i, k) = (b.var("I"), b.var("K"));
                let lhs = b.at(c, [i, j]);
                let rhs = Expr::load(b.at(c, [i, j]))
                    + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [j, k]))
                    + Expr::load(b.at(bb, [i, k])) * Expr::load(b.at(a, [j, k]));
                b.assign(lhs, rhs);
            });
        });
    });
    b.finish()
}

/// Right-looking LU factorization without pivoting (KIJ form) — the same
/// distribution-then-interchange shape as Cholesky, minus the square
/// root.
pub fn lu_kij() -> Program {
    let mut b = ProgramBuilder::new("lu-KIJ");
    let n = b.param("N");
    let a = b.matrix("A", n);
    b.loop_("K", 1, Affine::param(n) - 1, |b| {
        let k = b.var("K");
        b.loop_("I", Affine::var(k) + 1, n, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i, k]);
            let rhs = Expr::load(b.at(a, [i, k])) / Expr::load(b.at(a, [k, k]));
            b.assign(lhs, rhs);
            b.loop_("J", Affine::var(k) + 1, n, |b| {
                let j = b.var("J");
                let lhs = b.at(a, [i, j]);
                let rhs = Expr::load(b.at(a, [i, j]))
                    - Expr::load(b.at(a, [i, k])) * Expr::load(b.at(a, [k, j]));
                b.assign(lhs, rhs);
            });
        });
    });
    b.finish()
}

/// `vpenta`-style pentadiagonal inversion sweep written with the vector
/// dimension outermost (the SPEC kernel's notorious bad-stride shape):
/// every array is walked across rows until the optimizer interchanges.
pub fn vpenta_rowwise() -> Program {
    let mut b = ProgramBuilder::new("vpenta-rowwise");
    let n = b.param("N");
    let f = b.matrix("F", n);
    let x = b.matrix("X", n);
    let y = b.matrix("Y", n);
    b.loop_("J", 3, Affine::param(n) - 2, |b| {
        b.loop_("I", 1, n, |b| {
            let (i, j) = (b.var("I"), b.var("J"));
            // Recurrence along J (outer): vectorizable form.
            let lhs = b.at(f, [j, i]);
            let rhs = Expr::load(b.at(f, [j, i]))
                - Expr::load(b.at_vec(f, vec![Affine::var(j) - 1, Affine::var(i)]))
                    * Expr::load(b.at(x, [j, i]))
                - Expr::load(b.at_vec(f, vec![Affine::var(j) - 2, Affine::var(i)]))
                    * Expr::load(b.at(y, [j, i]));
            b.assign(lhs, rhs);
        });
    });
    b.finish()
}

/// A 3-D 7-point stencil (`appbt`/`appsp` building block), already in
/// memory order.
pub fn stencil3d() -> Program {
    let mut b = ProgramBuilder::new("stencil3d");
    let n = b.param("N");
    let dims = vec![n.into(), n.into(), n.into()];
    let a = b.array("A", dims.clone());
    let out = b.array("B", dims);
    b.loop_("K", 2, Affine::param(n) - 1, |b| {
        b.loop_("J", 2, Affine::param(n) - 1, |b| {
            b.loop_("I", 2, Affine::param(n) - 1, |b| {
                let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
                let lhs = b.at(out, [i, j, k]);
                let rhs = (Expr::load(
                    b.at_vec(a, vec![Affine::var(i) - 1, Affine::var(j), Affine::var(k)]),
                ) + Expr::load(
                    b.at_vec(a, vec![Affine::var(i) + 1, Affine::var(j), Affine::var(k)]),
                ) + Expr::load(
                    b.at_vec(a, vec![Affine::var(i), Affine::var(j) - 1, Affine::var(k)]),
                ) + Expr::load(
                    b.at_vec(a, vec![Affine::var(i), Affine::var(j) + 1, Affine::var(k)]),
                ) + Expr::load(
                    b.at_vec(a, vec![Affine::var(i), Affine::var(j), Affine::var(k) - 1]),
                ) + Expr::load(
                    b.at_vec(a, vec![Affine::var(i), Affine::var(j), Affine::var(k) + 1]),
                )) * Expr::Const(1.0 / 6.0);
                b.assign(lhs, rhs);
            });
        });
    });
    b.finish()
}

/// `daxpy`-style depth-1 loop (`linpackd`'s modular style): too shallow
/// for the optimizer, present to exercise the depth-≥2 filter.
pub fn daxpy() -> Program {
    let mut b = ProgramBuilder::new("daxpy");
    let n = b.param("N");
    let x = b.array("X", vec![n.into()]);
    let y = b.array("Y", vec![n.into()]);
    b.loop_("I", 1, n, |b| {
        let i = b.var("I");
        let lhs = b.at(y, [i]);
        let rhs = Expr::load(b.at(y, [i])) + Expr::Const(3.0) * Expr::load(b.at(x, [i]));
        b.assign(lhs, rhs);
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::validate::validate;
    use cmt_locality::compound::compound;
    use cmt_locality::model::CostModel;
    use cmt_locality::report::{inner_loop_in_position, nest_in_memory_order};

    #[test]
    fn all_stencil_kernels_validate() {
        for p in [
            jacobi2d("IJ"),
            jacobi2d("JI"),
            sor(true),
            sor(false),
            transpose(),
            syr2k(),
            lu_kij(),
            vpenta_rowwise(),
            stencil3d(),
            daxpy(),
        ] {
            validate(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        }
    }

    #[test]
    fn jacobi_orders_equivalent_and_fixed() {
        cmt_interp::assert_equivalent(&jacobi2d("IJ"), &jacobi2d("JI"), &[12]);
        let model = CostModel::new(4);
        let mut bad = jacobi2d("IJ");
        let orig = bad.clone();
        let r = compound(&mut bad, &model);
        assert_eq!(r.nests_permuted, 1, "{r:#?}");
        cmt_interp::assert_equivalent(&orig, &bad, &[12]);
        let good = jacobi2d("JI");
        assert!(nest_in_memory_order(&good, good.nests()[0], &model));
    }

    #[test]
    fn sor_interchange_is_legal_and_applied() {
        // Wavefront vectors (1,0) and (0,1): interchange legal; memory
        // order is JI.
        let model = CostModel::new(4);
        let mut p = sor(true);
        let orig = p.clone();
        let r = compound(&mut p, &model);
        assert_eq!(r.nests_permuted, 1, "{r:#?}");
        cmt_interp::assert_equivalent(&orig, &p, &[11]);
    }

    #[test]
    fn transpose_cost_ties() {
        // Neither order wins: LoopCost(I) == LoopCost(J).
        let model = CostModel::new(4);
        let p = transpose();
        let costs = model.nest_costs(&p, p.nests()[0]);
        assert_eq!(
            costs[0].cost.dominating_cmp(&costs[1].cost),
            std::cmp::Ordering::Equal
        );
        // Ties keep the original order: nothing to do.
        let mut q = p.clone();
        let r = compound(&mut q, &model);
        assert_eq!(r.nests_permuted, 0);
        assert_eq!(p, q);
    }

    #[test]
    fn lu_distributes_like_cholesky() {
        let model = CostModel::new(4);
        let mut p = lu_kij();
        let orig = p.clone();
        let r = compound(&mut p, &model);
        assert_eq!(r.distributions, 1, "{r:#?}");
        cmt_interp::assert_equivalent(&orig, &p, &[12]);
    }

    #[test]
    fn vpenta_gets_interchanged() {
        let model = CostModel::new(4);
        let mut p = vpenta_rowwise();
        let orig = p.clone();
        let r = compound(&mut p, &model);
        assert!(r.inner_permuted >= 1, "{r:#?}");
        assert!(inner_loop_in_position(&p, p.nests()[0], &model));
        cmt_interp::assert_equivalent(&orig, &p, &[14]);
    }

    #[test]
    fn stencil3d_already_optimal() {
        let model = CostModel::new(4);
        let mut p = stencil3d();
        let before = p.clone();
        let r = compound(&mut p, &model);
        assert_eq!(r.nests_orig_memory_order, 1, "{r:#?}");
        assert_eq!(p, before);
    }

    #[test]
    fn syr2k_triangular_analysis_runs() {
        let model = CostModel::new(4);
        let p = syr2k();
        let costs = model.nest_costs(&p, p.nests()[0]);
        assert_eq!(costs.len(), 3);
        // K must NOT be the cheapest innermost (it touches new lines of
        // every operand).
        let order = model.memory_order(&p, p.nests()[0]);
        let innermost = *order.last().unwrap();
        let k = p.find_var("K").unwrap();
        let inner_var = costs.iter().find(|e| e.loop_id == innermost).unwrap().var;
        assert_ne!(inner_var, k);
    }

    #[test]
    fn daxpy_skipped_by_compound() {
        let model = CostModel::new(4);
        let mut p = daxpy();
        let r = compound(&mut p, &model);
        assert_eq!(r.nests_total, 0);
        assert_eq!(r.loops_total, 1);
    }
}
