//! IR models of the paper's 35-program benchmark suite.
//!
//! One [`ModelSpec`] per row of the paper's Table 2. Each model is built
//! from the nest archetypes of [`crate::archetypes`] in a mixture chosen
//! to match the row's reported characteristics: the fraction of nests
//! originally in memory order, how many are permutable vs blocked by
//! dependences vs defeated by complex bounds or unanalyzable subscripts,
//! and the fusion/distribution opportunities. The `rest` program models
//! the unoptimized remainder of the application (already-good nests),
//! which dilutes whole-program cache statistics exactly as in Table 4.
//!
//! The mixtures are scaled down (~8–12 nests per program instead of up to
//! 162) to keep simulation fast; percentages, not absolute counts, are
//! what the reproduction preserves.

use crate::archetypes::*;
use cmt_ir::build::ProgramBuilder;
use cmt_ir::program::Program;

/// Benchmark family, mirroring the paper's table sections.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Group {
    /// Perfect Club benchmarks.
    Perfect,
    /// SPEC benchmarks.
    Spec,
    /// NAS kernels.
    Nas,
    /// Miscellaneous programs.
    Misc,
}

impl Group {
    /// Display label used by the table harnesses.
    pub fn label(&self) -> &'static str {
        match self {
            Group::Perfect => "Perfect Benchmarks",
            Group::Spec => "SPEC Benchmarks",
            Group::Nas => "NAS Benchmarks",
            Group::Misc => "Miscellaneous Programs",
        }
    }
}

/// How many nests of each archetype a model contains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NestMix {
    /// Depth-2 nests already in memory order.
    pub good: usize,
    /// Depth-2 nests the compiler permutes.
    pub perm: usize,
    /// Depth-3 nests already in memory order.
    pub good3: usize,
    /// Depth-3 nests the compiler permutes.
    pub perm3: usize,
    /// Dependence-blocked nests (fail).
    pub blocked: usize,
    /// Banded-bounds nests (fail: bounds too complex).
    pub complex: usize,
    /// Unanalyzable-subscript nests (fail; `cgm`/`mg3d` coding styles).
    pub unanalyzable: usize,
    /// Adjacent compatible nest *pairs* that fusion merges.
    pub fusion_pairs: usize,
    /// Nests that require distribution + permutation.
    pub dist: usize,
    /// Tiny-leading-dimension reductions (`applu`'s degradation).
    pub reduction: usize,
}

impl NestMix {
    /// Total nests of depth ≥ 2 (each fusion pair contributes two).
    pub fn total_nests(&self) -> usize {
        self.good
            + self.perm
            + self.good3
            + self.perm3
            + self.blocked
            + self.complex
            + self.unanalyzable
            + 2 * self.fusion_pairs
            + self.dist
            + self.reduction
    }
}

/// A row of the benchmark table: name, family, archetype mixture, and
/// simulation sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelSpec {
    /// Program name (matching the paper's row).
    pub name: &'static str,
    /// Benchmark family.
    pub group: Group,
    /// Archetype mixture for the optimized procedures.
    pub mix: NestMix,
    /// Already-good background nests (the program's unoptimized
    /// remainder).
    pub rest_nests: usize,
    /// Matrix order for cache simulations (Table 4).
    pub sim_n: i64,
    /// Non-comment source lines reported by the paper (context column).
    pub lines: u32,
}

/// A built model: the optimized-procedures program and the background
/// program.
#[derive(Clone, Debug)]
pub struct BenchmarkModel {
    /// The row's metadata.
    pub spec: ModelSpec,
    /// The nests the optimizer works on.
    pub optimized: Program,
    /// The rest of the application (good locality, left untouched).
    pub rest: Program,
}

impl BenchmarkModel {
    /// Builds the model's programs from its spec.
    pub fn build(spec: ModelSpec) -> Self {
        let mix = spec.mix;
        let mut b = ProgramBuilder::new(spec.name);
        let n = b.param("N");
        let mut tag = 0usize;
        let t = |tag: &mut usize| {
            *tag += 1;
            format!("{tag}")
        };
        // Interleave archetypes in a fixed round-robin so adjacency (for
        // fusion) is what each archetype expects.
        for _ in 0..mix.good {
            add_good(&mut b, &t(&mut tag), n);
        }
        for _ in 0..mix.perm {
            add_permutable(&mut b, &t(&mut tag), n);
        }
        for _ in 0..mix.good3 {
            add_good3(&mut b, &t(&mut tag), n);
        }
        for _ in 0..mix.perm3 {
            add_permutable3(&mut b, &t(&mut tag), n);
        }
        for _ in 0..mix.blocked {
            add_blocked(&mut b, &t(&mut tag), n);
        }
        for _ in 0..mix.complex {
            add_complex_bounds(&mut b, &t(&mut tag), n);
        }
        for _ in 0..mix.unanalyzable {
            add_unanalyzable(&mut b, &t(&mut tag), n);
        }
        for _ in 0..mix.fusion_pairs {
            add_fusion_pair(&mut b, &t(&mut tag), n);
        }
        for _ in 0..mix.dist {
            add_distributable(&mut b, &t(&mut tag), n);
        }
        for _ in 0..mix.reduction {
            add_reduction_small_dim(&mut b, &t(&mut tag), n);
        }
        let optimized = b.finish();

        let mut rb = ProgramBuilder::new(format!("{}-rest", spec.name));
        let rn = rb.param("N");
        for k in 0..spec.rest_nests {
            add_good(&mut rb, &format!("r{k}"), rn);
        }
        let rest = rb.finish();

        BenchmarkModel {
            spec,
            optimized,
            rest,
        }
    }
}

/// The full 35-model suite, in the paper's table order.
pub fn suite() -> Vec<BenchmarkModel> {
    specs().into_iter().map(BenchmarkModel::build).collect()
}

/// The specs behind [`suite`].
#[rustfmt::skip]
pub fn specs() -> Vec<ModelSpec> {
    use Group::*;
    let m = |name, group, lines, mix: NestMix, rest_nests, sim_n| ModelSpec {
        name, group, mix, rest_nests, sim_n, lines,
    };
    let mix = |good, perm, good3, perm3, blocked, complex, unanalyzable,
               fusion_pairs, dist, reduction| NestMix {
        good, perm, good3, perm3, blocked, complex, unanalyzable,
        fusion_pairs, dist, reduction,
    };
    vec![
        // Perfect Benchmarks.          g  p g3 p3 bl cx un fu di re
        m("adm",        Perfect, 6105, mix(6, 2, 0, 0, 3, 1, 0, 0, 1, 0), 10, 192),
        m("arc2d",      Perfect, 3965, mix(4, 2, 1, 1, 2, 0, 0, 2, 1, 0),  2, 192),
        m("bdna",       Perfect, 3980, mix(6, 2, 0, 0, 1, 0, 0, 1, 1, 0),  8, 192),
        m("dyfesm",     Perfect, 7608, mix(6, 2, 0, 0, 2, 0, 0, 1, 0, 0),  8, 192),
        m("flo52",      Perfect, 1986, mix(6, 1, 1, 0, 0, 0, 0, 1, 0, 0),  6, 192),
        m("mdg",        Perfect, 1238, mix(5, 1, 0, 0, 1, 0, 0, 0, 0, 0),  6, 192),
        m("mg3d",       Perfect, 2812, mix(8, 0, 0, 0, 0, 0, 1, 0, 1, 0),  6, 192),
        m("ocean",      Perfect, 4343, mix(7, 1, 0, 0, 0, 0, 0, 1, 1, 0),  5, 192),
        m("qcd",        Perfect, 2327, mix(5, 1, 0, 0, 3, 0, 0, 0, 0, 0),  6, 192),
        m("spec77",     Perfect, 3885, mix(7, 1, 0, 0, 3, 0, 0, 0, 0, 0),  8, 192),
        m("track",      Perfect, 3735, mix(4, 1, 0, 0, 2, 0, 0, 1, 1, 0),  6, 192),
        m("trfd",       Perfect,  485, mix(4, 0, 0, 0, 3, 1, 0, 0, 0, 0),  4, 192),
        // SPEC Benchmarks.
        m("dnasa7",     Spec,    1105, mix(3, 1, 2, 1, 2, 0, 0, 1, 1, 0),  2, 192),
        m("doduc",      Spec,    5334, mix(1, 1, 0, 0, 6, 1, 0, 0, 1, 0),  8, 192),
        m("fpppp",      Spec,    2718, mix(4, 1, 0, 0, 0, 0, 0, 0, 0, 0), 10, 192),
        m("hydro2d",    Spec,    4461, mix(2, 0, 0, 0, 0, 0, 0, 3, 0, 0),  4, 192),
        m("matrix300",  Spec,     439, mix(0, 0, 1, 1, 0, 0, 0, 0, 1, 0),  1, 192),
        m("mdljdp2",    Spec,    4316, mix(0, 0, 0, 0, 1, 0, 0, 0, 0, 0),  8, 192),
        m("mdljsp2",    Spec,    3885, mix(0, 0, 0, 0, 1, 0, 0, 0, 0, 0),  8, 192),
        m("ora",        Spec,     453, mix(2, 0, 0, 0, 0, 0, 0, 0, 0, 0),  4, 192),
        m("su2cor",     Spec,    2514, mix(3, 1, 0, 0, 2, 0, 0, 0, 1, 0),  6, 192),
        m("swm256",     Spec,     487, mix(5, 1, 0, 0, 0, 0, 0, 0, 0, 0),  3, 192),
        m("tomcatv",    Spec,     195, mix(2, 0, 0, 0, 0, 0, 0, 1, 0, 0),  2, 192),
        // NAS Benchmarks.
        m("appbt",      Nas,     4457, mix(7, 0, 0, 0, 0, 0, 0, 1, 0, 0),  6, 192),
        m("applu",      Nas,     3285, mix(5, 1, 0, 0, 2, 0, 0, 1, 1, 1),  6, 192),
        m("appsp",      Nas,     3516, mix(5, 1, 1, 0, 1, 0, 0, 2, 0, 0),  4, 192),
        m("buk",        Nas,      305, mix(0, 0, 0, 0, 0, 0, 0, 0, 0, 0),  2, 192),
        m("cgm",        Nas,      855, mix(0, 0, 0, 0, 0, 0, 3, 0, 0, 0),  4, 192),
        m("embar",      Nas,      265, mix(1, 0, 0, 0, 1, 0, 0, 0, 0, 0),  4, 192),
        m("fftpde",     Nas,      773, mix(6, 0, 0, 0, 1, 0, 0, 0, 0, 0),  4, 192),
        m("mgrid",      Nas,      676, mix(5, 1, 0, 0, 0, 0, 0, 1, 1, 0),  4, 192),
        // Miscellaneous Programs.
        m("erlebacher", Misc,     870, mix(3, 1, 0, 0, 0, 0, 0, 4, 0, 0),  2, 192),
        m("linpackd",   Misc,     797, mix(1, 0, 0, 0, 1, 0, 0, 1, 0, 0),  6, 192),
        m("simple",     Misc,    1892, mix(4, 2, 0, 0, 1, 0, 0, 1, 0, 0),  2, 192),
        m("wave",       Misc,    7519, mix(4, 2, 0, 1, 1, 0, 0, 3, 0, 0),  2, 192),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::validate::validate;

    #[test]
    fn suite_has_35_models() {
        let s = suite();
        assert_eq!(s.len(), 35);
        let names: Vec<&str> = s.iter().map(|m| m.spec.name).collect();
        assert!(names.contains(&"arc2d"));
        assert!(names.contains(&"tomcatv"));
        assert!(names.contains(&"wave"));
        // Unique names.
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 35);
    }

    #[test]
    fn all_models_validate() {
        for m in suite() {
            validate(&m.optimized).unwrap_or_else(|e| panic!("{}: {e}", m.spec.name));
            validate(&m.rest).unwrap_or_else(|e| panic!("{}-rest: {e}", m.spec.name));
        }
    }

    #[test]
    fn nest_counts_match_mix() {
        for m in suite() {
            let nests = m
                .optimized
                .nests()
                .iter()
                .filter(|l| cmt_ir::node::Node::Loop((**l).clone()).depth() >= 2)
                .count();
            assert_eq!(
                nests,
                m.spec.mix.total_nests(),
                "{} nest count mismatch",
                m.spec.name
            );
            assert_eq!(m.rest.nests().len(), m.spec.rest_nests);
        }
    }

    #[test]
    fn groups_cover_all_families() {
        let s = specs();
        for g in [Group::Perfect, Group::Spec, Group::Nas, Group::Misc] {
            assert!(s.iter().any(|m| m.group == g), "{g:?} missing");
        }
        assert_eq!(Group::Nas.label(), "NAS Benchmarks");
    }

    #[test]
    fn compound_matches_mix_expectations() {
        use cmt_locality::{compound::compound, model::CostModel};
        // Spot-check three models with distinctive mixes.
        for m in suite() {
            if !["hydro2d", "trfd", "arc2d"].contains(&m.spec.name) {
                continue;
            }
            let mut p = m.optimized.clone();
            let r = compound(&mut p, &CostModel::new(4));
            match m.spec.name {
                "hydro2d" => {
                    // All nests originally in memory order; fusion only.
                    assert_eq!(r.nests_failed, 0, "{r:#?}");
                    assert_eq!(r.nests_orig_memory_order, r.nests_total);
                    assert!(r.nests_fused >= 2 * m.spec.mix.fusion_pairs);
                }
                "trfd" => {
                    assert_eq!(r.nests_failed, m.spec.mix.blocked + m.spec.mix.complex);
                    assert_eq!(r.nests_permuted, 0);
                }
                "arc2d" => {
                    assert!(r.nests_permuted >= m.spec.mix.perm + m.spec.mix.perm3);
                    assert_eq!(r.distributions, m.spec.mix.dist);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn transformed_models_stay_equivalent() {
        use cmt_locality::{compound::compound, model::CostModel};
        for m in suite() {
            if !["arc2d", "applu", "erlebacher"].contains(&m.spec.name) {
                continue;
            }
            let orig = m.optimized.clone();
            let mut p = m.optimized.clone();
            let _ = compound(&mut p, &CostModel::new(4));
            cmt_interp::assert_equivalent(&orig, &p, &[12]);
        }
    }
}
