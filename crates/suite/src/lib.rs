//! Workloads for the reproduction: the paper's kernels, and IR models of
//! its 35-program benchmark suite.
//!
//! The paper evaluates on the Perfect Club, SPEC, and NAS benchmarks plus
//! miscellaneous programs — Fortran sources we cannot redistribute.
//! Following DESIGN.md §4, [`models`] provides one synthetic *program
//! model* per paper row, built from nest archetypes ([`archetypes`]) whose
//! mixture matches the paper's reported per-program characteristics:
//! fraction of nests originally in memory order, permutable vs
//! dependence-blocked vs complex-bounds nests, and fusion/distribution
//! opportunities. [`kernels`] holds the exactly-specified kernels of the
//! paper's figures (matrix multiply, Cholesky, ADI integration,
//! Erlebacher).

pub mod archetypes;
pub mod generator;
pub mod kernels;
pub mod models;
pub mod stencils;

pub use models::{suite, BenchmarkModel, Group, ModelSpec, NestMix};
