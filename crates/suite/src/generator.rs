//! Seeded random program generation, for fuzzing and stress benches.
//!
//! Produces valid, in-bounds programs of rectangular nests (depth 2–3,
//! with optional imperfect statements and adjacent-nest structure) whose
//! subscripts mix unit-stride, transposed, offset, and loop-invariant
//! patterns — the population the optimizer faces in practice. All
//! generation is deterministic in the seed.

use cmt_ir::affine::Affine;
use cmt_ir::build::ProgramBuilder;
use cmt_ir::expr::{BinOp, Expr};
use cmt_ir::ids::{ArrayId, VarId};
use cmt_ir::program::Program;
use cmt_obs::SplitMix64;

/// Tunables for [`generate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenConfig {
    /// Number of top-level nests.
    pub nests: usize,
    /// Number of shared arrays.
    pub arrays: usize,
    /// Maximum statements per nest.
    pub max_stmts: usize,
    /// Allow depth-3 nests.
    pub allow_depth3: bool,
    /// Allow an imperfect statement between loop levels.
    pub allow_imperfect: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            nests: 3,
            arrays: 4,
            max_stmts: 2,
            allow_depth3: true,
            allow_imperfect: true,
        }
    }
}

/// Generates a random valid program. Subscript offsets stay within ±1
/// and loops run `2 .. N−1`, so execution is in bounds for any `N ≥ 4`.
pub fn generate(seed: u64, config: &GenConfig) -> Program {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(format!("gen-{seed}"));
    let n = b.param("N");
    let arrays: Vec<ArrayId> = (0..config.arrays.max(1))
        .map(|k| b.matrix(&format!("G{k}"), n))
        .collect();

    for nest in 0..config.nests.max(1) {
        let depth3 = config.allow_depth3 && rng.gen_bool(0.3);
        let order_swap = rng.gen_bool(0.5);
        let stmts = rng.gen_range_usize(1, config.max_stmts.max(1));
        let imperfect = config.allow_imperfect && !depth3 && rng.gen_bool(0.25);

        let (outer, inner) = if order_swap {
            (format!("J{nest}"), format!("I{nest}"))
        } else {
            (format!("I{nest}"), format!("J{nest}"))
        };
        let mid = format!("K{nest}");

        // Split RNG decisions out so the closure need not capture rng.
        #[derive(Clone, Copy)]
        struct RefPlan {
            array: usize,
            pattern: u8,
            off1: i64,
            off2: i64,
        }
        let plan_ref = |rng: &mut SplitMix64| RefPlan {
            array: rng.gen_range_usize(0, arrays.len() - 1),
            pattern: rng.gen_range_i64(0, 3) as u8,
            off1: rng.gen_range_i64(-1, 1),
            off2: rng.gen_range_i64(-1, 1),
        };
        let plans: Vec<(RefPlan, RefPlan, RefPlan, BinOp)> = (0..stmts)
            .map(|_| {
                let op = match rng.gen_range_i64(0, 2) {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    _ => BinOp::Mul,
                };
                (
                    plan_ref(&mut rng),
                    plan_ref(&mut rng),
                    plan_ref(&mut rng),
                    op,
                )
            })
            .collect();
        let imperfect_plan = imperfect.then(|| plan_ref(&mut rng));

        let mk_ref = |b: &ProgramBuilder, p: RefPlan, i: VarId, j: VarId| {
            let (s1, s2) = match p.pattern {
                0 => (Affine::var(i) + p.off1, Affine::var(j) + p.off2),
                1 => (Affine::var(j) + p.off1, Affine::var(i) + p.off2),
                2 => (Affine::var(i) + p.off1, Affine::constant(2)),
                _ => (Affine::constant(2), Affine::var(j) + p.off2),
            };
            b.at_vec(arrays[p.array], vec![s1, s2])
        };
        let emit_stmts = |b: &mut ProgramBuilder, i: VarId, j: VarId| {
            for (t, la, lb, op) in &plans {
                let lhs = mk_ref(b, *t, i, j);
                let ea = Expr::load(mk_ref(b, *la, i, j));
                let eb = Expr::load(mk_ref(b, *lb, i, j));
                b.assign(lhs, Expr::Binary(*op, Box::new(ea), Box::new(eb)));
            }
        };

        b.loop_(&outer, 2, Affine::param(n) - 1, |b| {
            let i = b.var(&format!("I{nest}"));
            let j = b.var(&format!("J{nest}"));
            if let Some(p) = imperfect_plan {
                let lhs = mk_ref(b, p, i, j);
                // The imperfect statement sits above the inner loop; it
                // may only use the *outer* variable.
                let outer_var = if order_swap { j } else { i };
                let lhs = lhs.map_subscripts(|sub| {
                    // Project away the not-yet-bound variable.
                    let dead = if order_swap { i } else { j };
                    sub.substitute_var(dead, &Affine::constant(2))
                });
                b.assign(lhs, Expr::Index(outer_var));
            }
            if depth3 {
                b.loop_(&mid, 2, Affine::param(n) - 1, |b| {
                    b.loop_(&inner, 2, Affine::param(n) - 1, |b| {
                        emit_stmts(b, i, j);
                    });
                });
            } else {
                b.loop_(&inner, 2, Affine::param(n) - 1, |b| {
                    emit_stmts(b, i, j);
                });
            }
        });
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::validate::validate;
    use cmt_locality::{compound::compound, model::CostModel};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(42, &cfg);
        let b = generate(42, &cfg);
        assert_eq!(a, b);
        let c = generate(43, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_programs_validate_and_execute() {
        let cfg = GenConfig::default();
        for seed in 0..30 {
            let p = generate(seed, &cfg);
            validate(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut m = cmt_interp::Machine::new(&p, &[8]).expect("alloc");
            m.run(&p, &mut cmt_interp::NullSink)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn compound_is_safe_on_generated_programs() {
        let cfg = GenConfig::default();
        let model = CostModel::new(4);
        for seed in 0..30 {
            let orig = generate(seed, &cfg);
            let mut p = orig.clone();
            let _ = compound(&mut p, &model);
            validate(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            cmt_interp::assert_equivalent(&orig, &p, &[9]);
        }
    }

    #[test]
    fn config_knobs_are_respected() {
        let cfg = GenConfig {
            nests: 5,
            arrays: 2,
            max_stmts: 1,
            allow_depth3: false,
            allow_imperfect: false,
        };
        let p = generate(7, &cfg);
        assert_eq!(p.nests().len(), 5);
        assert_eq!(p.arrays().len(), 2);
        for nest in p.nests() {
            assert!(cmt_ir::node::Node::Loop(nest.clone()).depth() <= 2);
            assert!(cmt_ir::visit::is_perfect(nest));
        }
    }
}
