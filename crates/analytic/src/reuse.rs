//! Symbolic reuse analysis: per-RefGroup reuse-distance histograms
//! computed from the loop-nest IR alone — no trace, no simulation.
//!
//! The machinery is the paper's §3 reuse framework made quantitative.
//! For the representative reference of each [`RefGroup`], every loop
//! level is classified exactly as `RefCost` does (loop-invariant /
//! consecutive / no reuse), but instead of a single cache-line count the
//! classification drives a *new-lines decomposition*: walking the
//! nest innermost → outermost, each level either multiplies the lines a
//! deeper iteration block touches (no reuse), keeps them (invariant:
//! the block's lines are re-touched on every iteration), or scales them
//! by `stride/cls` (consecutive: a line survives `cls/stride`
//! iterations). Every re-touch is a *reuse* whose LRU stack distance is
//! the number of distinct lines the intervening iterations touch — the
//! summed one-iteration footprints of every group under the carrying
//! loop. The result is a reuse-distance histogram per group
//! ([`ReuseHistogram`]); folding a cache geometry over it
//! ([`crate::MissModel`]) yields predicted miss counts for any
//! (size, associativity, line) in one pass.
//!
//! Iteration counts are evaluated **exactly** at a concrete parameter
//! binding: outer levels with dependent (triangular) bounds are
//! enumerated numerically (with a work budget) and the innermost trip
//! is closed-form, so `blocks × avg-trip` products are exact for
//! rectangular *and* triangular nests. Past the budget the analysis
//! falls back to binding outer variables at their midpoints and flags
//! the nest [`NestReuse::exact`]` = false`.

use crate::histogram::{CrossStream, ForeignStream, ReuseHistogram, StreamBin, StreamLevel};
use cmt_dependence::analyze_nest;
use cmt_ir::affine::Env;
use cmt_ir::ids::{ArrayId, LoopId, VarId};
use cmt_ir::node::{Loop, Node};
use cmt_ir::program::Program;
use cmt_ir::stmt::{ArrayRef, Stmt};
use cmt_ir::visit::{all_loops, nest_label, stmts_with_context};
use cmt_locality::model::{ref_groups, RefGroup, RefOcc};
use std::collections::HashMap;

/// Iteration budget for exact enumeration of variable-dependent loop
/// bounds; nests that would enumerate more outer iterations than this
/// fall back to midpoint-approximated trip counts.
const ENUM_BUDGET: i64 = 1 << 22;

/// Self-reuse classification of one reference at one loop level — the
/// paper's `RefCost` trichotomy, with the stride kept for quantitative
/// use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LevelReuse {
    /// The loop variable appears in no subscript: one line serves every
    /// iteration of this level.
    Invariant,
    /// Only the first (column-major contiguous) subscript moves, by
    /// `stride` elements per iteration with `stride <` line size:
    /// `cls/stride` consecutive iterations share a line.
    Consecutive {
        /// Elements advanced per iteration of this loop.
        stride: u64,
    },
    /// Every iteration of this level touches a fresh line.
    NoReuse,
}

/// One reference group's predicted access behaviour inside a nest.
#[derive(Clone, Debug)]
pub struct GroupReuse {
    /// Name of the array the group references.
    pub array: String,
    /// Total accesses the group issues (representative plus members).
    pub accesses: f64,
    /// Predicted reuse-distance histogram (distances in cache lines).
    pub histogram: ReuseHistogram,
}

/// Reuse analysis of one top-level body node at a concrete parameter
/// binding, produced by [`nest_reuse`].
#[derive(Clone, Debug)]
pub struct NestReuse {
    /// `program/nestN:…` label, same scheme as the profiler's.
    pub label: String,
    /// Cache line size in elements the histograms were computed for
    /// (spatial reuse depends on it; capacity/associativity do not).
    pub cls: u32,
    /// Total predicted accesses of the nest.
    pub accesses: f64,
    /// Whether iteration counts were enumerated exactly (`false` once
    /// the enumeration budget forced midpoint approximation).
    pub exact: bool,
    /// Per-reference-group predictions.
    pub groups: Vec<GroupReuse>,
    /// Same-array group pairs whose interleaved walks can collide in
    /// cache sets on a direct-mapped geometry (see
    /// [`CrossStream::extra_misses`]) — a nest-level correction no
    /// per-group histogram can express.
    pub cross: Vec<CrossStream>,
}

impl NestReuse {
    /// Predicted misses of the whole nest in a fully-associative LRU
    /// cache of `capacity_lines` lines.
    pub fn misses_at(&self, capacity_lines: f64) -> f64 {
        self.groups
            .iter()
            .map(|g| g.histogram.misses_at(capacity_lines))
            .sum()
    }
}

/// Analyzes top-level body node `idx` of `program` with parameter `n`
/// bound, for a line size of `cls` elements.
///
/// Loop-free statements, zero-trip and single-iteration nests all
/// produce histograms with no reuse bins (nothing is ever re-touched at
/// a distance) rather than failing.
///
/// # Panics
///
/// Panics if `idx` is out of bounds.
pub fn nest_reuse(program: &Program, idx: usize, n: i64, cls: u32) -> NestReuse {
    let label = nest_label(program, idx);
    match &program.body()[idx] {
        Node::Stmt(s) => stmt_reuse(program, label, s, cls),
        Node::Loop(root) => loop_reuse(program, root, label, n, cls),
    }
}

/// Predicted misses per candidate-innermost loop: for every loop `l` of
/// `root`, the nest's total misses if `l` were rotated innermost
/// (remaining loops keep their relative order), in a fully-associative
/// LRU cache of `capacity_lines` lines. This is the analytic upgrade of
/// the paper's `LoopCost` column; `cmt_analytic::AnalyticCost` sorts it
/// into a memory order.
///
/// Trip counts here are per-loop averages taken from the original
/// iteration space (order-independent scalars), so candidate rotations
/// of triangular nests stay well-defined.
pub fn candidate_misses(
    program: &Program,
    root: &Loop,
    n: i64,
    cls: u32,
    capacity_lines: f64,
) -> Vec<(LoopId, f64)> {
    let nodes = [Node::Loop(root.clone())];
    let ctxs = stmts_with_context(&nodes);
    let loops = all_loops(root);
    if ctxs.is_empty() {
        return loops.iter().map(|l| (l.id(), 0.0)).collect();
    }
    let graph = analyze_nest(program, root);
    let env = program.param_env(&[n]);

    // Per-loop average trip counts from the original order: a loop's
    // enclosing chain is unique, so iters(l)/blocks(l) is well-defined.
    let mut cache: HashMap<Vec<LoopId>, (Vec<f64>, bool)> = HashMap::new();
    let mut trip_of: HashMap<LoopId, f64> = HashMap::new();
    for (stack, _) in &ctxs {
        let (counts, _) = counts_for(&mut cache, stack, &env).clone();
        for (i, l) in stack.iter().enumerate() {
            let blocks = if i == 0 { 1.0 } else { counts[i - 1] };
            let t = if blocks > 0.0 {
                counts[i] / blocks
            } else {
                0.0
            };
            trip_of.entry(l.id()).or_insert(t);
        }
    }

    let groups = merged_ref_groups(cls, &ctxs, &graph);
    let mut out = Vec::with_capacity(loops.len());
    for cand in &loops {
        let reps: Vec<RepLevels> = groups
            .iter()
            .map(|g| {
                let (stack, stmt) = &ctxs[g.representative.stmt_idx];
                let r = stmt.refs()[g.representative.ref_idx];
                // Candidate rotated innermost; others keep their order.
                let mut order: Vec<&Loop> = stack
                    .iter()
                    .copied()
                    .filter(|l| l.id() != cand.id())
                    .collect();
                if stack.iter().any(|l| l.id() == cand.id()) {
                    order.push(cand);
                }
                let mut blocks = 1.0f64;
                let levels: Vec<Lv> = order
                    .iter()
                    .map(|l| {
                        let t = trip_of.get(&l.id()).copied().unwrap_or(1.0);
                        let lv = Lv::build(program, &env, l, t, blocks, r, cls);
                        blocks *= t;
                        lv
                    })
                    .collect();
                let rep_acc = blocks;
                let member_acc = |stmt_idx: usize| -> f64 {
                    ctxs[stmt_idx]
                        .0
                        .iter()
                        .map(|l| trip_of.get(&l.id()).copied().unwrap_or(1.0))
                        .product()
                };
                build_rep(program, &ctxs, g, r, levels, rep_acc, member_acc, cls, &env)
            })
            .collect();
        let (v, at) = distances(&reps);
        let misses: f64 = reps
            .iter()
            .enumerate()
            .map(|(gi, rp)| chain_histogram(rp, gi, &v, &at).misses_at(capacity_lines))
            .sum();
        out.push((cand.id(), misses));
    }
    out
}

/// Reference groups merged across *every* candidate loop of the nest.
///
/// `ref_groups` follows the paper and only admits group-temporal reuse
/// carried by the one candidate innermost loop. The reuse engine models
/// reuse at every level, so it unions the partitions obtained with each
/// loop variable as the candidate: `A(J,I)` and `A(J,I-1)` end up in one
/// group whichever loop carries the distance-1 dependence. The merged
/// representative is the deepest-nested member (ties: first in source
/// order), matching `ref_groups`' own choice.
fn merged_ref_groups(
    cls: u32,
    ctxs: &[(Vec<&Loop>, &Stmt)],
    graph: &cmt_dependence::DependenceGraph,
) -> Vec<RefGroup> {
    let mut vars: Vec<VarId> = Vec::new();
    for (stack, _) in ctxs {
        for l in stack {
            if !vars.contains(&l.var()) {
                vars.push(l.var());
            }
        }
    }

    // Union-find over reference occurrences.
    let mut occs: Vec<RefOcc> = Vec::new();
    for (si, (_, s)) in ctxs.iter().enumerate() {
        for ri in 0..s.refs().len() {
            occs.push(RefOcc {
                stmt_idx: si,
                ref_idx: ri,
            });
        }
    }
    let index: HashMap<RefOcc, usize> = occs.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let mut parent: Vec<usize> = (0..occs.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut spatial: Vec<bool> = vec![false; occs.len()];

    let candidates: Vec<Option<VarId>> = if vars.is_empty() {
        vec![None]
    } else {
        vars.into_iter().map(Some).collect()
    };
    for cand in candidates {
        for g in ref_groups(cls, ctxs, graph, cand) {
            let Some(&first) = g.members.first().and_then(|m| index.get(m)) else {
                continue;
            };
            for m in &g.members[1..] {
                if let Some(&mi) = index.get(m) {
                    let a = find(&mut parent, first);
                    let b = find(&mut parent, mi);
                    if a != b {
                        parent[a.max(b)] = a.min(b);
                    }
                }
            }
            if g.spatial_merge {
                spatial[first] = true;
            }
        }
    }

    // Components in first-occurrence order.
    let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<RefGroup> = Vec::new();
    let mut comp_spatial: Vec<bool> = Vec::new();
    for i in 0..occs.len() {
        let r = find(&mut parent, i);
        let ci = *comp_of_root.entry(r).or_insert_with(|| {
            groups.push(RefGroup {
                members: Vec::new(),
                representative: occs[r],
                spatial_merge: false,
            });
            comp_spatial.push(false);
            groups.len() - 1
        });
        groups[ci].members.push(occs[i]);
        comp_spatial[ci] |= spatial[i];
    }
    for (g, sp) in groups.iter_mut().zip(comp_spatial) {
        g.spatial_merge = sp;
        g.representative = g
            .members
            .iter()
            .copied()
            .max_by_key(|m| (ctxs[m.stmt_idx].0.len(), std::cmp::Reverse(*m)))
            .expect("non-empty group");
    }
    groups
}

/// Per-level state of a representative reference.
#[derive(Clone, Debug)]
struct Lv {
    loop_id: LoopId,
    var: VarId,
    step: i64,
    /// Average trip count of this level.
    trip: f64,
    /// Executions of this level's header (iterations of enclosing levels).
    blocks: f64,
    kind: LevelReuse,
    /// Fraction of iterations that open a new line (0 invariant,
    /// stride/cls consecutive, 1 no-reuse).
    rho: f64,
    /// Lines one full execution of this level touches, per line the
    /// deeper levels touch.
    factor: f64,
    /// Address-space spacing (in lines) of consecutive fresh lines this
    /// level opens — the set-mapping structure the geometry fold uses
    /// for the self-interference correction.
    line_stride: u64,
    /// Exact linearized element stride per iteration (0 when the level
    /// carries no fresh-line walk or the extents are unevaluable) — the
    /// cross-group lattice correction needs element, not line,
    /// resolution.
    elem_stride: i64,
}

impl Lv {
    fn build(
        program: &Program,
        env: &Env,
        l: &Loop,
        trip: f64,
        blocks: f64,
        r: &ArrayRef,
        cls: u32,
    ) -> Lv {
        let kind = classify(r, l.var(), l.step(), cls);
        let (rho, factor) = match kind {
            LevelReuse::Invariant => (0.0, 1.0),
            LevelReuse::Consecutive { stride } => {
                let rho = (stride as f64 / f64::from(cls)).min(1.0);
                (rho, (trip * rho).max(1.0))
            }
            LevelReuse::NoReuse => (1.0, trip.max(1.0)),
        };
        let elem_stride = match kind {
            LevelReuse::NoReuse => elem_stride_of(program, r, l.var(), l.step(), env),
            _ => 0,
        };
        let line_stride = match kind {
            LevelReuse::NoReuse => {
                let elems = elem_stride.unsigned_abs();
                let cls = u64::from(cls.max(1));
                if elems > 0 && elems % cls == 0 {
                    (elems / cls).max(1)
                } else {
                    1
                }
            }
            _ => 1,
        };
        Lv {
            loop_id: l.id(),
            var: l.var(),
            step: l.step(),
            trip,
            blocks,
            kind,
            rho,
            factor,
            line_stride,
            elem_stride,
        }
    }
}

/// Linearized (column-major) subscript stride of `r` per iteration of
/// variable `v`, in elements (signed). Returns 0 for unevaluable
/// extents. The line stride derived from it feeds set aliasing, which
/// needs *exact* strides: when the line size does not divide the
/// element stride, consecutive lines drift in phase and the stream
/// spreads across sets (line stride 1, conflict-free).
fn elem_stride_of(program: &Program, r: &ArrayRef, v: VarId, step: i64, env: &Env) -> i64 {
    let dims = program.array(r.array()).dims();
    let mut mult = 1i64;
    let mut total = 0i64;
    for (d, s) in r.subscripts().iter().enumerate() {
        total = total.saturating_add(s.coeff_of_var(v).saturating_mul(mult));
        let Some(ext) = dims.get(d).and_then(|e| e.eval(env).ok()) else {
            return 0;
        };
        mult = mult.saturating_mul(ext.max(1));
    }
    total.saturating_mul(step)
}

/// A non-representative group member: its accesses, and — when its
/// subscripts are the representative's shifted by Δ iterations of some
/// level — that level and |Δ| (the reuse it carries).
#[derive(Clone, Debug)]
struct MemberInfo {
    acc: f64,
    delta_level: Option<(LoopId, f64)>,
    rep_kind_at: LevelReuse,
}

/// Everything [`chain_histogram`] needs about one group.
#[derive(Clone, Debug)]
struct RepLevels {
    array: String,
    array_lines: f64,
    rep_acc: f64,
    levels: Vec<Lv>,
    members: Vec<MemberInfo>,
}

/// `RefCost`'s classification of `r` against loop variable `v`.
fn classify(r: &ArrayRef, v: VarId, step: i64, cls: u32) -> LevelReuse {
    let subs = r.subscripts();
    if subs.iter().all(|s| !s.mentions_var(v)) {
        return LevelReuse::Invariant;
    }
    let stride = (step * subs[0].coeff_of_var(v)).unsigned_abs();
    let rest_invariant = subs[1..].iter().all(|s| !s.mentions_var(v));
    if stride > 0 && stride < u64::from(cls) && rest_invariant {
        LevelReuse::Consecutive { stride }
    } else {
        LevelReuse::NoReuse
    }
}

/// Cache lines the whole array occupies (the footprint clamp), or ∞
/// when the extents cannot be evaluated.
fn array_lines_of(program: &Program, id: ArrayId, env: &Env, cls: u32) -> f64 {
    match program.array(id).len(env) {
        Ok(len) => ((len as f64) / f64::from(cls)).ceil().max(1.0),
        Err(_) => f64::INFINITY,
    }
}

/// Matches `member` as `rep` shifted by Δ iterations of one of the
/// representative's levels (outermost match wins): returns the level
/// index and |Δ|. `None` when the refs coincide, differ non-constantly,
/// or no single level explains the shift.
fn match_member_level(rep: &ArrayRef, member: &ArrayRef, levels: &[Lv]) -> Option<(usize, f64)> {
    if rep.rank() != member.rank() {
        return None;
    }
    let mut diffs = Vec::with_capacity(rep.rank());
    for (m, r) in member.subscripts().iter().zip(rep.subscripts()) {
        let d = m.clone() - r.clone();
        if !d.is_constant() {
            return None;
        }
        diffs.push(d.constant_term());
    }
    if diffs.iter().all(|&d| d == 0) {
        return None;
    }
    for (li, lv) in levels.iter().enumerate() {
        let moves: Vec<i64> = rep
            .subscripts()
            .iter()
            .map(|s| s.coeff_of_var(lv.var) * lv.step)
            .collect();
        let Some(p0) = moves.iter().position(|&m| m != 0) else {
            continue;
        };
        if diffs[p0] % moves[p0] != 0 {
            continue;
        }
        let delta = diffs[p0] / moves[p0];
        if delta == 0 || delta.abs() > 8 {
            continue;
        }
        if diffs
            .iter()
            .zip(&moves)
            .all(|(&d, &m)| d == delta.checked_mul(m).unwrap_or(i64::MAX))
        {
            return Some((li, delta.unsigned_abs() as f64));
        }
    }
    None
}

/// Assembles a [`RepLevels`] from the classified levels plus the
/// group's member bookkeeping. `member_acc` maps a member's statement
/// index to its total access count.
#[allow(clippy::too_many_arguments)]
fn build_rep(
    program: &Program,
    ctxs: &[(Vec<&Loop>, &Stmt)],
    g: &RefGroup,
    rep_ref: &ArrayRef,
    levels: Vec<Lv>,
    rep_acc: f64,
    member_acc: impl Fn(usize) -> f64,
    cls: u32,
    env: &Env,
) -> RepLevels {
    let array_id = rep_ref.array();
    let members = g
        .members
        .iter()
        .filter(|m| **m != g.representative)
        .map(|m| {
            let mref = ctxs[m.stmt_idx].1.refs()[m.ref_idx];
            let acc = member_acc(m.stmt_idx);
            match match_member_level(rep_ref, mref, &levels) {
                Some((li, delta)) => MemberInfo {
                    acc,
                    delta_level: Some((levels[li].loop_id, delta)),
                    rep_kind_at: levels[li].kind,
                },
                None => MemberInfo {
                    acc,
                    delta_level: None,
                    rep_kind_at: LevelReuse::Invariant,
                },
            }
        })
        .collect();
    RepLevels {
        array: program.array(array_id).name().to_string(),
        array_lines: array_lines_of(program, array_id, env, cls),
        rep_acc,
        levels,
        members,
    }
}

/// The set-mapping structure of the fresh-line walk below level `l`:
/// the non-invariant deeper levels, outer → inner, as [`StreamLevel`]s.
fn stream_levels(deeper: &[Lv]) -> Vec<StreamLevel> {
    deeper
        .iter()
        .filter(|iv| iv.trip > 0.0 && !matches!(iv.kind, LevelReuse::Invariant))
        .map(|iv| StreamLevel {
            fresh: (iv.trip * iv.rho).max(1.0).min(iv.trip.max(1.0)),
            line_stride: iv.line_stride,
        })
        .collect()
}

/// One group's one-iteration footprint under one loop, with the stream
/// structure that lays it out — the per-group decomposition of the
/// reuse distance [`distances`] sums.
struct LevelStream {
    group: usize,
    lines: f64,
    inner: Vec<StreamLevel>,
}

/// One-iteration footprints summed over all groups: `V[l]` is the
/// number of distinct lines one iteration of loop `l`'s body touches —
/// the reuse distance a level-`l` re-touch observes. Groups of the
/// same array overlap in the same lines, so their contributions clamp
/// at the array's own size before arrays sum — the union bound, not
/// the per-group sum. The second map keeps the per-group decomposition
/// (footprint + stream structure) so [`chain_histogram`] can tell a
/// bin which sibling streams make up its foreign distance.
fn distances(reps: &[RepLevels]) -> (HashMap<LoopId, f64>, HashMap<LoopId, Vec<LevelStream>>) {
    let mut per: HashMap<LoopId, HashMap<&str, (f64, f64)>> = HashMap::new();
    let mut at: HashMap<LoopId, Vec<LevelStream>> = HashMap::new();
    for (gi, rp) in reps.iter().enumerate() {
        let k = rp.levels.len();
        if k == 0 {
            continue;
        }
        let mut fp = vec![1.0f64; k];
        for l in (0..k - 1).rev() {
            fp[l] = (fp[l + 1] * rp.levels[l + 1].factor).min(rp.array_lines);
        }
        for (l, lv) in rp.levels.iter().enumerate() {
            let e = per
                .entry(lv.loop_id)
                .or_default()
                .entry(rp.array.as_str())
                .or_insert((0.0, rp.array_lines));
            e.0 += fp[l];
            at.entry(lv.loop_id).or_default().push(LevelStream {
                group: gi,
                lines: fp[l],
                inner: stream_levels(&rp.levels[l + 1..]),
            });
        }
    }
    let v = per
        .into_iter()
        .map(|(loop_id, arrays)| {
            let total = arrays.values().map(|&(sum, clamp)| sum.min(clamp)).sum();
            (loop_id, total)
        })
        .collect();
    (v, at)
}

/// The new-lines decomposition: walks the representative's levels
/// innermost → outermost, converting each level's re-touches into
/// histogram bins at that level's reuse distance, and conserving
/// accesses (`cold + Σ bins + immediate hits = accesses`).
fn chain_histogram(
    rp: &RepLevels,
    gi: usize,
    v: &HashMap<LoopId, f64>,
    at: &HashMap<LoopId, Vec<LevelStream>>,
) -> ReuseHistogram {
    let k = rp.levels.len();
    let mut h = ReuseHistogram::empty();
    // Lines one execution of the innermost body first-touches.
    let mut n_new = 1.0f64;
    for l in (0..k).rev() {
        let lv = &rp.levels[l];
        if lv.trip <= 0.0 {
            continue;
        }
        let dist = v.get(&lv.loop_id).copied().unwrap_or(1.0);
        // Fresh lines one execution of this level opens per deeper-block
        // line — the same quantity as `Lv::factor` (1 invariant,
        // trip·ρ consecutive, trip no-reuse); every other iteration
        // re-touches a surviving line at this level's reuse distance.
        let fresh = (lv.trip * lv.rho).max(1.0).min(lv.trip.max(1.0));
        let count = lv.blocks * (lv.trip - fresh).max(0.0) * n_new;
        h.push(dist, count);
        if count > 0.0 {
            // Set-mapping metadata for the geometry fold's
            // self-interference check: the re-touched working set is
            // this group's own deeper footprint (`n_new` lines), laid
            // out by the deeper levels' stride structure. Sibling
            // groups' streams at the same level become the bin's
            // foreign decomposition.
            let inner = stream_levels(&rp.levels[l + 1..]);
            let foreign: Vec<ForeignStream> = at
                .get(&lv.loop_id)
                .map(|ls| {
                    ls.iter()
                        .filter(|s| s.group != gi)
                        .map(|s| ForeignStream {
                            lines: s.lines,
                            inner: s.inner.clone(),
                        })
                        .collect()
                })
                .unwrap_or_default();
            h.streams.push(StreamBin {
                distance: dist,
                count,
                own_lines: n_new,
                inner,
                foreign,
            });
        }
        n_new *= fresh;
    }
    // Conservation: reuses can overshoot when exact block counts meet
    // averaged trips (triangular fallback); rescale, never exceed the
    // access count.
    let mut reused = h.reuses();
    if reused > rp.rep_acc && reused > 0.0 {
        let scale = rp.rep_acc / reused;
        for b in &mut h.bins {
            b.1 *= scale;
        }
        for s in &mut h.streams {
            s.count *= scale;
        }
        reused = rp.rep_acc;
    }
    // First-touches beyond the array's own size are really sweeps over
    // the same lines again: reuses at the whole-array distance.
    let mut cold = rp.rep_acc - reused;
    if cold > rp.array_lines {
        h.push(rp.array_lines, cold - rp.array_lines);
        cold = rp.array_lines;
    }
    h.cold = cold;
    h.accesses = rp.rep_acc;
    // Members ride the representative's line stream. A member that is
    // the representative shifted by Δ iterations of a level where the
    // representative has *no* self-reuse re-touches lines the chain
    // never revisits — a real reuse at Δ× that level's distance. At a
    // consecutive/invariant level the chain already charges the
    // per-iteration re-touch, so the member's accesses are immediate
    // hits (they nestle next to representative accesses of the same
    // line).
    for m in &rp.members {
        h.accesses += m.acc;
        if let Some((lid, delta)) = m.delta_level {
            if matches!(m.rep_kind_at, LevelReuse::NoReuse) {
                let dist = v.get(&lid).copied().unwrap_or(1.0) * delta.max(1.0);
                h.push(dist, m.acc);
            }
        }
    }
    h.normalize();
    h
}

/// The linearized (column-major) element address of `r` with every
/// variable bound in `env`. `None` for unevaluable subscripts/extents.
fn lin_addr(program: &Program, r: &ArrayRef, env: &Env) -> Option<i64> {
    let dims = program.array(r.array()).dims();
    let mut mult = 1i64;
    let mut addr = 0i64;
    for (d, s) in r.subscripts().iter().enumerate() {
        addr = addr.saturating_add(s.eval(env).ok()?.saturating_mul(mult));
        let ext = dims.get(d)?.eval(env).ok()?;
        mult = mult.saturating_mul(ext.max(1));
    }
    Some(addr)
}

/// The exact element-level walk below a carrying level, as `(fresh
/// iterations, element stride)` pairs outer → inner: consecutive levels
/// walk line-by-line (`cls` elements apart), no-reuse levels walk at
/// their exact linearized stride. `None` when any stride is unknown —
/// the cross-group correction then stays off (conservative).
fn walk_of(deeper: &[Lv], cls: u32) -> Option<Vec<(u32, i64)>> {
    let mut w = Vec::new();
    for lv in deeper {
        if lv.trip <= 0.0 {
            continue;
        }
        match lv.kind {
            LevelReuse::Invariant => {}
            LevelReuse::Consecutive { .. } => {
                let fresh = (lv.trip * lv.rho).max(1.0).min(lv.trip.max(1.0)).round() as u32;
                w.push((fresh.max(1), i64::from(cls.max(1))));
            }
            LevelReuse::NoReuse => {
                if lv.elem_stride == 0 {
                    return None;
                }
                let fresh = lv.trip.max(1.0).round() as u32;
                w.push((fresh.max(1), lv.elem_stride));
            }
        }
    }
    if w.is_empty() {
        None
    } else {
        Some(w)
    }
}

/// The innermost loop level at which *both* groups are invariant with a
/// real re-walk (trip ≥ 2): the carrying level under which their line
/// walks interleave. Returns the level positions in each group.
fn innermost_common_invariant(a: &RepLevels, b: &RepLevels) -> Option<(usize, usize)> {
    for pi in (0..a.levels.len()).rev() {
        let la = &a.levels[pi];
        if !matches!(la.kind, LevelReuse::Invariant) || la.trip < 2.0 {
            continue;
        }
        if let Some(pj) = b.levels.iter().position(|lb| {
            lb.loop_id == la.loop_id && matches!(lb.kind, LevelReuse::Invariant) && lb.trip >= 2.0
        }) {
            return Some((pi, pj));
        }
    }
    None
}

/// The linearized base address of `r`'s walk for sample `t`: levels
/// deeper than `carry_pos` sit at their first iteration (the walk
/// enumeration covers them); the carrying level and everything outer
/// binds at its `t`-th iteration, clamped to the trip — a diagonal
/// sample of the outer iteration space, enough to see how the relative
/// offset of two walks moves across outer iterations.
fn walk_base(
    program: &Program,
    r: &ArrayRef,
    stack: &[&Loop],
    carry_pos: usize,
    env: &Env,
    t: i64,
) -> Option<i64> {
    let mut e = env.clone();
    for (d, l) in stack.iter().enumerate() {
        let lo = l.lower().eval(&e).ok()?;
        let hi = l.upper().eval(&e).ok()?;
        let trip = trip_count(lo, hi, l.step()) as i64;
        let it = if d > carry_pos {
            0
        } else {
            t.min((trip - 1).max(0))
        };
        e.bind_var(l.var(), lo + it * l.step());
    }
    lin_addr(program, r, &e)
}

/// Number of diagonal outer-iteration samples for the relative offset
/// of a cross-group walk pair.
const OFFSET_SAMPLES: i64 = 16;

/// Builds the nest-level cross-group conflict candidates: every pair of
/// same-array groups whose walks re-execute interleaved under a shared
/// invariant carrying level, with exactly-known element strides and a
/// small enough walk to enumerate. The geometry fold turns each into
/// extra direct-mapped conflict misses (see [`CrossStream`]).
fn cross_streams(
    program: &Program,
    ctxs: &[(Vec<&Loop>, &Stmt)],
    groups: &[RefGroup],
    reps: &[RepLevels],
    v: &HashMap<LoopId, f64>,
    env: &Env,
    cls: u32,
) -> Vec<CrossStream> {
    const WALK_BUDGET: f64 = 4096.0;
    let mut out = Vec::new();
    for i in 0..reps.len() {
        for j in (i + 1)..reps.len() {
            if reps[i].array != reps[j].array {
                continue;
            }
            let Some((pi, pj)) = innermost_common_invariant(&reps[i], &reps[j]) else {
                continue;
            };
            let Some(wa) = walk_of(&reps[i].levels[pi + 1..], cls) else {
                continue;
            };
            let Some(wb) = walk_of(&reps[j].levels[pj + 1..], cls) else {
                continue;
            };
            let n_a: f64 = wa.iter().map(|&(f, _)| f64::from(f)).product();
            let n_b: f64 = wb.iter().map(|&(f, _)| f64::from(f)).product();
            if n_a > WALK_BUDGET || n_b > WALK_BUDGET {
                continue;
            }
            let (lvi, lvj) = (&reps[i].levels[pi], &reps[j].levels[pj]);
            let rewalk_a = lvi.blocks * (lvi.trip - 1.0).max(0.0);
            let rewalk_b = lvj.blocks * (lvj.trip - 1.0).max(0.0);
            let rewalks = rewalk_a.min(rewalk_b);
            if rewalks <= 0.0 {
                continue;
            }
            let occ_a = groups[i].representative;
            let occ_b = groups[j].representative;
            let ra = ctxs[occ_a.stmt_idx].1.refs()[occ_a.ref_idx];
            let rb = ctxs[occ_b.stmt_idx].1.refs()[occ_b.ref_idx];
            let mut offsets = Vec::with_capacity(OFFSET_SAMPLES as usize);
            for t in 0..OFFSET_SAMPLES {
                let (Some(base_a), Some(base_b)) = (
                    walk_base(program, ra, &ctxs[occ_a.stmt_idx].0, pi, env, t),
                    walk_base(program, rb, &ctxs[occ_b.stmt_idx].0, pj, env, t),
                ) else {
                    offsets.clear();
                    break;
                };
                offsets.push(base_b - base_a);
            }
            if offsets.is_empty() {
                continue;
            }
            out.push(CrossStream {
                array: reps[i].array.clone(),
                distance: v.get(&lvi.loop_id).copied().unwrap_or(1.0),
                rewalks,
                cap: rewalk_a * n_a + rewalk_b * n_b,
                a: wa,
                b: wb,
                offsets,
            });
        }
    }
    out
}

/// Exact (budgeted) per-level iteration counts for one loop stack:
/// `counts[l]` = total executions of level `l`'s body.
fn stack_counts(stack: &[&Loop], env: &Env) -> (Vec<f64>, bool) {
    let mut counts = vec![0.0f64; stack.len()];
    let mut work_env = env.clone();
    let mut budget = ENUM_BUDGET;
    if count_rec(stack, 0, &mut work_env, 1.0, &mut counts, &mut budget) {
        return (counts, true);
    }
    let mut counts = vec![0.0f64; stack.len()];
    let mut work_env = env.clone();
    approx_rec(stack, 0, &mut work_env, 1.0, &mut counts);
    (counts, false)
}

fn counts_for<'c>(
    cache: &'c mut HashMap<Vec<LoopId>, (Vec<f64>, bool)>,
    stack: &[&Loop],
    env: &Env,
) -> &'c (Vec<f64>, bool) {
    let key: Vec<LoopId> = stack.iter().map(|l| l.id()).collect();
    cache.entry(key).or_insert_with(|| stack_counts(stack, env))
}

/// Fortran DO trip count.
fn trip_count(lo: i64, hi: i64, step: i64) -> u64 {
    if step == 0 {
        return 0;
    }
    let span = if step > 0 { hi - lo } else { lo - hi };
    if span < 0 {
        0
    } else {
        (span / step.abs() + 1) as u64
    }
}

fn count_rec(
    stack: &[&Loop],
    d: usize,
    env: &mut Env,
    mult: f64,
    counts: &mut [f64],
    budget: &mut i64,
) -> bool {
    let l = stack[d];
    let (Ok(lo), Ok(hi)) = (l.lower().eval(env), l.upper().eval(env)) else {
        return false;
    };
    let step = l.step();
    let trip = trip_count(lo, hi, step);
    counts[d] += mult * trip as f64;
    if trip == 0 || d + 1 == stack.len() {
        return true;
    }
    let needs_enum = stack[d + 1..]
        .iter()
        .any(|inner| inner.lower().mentions_var(l.var()) || inner.upper().mentions_var(l.var()));
    if !needs_enum {
        // Deeper bounds ignore this variable; one recursion with the
        // multiplier carries the whole level.
        env.bind_var(l.var(), lo);
        let ok = count_rec(stack, d + 1, env, mult * trip as f64, counts, budget);
        env.unbind_var(l.var());
        return ok;
    }
    *budget -= trip as i64;
    if *budget < 0 {
        return false;
    }
    let mut v = lo;
    for _ in 0..trip {
        env.bind_var(l.var(), v);
        let ok = count_rec(stack, d + 1, env, mult, counts, budget);
        env.unbind_var(l.var());
        if !ok {
            return false;
        }
        v += step;
    }
    true
}

/// Midpoint fallback: every variable is bound at the middle of its
/// range, making trips per-level scalars (exact for rectangular nests).
fn approx_rec(stack: &[&Loop], d: usize, env: &mut Env, mult: f64, counts: &mut [f64]) {
    let l = stack[d];
    let lo = l.lower().eval(env).unwrap_or(1);
    let hi = l.upper().eval(env).unwrap_or(0);
    let step = l.step();
    let trip = trip_count(lo, hi, step);
    counts[d] += mult * trip as f64;
    if trip == 0 || d + 1 == stack.len() {
        return;
    }
    let mid = lo + ((trip as i64 - 1) / 2) * step;
    env.bind_var(l.var(), mid);
    approx_rec(stack, d + 1, env, mult * trip as f64, counts);
    env.unbind_var(l.var());
}

/// Reuse analysis of a bare top-level statement: every distinct
/// reference costs one cold line; repeats are immediate hits. No bins.
fn stmt_reuse(program: &Program, label: String, s: &Stmt, cls: u32) -> NestReuse {
    let refs = s.refs();
    let mut groups: Vec<(&ArrayRef, f64)> = Vec::new();
    for r in &refs {
        match groups.iter_mut().find(|(q, _)| *q == *r) {
            Some((_, c)) => *c += 1.0,
            None => groups.push((r, 1.0)),
        }
    }
    let groups: Vec<GroupReuse> = groups
        .into_iter()
        .map(|(r, count)| GroupReuse {
            array: program.array(r.array()).name().to_string(),
            accesses: count,
            histogram: ReuseHistogram {
                bins: Vec::new(),
                streams: Vec::new(),
                cold: 1.0,
                accesses: count,
            },
        })
        .collect();
    NestReuse {
        label,
        cls,
        accesses: refs.len() as f64,
        exact: true,
        groups,
        cross: Vec::new(),
    }
}

fn loop_reuse(program: &Program, root: &Loop, label: String, n: i64, cls: u32) -> NestReuse {
    let nodes = [Node::Loop(root.clone())];
    let ctxs = stmts_with_context(&nodes);
    if ctxs.is_empty() {
        return NestReuse {
            label,
            cls,
            accesses: 0.0,
            exact: true,
            groups: Vec::new(),
            cross: Vec::new(),
        };
    }
    let graph = analyze_nest(program, root);
    let env = program.param_env(&[n]);

    let groups = merged_ref_groups(cls, &ctxs, &graph);

    let mut cache: HashMap<Vec<LoopId>, (Vec<f64>, bool)> = HashMap::new();
    let mut exact = true;
    let reps: Vec<RepLevels> = groups
        .iter()
        .map(|g| {
            let (stack, stmt) = &ctxs[g.representative.stmt_idx];
            let r = stmt.refs()[g.representative.ref_idx];
            let (counts, ok) = counts_for(&mut cache, stack, &env).clone();
            exact &= ok;
            let mut levels = Vec::with_capacity(stack.len());
            for (i, l) in stack.iter().enumerate() {
                let blocks = if i == 0 { 1.0 } else { counts[i - 1] };
                let trip = if blocks > 0.0 {
                    counts[i] / blocks
                } else {
                    0.0
                };
                levels.push(Lv::build(program, &env, l, trip, blocks, r, cls));
            }
            let rep_acc = counts.last().copied().unwrap_or(0.0);
            let mut member_accs: HashMap<usize, f64> = HashMap::new();
            for m in &g.members {
                if *m == g.representative {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = member_accs.entry(m.stmt_idx)
                {
                    let (mc, mok) = counts_for(&mut cache, &ctxs[m.stmt_idx].0, &env).clone();
                    exact &= mok;
                    e.insert(mc.last().copied().unwrap_or(0.0));
                }
            }
            build_rep(
                program,
                &ctxs,
                g,
                r,
                levels,
                rep_acc,
                |si| member_accs.get(&si).copied().unwrap_or(0.0),
                cls,
                &env,
            )
        })
        .collect();

    let (v, at) = distances(&reps);
    let out_groups: Vec<GroupReuse> = reps
        .iter()
        .enumerate()
        .map(|(gi, rp)| {
            let h = chain_histogram(rp, gi, &v, &at);
            GroupReuse {
                array: rp.array.clone(),
                accesses: h.accesses,
                histogram: h,
            }
        })
        .collect();
    let cross = cross_streams(program, &ctxs, &groups, &reps, &v, &env, cls);
    let accesses = out_groups.iter().map(|g| g.accesses).sum();
    NestReuse {
        label,
        cls,
        accesses,
        exact,
        groups: out_groups,
        cross,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::affine::Affine;
    use cmt_ir::build::ProgramBuilder;
    use cmt_ir::expr::Expr;

    fn matmul() -> Program {
        let mut b = ProgramBuilder::new("mm");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let bb = b.matrix("B", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                b.loop_("K", 1, n, |b| {
                    let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
                    let lhs = b.at(c, [i, j]);
                    let rhs = Expr::load(b.at(c, [i, j]))
                        + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                    b.assign(lhs, rhs);
                });
            });
        });
        b.finish()
    }

    #[test]
    fn matmul_access_counts_are_exact() {
        let p = matmul();
        let r = nest_reuse(&p, 0, 64, 4);
        // 4 refs × 64³ iterations.
        assert_eq!(r.accesses, 4.0 * 64.0 * 64.0 * 64.0);
        assert!(r.exact);
        assert_eq!(r.groups.len(), 3);
    }

    #[test]
    fn matmul_misses_match_known_behaviour() {
        // i860 geometry: 8 KB / 32 B lines → 256 lines, cls = 4.
        let p = matmul();
        let r = nest_reuse(&p, 0, 64, 4);
        let a_group = r.groups.iter().find(|g| g.array == "A").unwrap();
        // A(I,K) with K innermost: every K touches a fresh line, rows
        // reused across J (fits), so ~64 lines × 64 I-iterations miss.
        let miss = a_group.histogram.misses_at(256.0);
        assert!(
            (miss - 4096.0).abs() / 4096.0 < 0.1,
            "A misses = {miss}, want ≈ 4096"
        );
        // In a huge cache only the footprint misses.
        let cold = a_group.histogram.misses_at(1e9);
        assert!(
            (cold - 1024.0).abs() / 1024.0 < 0.1,
            "A cold = {cold}, want ≈ 1024"
        );
    }

    #[test]
    fn zero_trip_nest_is_empty() {
        let mut b = ProgramBuilder::new("zero");
        let n = b.param("N");
        let a = b.matrix("A", n);
        b.loop_("I", 5, 4, |b| {
            b.loop_("J", 1, n, |b| {
                let (i, j) = (b.var("I"), b.var("J"));
                let lhs = b.at(a, [i, j]);
                b.assign(lhs, Expr::Const(0.0));
            });
        });
        let p = b.finish();
        let r = nest_reuse(&p, 0, 16, 4);
        assert_eq!(r.accesses, 0.0);
        for g in &r.groups {
            assert!(g.histogram.bins.is_empty(), "{:?}", g.histogram);
            assert_eq!(g.histogram.misses_at(1.0), 0.0);
        }
    }

    #[test]
    fn single_iteration_nest_has_no_reuse_bins() {
        let mut b = ProgramBuilder::new("one");
        let n = b.param("N");
        let a = b.matrix("A", n);
        b.loop_("I", 3, 3, |b| {
            let i = b.var("I");
            let lhs = b.at(a, [i, i]);
            b.assign(lhs, Expr::Const(1.0));
        });
        let p = b.finish();
        let r = nest_reuse(&p, 0, 16, 4);
        assert_eq!(r.accesses, 1.0);
        for g in &r.groups {
            assert!(g.histogram.bins.is_empty());
            assert_eq!(g.histogram.cold, 1.0);
        }
    }

    #[test]
    fn triangular_counts_are_exact() {
        // DO I = 1, N; DO J = 1, I: N(N+1)/2 inner iterations.
        let mut b = ProgramBuilder::new("tri");
        let n = b.param("N");
        let a = b.matrix("A", n);
        b.loop_("I", 1, n, |b| {
            let i = b.var("I");
            b.loop_("J", 1, i, |b| {
                let j = b.var("J");
                let lhs = b.at(a, [j, i]);
                b.assign(lhs, Expr::Const(0.0));
            });
        });
        let p = b.finish();
        let r = nest_reuse(&p, 0, 20, 4);
        assert!(r.exact);
        assert_eq!(r.accesses, (20.0 * 21.0) / 2.0);
    }

    #[test]
    fn offset_member_carries_outer_reuse() {
        // A(J,I) = A(J,I-1) with I outermost: the member re-reads the
        // previous I-iteration's column — distance ≈ one I-iteration
        // footprint, a real miss in a small cache.
        let mut b = ProgramBuilder::new("off");
        let n = b.param("N");
        let a = b.matrix("A", n);
        b.loop_("I", 2, n, |b| {
            b.loop_("J", 1, n, |b| {
                let (i, j) = (b.var("I"), b.var("J"));
                let lhs = b.at(a, [j, i]);
                let rhs = Expr::load(b.at_vec(a, vec![Affine::var(j), Affine::var(i) - 1]));
                b.assign(lhs, rhs);
            });
        });
        let p = b.finish();
        let r = nest_reuse(&p, 0, 64, 4);
        let g = &r.groups[0];
        // Member accesses (63×64) sit at a distance ≈ 2 columns (~32
        // lines): hits in a 256-line cache, misses in an 8-line cache.
        let small = g.histogram.misses_at(8.0);
        let large = g.histogram.misses_at(256.0);
        assert!(
            small > large + 3000.0,
            "member reuse must miss when the cache is tiny: small={small} large={large}"
        );
    }

    #[test]
    fn cross_group_lattice_conflicts_are_detected() {
        // Two same-array walks interleaved under the K-invariant level:
        // the write B(L,L,L) strides 4161 elements per L, the read
        // B(L-1,L-1,J) strides 65 — congruent modulo the 8192-element
        // set period of a 4096-set × 2-element direct-mapped geometry,
        // so ~half the walk positions ping-pong in shared sets.
        let mut b = ProgramBuilder::new("lat");
        let n = b.param("N");
        let arr = b.array(
            "B",
            vec![
                cmt_ir::array::Extent::param(n),
                cmt_ir::array::Extent::param(n),
                cmt_ir::array::Extent::param(n),
            ],
        );
        b.loop_("I", 2, n, |b| {
            b.loop_("J", 1, n, |b| {
                b.loop_("K", 1, Affine::param(n) - 1, |b| {
                    b.loop_("L", 2, n, |b| {
                        let (l, j) = (b.var("L"), b.var("J"));
                        let lhs = b.at(arr, [Affine::var(l), Affine::var(l), Affine::var(l)]);
                        let rhs = b.at(
                            arr,
                            [Affine::var(l) - 1, Affine::var(l) - 1, Affine::var(j)],
                        );
                        b.assign(lhs, Expr::load(rhs));
                    });
                });
            });
        });
        let p = b.finish();
        let r = nest_reuse(&p, 0, 64, 2);
        assert!(!r.cross.is_empty(), "expected a cross-group candidate");
        let cs = &r.cross[0];
        let extra = cs.extra_misses(4096, 1, 2);
        assert!(extra > 1e7, "lattice extra misses expected: {extra}");
        // Two ways absorb a depth-2 collision.
        assert_eq!(cs.extra_misses(2048, 2, 2), 0.0);
    }

    #[test]
    fn candidate_misses_prefers_streaming_inner_loop() {
        // Strided copy: J innermost streams (cheap), I innermost jumps.
        let mut b = ProgramBuilder::new("copy");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                let (i, j) = (b.var("I"), b.var("J"));
                let lhs = b.at(c, [j, i]);
                let rhs = Expr::load(b.at(a, [j, i]));
                b.assign(lhs, rhs);
            });
        });
        let p = b.finish();
        let root = p.nests()[0];
        // 32 lines: big enough for streaming, too small to hold a whole
        // 64-line sweep (at 256 lines both orders' working sets fit and
        // a fully-associative model correctly calls them equal).
        let mm = candidate_misses(&p, root, 64, 4, 32.0);
        assert_eq!(mm.len(), 2);
        // With J innermost (first subscript J strides by 1) misses are
        // far fewer than with I innermost (stride N).
        let by_var: HashMap<LoopId, f64> = mm.into_iter().collect();
        let i_id = root.id();
        let j_id = root.only_loop_child().unwrap().id();
        assert!(
            by_var[&i_id] > 2.0 * by_var[&j_id],
            "I-innermost {} vs J-innermost {}",
            by_var[&i_id],
            by_var[&j_id]
        );
    }
}
