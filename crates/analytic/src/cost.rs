//! `AnalyticCost`: ranking loops by predicted misses instead of the
//! paper's coarse `RefCost` trichotomy.
//!
//! The paper's `LoopCost` charges each reference group `1`,
//! `trip/(cls/stride)`, or `trip` lines per candidate innermost loop —
//! a three-way classification that cannot see capacity effects or
//! cross-group interference. [`AnalyticCost`] instead asks the reuse
//! engine for the nest's *predicted miss count* with each loop rotated
//! innermost ([`candidate_misses`]) and sorts:
//! most misses outermost, fewest innermost. Plugged into the compound
//! driver through `cmt_locality::RankOracle` (the `CMT_COST=analytic`
//! switch in `cmt-bench`), every legality check stays exactly as before —
//! only the *desired* order changes.

use crate::reuse::candidate_misses;
use cmt_cache::CacheConfig;
use cmt_ir::ids::LoopId;
use cmt_ir::node::Loop;
use cmt_ir::program::Program;
use cmt_locality::RankOracle;

/// A [`RankOracle`] ordering loops by predicted miss counts.
///
/// ```
/// use cmt_analytic::AnalyticCost;
/// use cmt_cache::CacheConfig;
/// use cmt_ir::build::ProgramBuilder;
/// use cmt_ir::expr::Expr;
/// use cmt_locality::RankOracle;
///
/// // Row-major traversal of a column-major array: I should be
/// // innermost (unit stride), so the ranking ends with I's loop.
/// let mut b = ProgramBuilder::new("copy");
/// let n = b.param("N");
/// let a = b.matrix("A", n);
/// b.loop_("I", 1, n, |b| {
///     b.loop_("J", 1, n, |b| {
///         let (i, j) = (b.var("I"), b.var("J"));
///         let lhs = b.at(a, [i, j]);
///         b.assign(lhs, Expr::load(b.at(a, [i, j])) + Expr::Const(1.0));
///     });
/// });
/// let p = b.finish();
/// let root = p.nests()[0];
///
/// let oracle = AnalyticCost::new(CacheConfig::i860(), 64);
/// let order = oracle.rank(&p, root);
/// assert_eq!(order.len(), 2);
/// assert_eq!(*order.last().unwrap(), root.id()); // I innermost
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AnalyticCost {
    config: CacheConfig,
    n: i64,
}

impl AnalyticCost {
    /// An oracle predicting for `config` at parameter binding `n`.
    pub fn new(config: CacheConfig, n: i64) -> AnalyticCost {
        AnalyticCost { config, n }
    }

    /// The geometry predictions are made for.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The parameter binding used for trip counts.
    pub fn n(&self) -> i64 {
        self.n
    }
}

impl AnalyticCost {
    /// Predicted misses per candidate innermost loop, summed down a
    /// capacity ladder (cap, cap/8, …, 1): the full capacity captures
    /// which working sets fit, the small rungs keep streaming quality
    /// visible when every candidate's working set fits the top rung (a
    /// fully-associative model then correctly — but unhelpfully — calls
    /// the orders equal). This is both the ranking key and the
    /// per-candidate cost reported in decision-provenance records.
    fn ladder_scores(&self, program: &Program, root: &Loop) -> Vec<(LoopId, f64)> {
        let cls = self.config.cls_elements();
        let cap = (self.config.size() / self.config.line()) as f64;
        let mut total: Vec<(LoopId, f64)> = Vec::new();
        let mut rung = cap;
        loop {
            for (i, (id, m)) in candidate_misses(program, root, self.n, cls, rung)
                .into_iter()
                .enumerate()
            {
                match total.get_mut(i) {
                    Some(t) => {
                        debug_assert_eq!(t.0, id);
                        t.1 += m;
                    }
                    None => total.push((id, m)),
                }
            }
            if rung <= 1.0 {
                break;
            }
            rung /= 8.0;
        }
        total
    }
}

impl RankOracle for AnalyticCost {
    fn rank(&self, program: &Program, root: &Loop) -> Vec<LoopId> {
        let mut total = self.ladder_scores(program, root);
        // Most misses-if-innermost goes outermost; stable sort keeps
        // ties in original nesting order, like the paper's ranking.
        total.sort_by(|a, b| b.1.total_cmp(&a.1));
        total.into_iter().map(|(id, _)| id).collect()
    }

    fn name(&self) -> &'static str {
        "analytic"
    }

    fn scores(&self, program: &Program, root: &Loop) -> Vec<(LoopId, f64)> {
        self.ladder_scores(program, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::build::ProgramBuilder;
    use cmt_ir::expr::Expr;
    use cmt_ir::visit::perfect_chain;
    use cmt_locality::{compound_oracle, CompoundOptions, CostModel, NullProvenance};
    use cmt_obs::NullObs;

    #[test]
    fn matmul_ranks_i_innermost_last() {
        // C(I,J) += A(I,K) * B(K,J): I carries unit stride on all three
        // arrays, so every sensible model wants I innermost.
        let mut b = ProgramBuilder::new("mm");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let bb = b.matrix("B", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                b.loop_("K", 1, n, |b| {
                    let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
                    let lhs = b.at(c, [i, j]);
                    let rhs = Expr::load(b.at(c, [i, j]))
                        + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                    b.assign(lhs, rhs);
                });
            });
        });
        let p = b.finish();
        let root = p.nests()[0];
        let oracle = AnalyticCost::new(CacheConfig::i860(), 64);
        let order = oracle.rank(&p, root);
        assert_eq!(order.len(), 3);
        assert_eq!(*order.last().unwrap(), root.id(), "I must rank innermost");
    }

    #[test]
    fn compound_with_analytic_oracle_reaches_ji() {
        // The strided copy: both oracles agree the J loop goes
        // outermost, and the driver's legality machinery is unchanged.
        let mut b = ProgramBuilder::new("copy");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                let (i, j) = (b.var("I"), b.var("J"));
                let lhs = b.at(c, [i, j]);
                b.assign(lhs, Expr::load(b.at(a, [i, j])));
            });
        });
        let mut p = b.finish();
        let oracle = AnalyticCost::new(CacheConfig::i860(), 64);
        let model = CostModel::new(CacheConfig::i860().cls_elements());
        let _ = compound_oracle(
            &mut p,
            &model,
            &CompoundOptions::default(),
            &mut NullObs,
            &mut NullProvenance,
            &oracle,
        );
        let names: Vec<&str> = perfect_chain(p.nests()[0])
            .iter()
            .map(|l| p.var_name(l.var()))
            .collect();
        assert_eq!(names, vec!["J", "I"]);
        cmt_ir::validate::validate(&p).unwrap();
    }
}
