//! Reuse-distance histograms with fractional bins.
//!
//! The analytic engine predicts, for each reference group, how many
//! accesses reuse a cache line at which *reuse distance* (the number of
//! distinct lines touched since the previous access to the same line).
//! Under LRU, an access hits in a cache of `C` lines iff its distance is
//! `< C`, so one histogram answers every capacity at once. Distances and
//! counts are `f64`: the analysis works with average trip counts and
//! fractional spatial-reuse ratios, and only the final fold rounds.

/// One level of the line stream generating a reuse: how many fresh
/// lines it opens per iteration of the level above, and how far apart
/// (in lines) consecutive fresh lines land in the address space. The
/// spacing is what decides, per geometry, how many cache *sets* the
/// stream spreads over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamLevel {
    /// Fresh lines one full execution of this level opens.
    pub fresh: f64,
    /// Address-space spacing of consecutive fresh lines, in lines
    /// (`1` for a contiguous walk).
    pub line_stride: u64,
}

/// One *sibling* group's stream between a bin's reuses: how many lines
/// it interposes and how they spread over sets. Lets the geometry fold
/// distinguish foreign pressure concentrated in a few sets from pressure
/// spread uniformly (see [`StreamBin::cliff_survivors`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ForeignStream {
    /// Lines this sibling stream touches between the reuses.
    pub lines: f64,
    /// The sibling stream's per-level structure, outer → inner.
    pub inner: Vec<StreamLevel>,
}

/// Set-mapping metadata for one histogram bin: the re-touched working
/// set's own size, plus the per-level structure of the stream that
/// generated it. Config-independent — the geometry fold turns the
/// strides into a distinct-set estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamBin {
    /// Reuse distance of the bin this describes (same value as the
    /// matching entry of [`ReuseHistogram::bins`]).
    pub distance: f64,
    /// Reuses covered (same count as the matching bin).
    pub count: f64,
    /// Distinct lines of *this group's own* stream between the reuses —
    /// the working set that must survive in cache.
    pub own_lines: f64,
    /// Stream structure below the reuse level, outer → inner.
    pub inner: Vec<StreamLevel>,
    /// Known structure of the sibling streams that make up the foreign
    /// part of `distance` (may be empty: the fold then assumes the
    /// foreign lines spread uniformly over the sets).
    pub foreign: Vec<ForeignStream>,
}

/// Estimated distinct cache sets a stream with per-level structure
/// `inner` spreads over in a cache of `sets` sets: per level, a stride
/// of `s` lines cycles through `sets / gcd(s, sets)` distinct sets, so
/// the level contributes `min(fresh, that period)`; levels multiply (an
/// upper bound — aliasing *between* levels only shrinks it further,
/// which errs toward predicting hits).
pub fn sets_spanned(inner: &[StreamLevel], sets: u64) -> f64 {
    let sets = sets.max(1);
    let mut touched = 1.0f64;
    for lv in inner {
        let period = (sets / gcd(lv.line_stride.max(1), sets)) as f64;
        touched *= lv.fresh.max(1.0).min(period.max(1.0));
    }
    touched.min(sets as f64)
}

impl StreamBin {
    /// Estimated distinct cache sets the stream's `own_lines` spread
    /// over in a cache of `sets` sets (see [`sets_spanned`]).
    pub fn sets_touched(&self, sets: u64) -> f64 {
        sets_spanned(&self.inner, sets)
    }

    /// Whether the re-touched working set self-interferes in a cache of
    /// `sets` sets with associativity `assoc`: the stream's lines land
    /// in too few sets to all survive, so the reuses miss even though
    /// the capacity would hold them.
    pub fn conflicts(&self, sets: u64, assoc: u32) -> bool {
        self.own_lines > f64::from(assoc.max(1)) * self.sets_touched(sets)
    }

    /// The fraction of this bin's reuses that *survive* in a cache of
    /// `sets × assoc` lines even though the scalar reuse distance says
    /// they should all miss — the symmetric correction to
    /// [`StreamBin::conflicts`]. A fully-associative LRU cache has a
    /// cliff at capacity: a cyclic working set one line over thrashes
    /// completely. A set-mapped cache does not — eviction is by set, so
    /// the stream survives whenever its per-set occupancy plus the
    /// (assumed uniformly spread) foreign intervening lines still fit
    /// the ways:
    ///
    /// ```text
    /// overflow  = own/sets_touched + foreign/sets − assoc
    /// survivors = 1 − clamp(overflow / (own/sets_touched), 0, 1)
    /// ```
    ///
    /// Zero when the stream self-conflicts, when `own + foreign`
    /// genuinely exceeds the geometry, or when the distance is within
    /// capacity (nothing to rescue).
    ///
    /// When `foreign` records sibling streams whose own set span is
    /// *narrow* (less than half the sets), the uniform assumption is
    /// refined: a stream of `L` lines crammed into `f` sets pressures
    /// only the fraction `f / sets` of the reused working set — but
    /// pressures it at `L / f` lines per set. The kill probability is
    /// evaluated per concentrated sibling on top of the uniform residual,
    /// which reduces to the formula above when no sibling is narrow.
    pub fn cliff_survivors(&self, sets: u64, assoc: u32) -> f64 {
        let assoc_f = f64::from(assoc.max(1));
        let sets_f = sets.max(1) as f64;
        if self.distance <= sets_f * assoc_f || self.conflicts(sets, assoc) {
            return 0.0;
        }
        let own_per_set = self.own_lines.max(1.0) / self.sets_touched(sets).max(1.0);
        let mut uniform = (self.distance - self.own_lines).max(0.0);
        // Siblings with a known narrow set span leave the uniform pool
        // and are charged only against the sets they actually cover.
        let mut concentrated: Vec<(f64, f64)> = Vec::new();
        for f in &self.foreign {
            let lines = f.lines.min(uniform);
            if lines <= 0.0 {
                continue;
            }
            let span = sets_spanned(&f.inner, sets);
            if span < 0.5 * sets_f {
                concentrated.push((lines, span.max(1.0)));
                uniform -= lines;
            }
        }
        let base_per_set = own_per_set + uniform / sets_f;
        let base_kill = ((base_per_set - assoc_f).max(0.0) / own_per_set).min(1.0);
        let mut kill = base_kill;
        for (lines, span) in concentrated {
            let frac = (span / sets_f).min(1.0);
            let per_set = base_per_set + lines / span;
            let k = ((per_set - assoc_f).max(0.0) / own_per_set).min(1.0);
            kill += frac * (k - base_kill).max(0.0);
        }
        1.0 - kill.min(1.0)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// A reuse-distance histogram (distances measured in cache lines).
///
/// Invariant: `cold + Σ bins ≤ accesses`. The remainder are *immediate*
/// reuses — accesses at near-zero distance (same line, same or adjacent
/// iteration) that hit in any cache — which are not materialized as bins.
///
/// ```
/// use cmt_analytic::ReuseHistogram;
///
/// let mut h = ReuseHistogram::empty();
/// h.accesses = 100.0;
/// h.cold = 10.0;
/// h.push(4.0, 50.0); // 50 reuses at distance 4
/// h.push(512.0, 20.0); // 20 reuses at distance 512
/// // A 256-line cache captures the distance-4 reuses but not the
/// // distance-512 ones; cold misses always miss.
/// assert_eq!(h.misses_at(256.0), 30.0);
/// // A large enough cache leaves only the cold misses.
/// assert_eq!(h.misses_at(1024.0), 10.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReuseHistogram {
    /// `(distance, accesses)` pairs, ascending by distance after
    /// [`ReuseHistogram::normalize`].
    pub bins: Vec<(f64, f64)>,
    /// Set-mapping metadata for the bins whose stream structure is
    /// known (a subset of `bins`; see [`StreamBin`]). Consumed by
    /// [`ReuseHistogram::misses_in`] for the self-interference
    /// correction; [`ReuseHistogram::normalize`] leaves it untouched.
    pub streams: Vec<StreamBin>,
    /// First-touch accesses (reuse distance ∞ — they miss at any size).
    pub cold: f64,
    /// Total accesses, including the immediate hits not listed in `bins`.
    pub accesses: f64,
}

impl ReuseHistogram {
    /// An empty histogram: no accesses, no bins.
    pub fn empty() -> ReuseHistogram {
        ReuseHistogram::default()
    }

    /// Records `count` reuses at `distance` lines. Zero or negative
    /// counts are dropped.
    pub fn push(&mut self, distance: f64, count: f64) {
        if count > 0.0 {
            self.bins.push((distance, count));
        }
    }

    /// Sorts bins by ascending distance and merges equal distances.
    pub fn normalize(&mut self) {
        self.bins
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(self.bins.len());
        for &(d, c) in &self.bins {
            match merged.last_mut() {
                Some((pd, pc)) if *pd == d => *pc += c,
                _ => merged.push((d, c)),
            }
        }
        self.bins = merged;
    }

    /// Total reuses recorded in bins (excludes cold and immediate hits).
    pub fn reuses(&self) -> f64 {
        self.bins.iter().map(|&(_, c)| c).sum()
    }

    /// Predicted misses for a fully-associative LRU cache of
    /// `capacity_lines` lines: cold misses plus every reuse at distance
    /// `> capacity_lines`. (Distances here count the lines one
    /// intervening iteration block touches *including* the reused line
    /// itself, so a reuse survives exactly when the cache holds that
    /// whole footprint.)
    pub fn misses_at(&self, capacity_lines: f64) -> f64 {
        self.cold
            + self
                .bins
                .iter()
                .filter(|&&(d, _)| d > capacity_lines)
                .map(|&(_, c)| c)
                .sum::<f64>()
    }

    /// Predicted misses for a set-associative LRU cache of `sets` sets
    /// with `assoc` ways (capacity `sets × assoc` lines): the
    /// fully-associative misses of [`ReuseHistogram::misses_at`],
    /// corrected in both directions by the [`StreamBin`] set-mapping
    /// metadata —
    ///
    /// * **plus** every capacity-hit reuse whose re-touched working set
    ///   self-interferes: its lines land in too few sets to survive
    ///   (see [`StreamBin::conflicts`]);
    /// * **minus** the capacity-miss reuses that survive the LRU cliff:
    ///   the stream's lines spread cleanly over the sets and the foreign
    ///   intervening lines leave enough ways free (see
    ///   [`StreamBin::cliff_survivors`]).
    ///
    /// Bins without stream metadata keep the fully-associative answer.
    pub fn misses_in(&self, sets: u64, assoc: u32) -> f64 {
        let p = self.misses_in_parts(sets, assoc);
        (p.baseline + p.conflict - p.rescued).max(self.cold)
    }

    /// The signed decomposition behind [`ReuseHistogram::misses_in`]:
    /// the fully-associative baseline, the set-conflict
    /// self-interference surcharge, the LRU-cliff rescue discount, and
    /// the cold-floor clamp residual. The parts sum exactly (same
    /// operation order) to the `misses_in` answer:
    /// `baseline + conflict − rescued + clamped`.
    pub fn misses_in_parts(&self, sets: u64, assoc: u32) -> MissParts {
        let capacity_lines = (sets * u64::from(assoc.max(1))) as f64;
        let conflict: f64 = self
            .streams
            .iter()
            .filter(|s| s.distance <= capacity_lines && s.conflicts(sets, assoc))
            .map(|s| s.count)
            .sum();
        let rescued: f64 = self
            .streams
            .iter()
            .map(|s| s.count * s.cliff_survivors(sets, assoc))
            .sum();
        let baseline = self.misses_at(capacity_lines);
        let raw = baseline + conflict - rescued;
        MissParts {
            baseline,
            conflict,
            rescued,
            clamped: raw.max(self.cold) - raw,
        }
    }

    /// Accumulates `other` into `self` (bin-wise; callers re-normalize).
    pub fn merge(&mut self, other: &ReuseHistogram) {
        self.cold += other.cold;
        self.accesses += other.accesses;
        self.bins.extend_from_slice(&other.bins);
        self.streams.extend_from_slice(&other.streams);
    }
}

/// Per-correction decomposition of one histogram's set-associative miss
/// prediction (see [`ReuseHistogram::misses_in_parts`]). All four terms
/// are non-negative; `rescued` enters the total with a minus sign.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MissParts {
    /// Fully-associative LRU misses at capacity (cold included).
    pub baseline: f64,
    /// Set-conflict self-interference surcharge: capacity-hit reuses
    /// whose stream maps into too few sets.
    pub conflict: f64,
    /// LRU-cliff rescue discount: capacity-miss reuses that survive
    /// because eviction is per set.
    pub rescued: f64,
    /// Cold-floor clamp residual — zero unless the corrections drove
    /// the raw total below the cold-miss floor.
    pub clamped: f64,
}

/// A pair of same-array reference groups whose line walks interleave
/// under a shared carrying loop — the setup for *cross-group* set
/// conflicts on a direct-mapped cache. Two walks whose element strides
/// land on the same set lattice ping-pong in the shared sets on every
/// re-execution, converting capacity hits into conflict misses that no
/// per-group histogram can see.
///
/// The struct is config-independent: it records the exact element-level
/// walk structure of both streams plus sampled relative base offsets;
/// [`CrossStream::extra_misses`] folds a concrete geometry by
/// enumerating both lattices modulo the set period and counting sets
/// where distinct lines of the two walks collide.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossStream {
    /// Name of the array both groups reference (the extra misses are
    /// attributed to it).
    pub array: String,
    /// Reuse distance (lines) of the interleaved walks' re-touch bins:
    /// when it exceeds capacity the walks already miss and no correction
    /// applies.
    pub distance: f64,
    /// Number of times the interleaved walks re-execute (each
    /// re-execution pays the collision misses once per colliding set).
    pub rewalks: f64,
    /// Upper bound on the extra misses (the reuses available to
    /// convert).
    pub cap: f64,
    /// First walk: `(fresh iterations, element stride)` per level,
    /// outer → inner.
    pub a: Vec<(u32, i64)>,
    /// Second walk, same encoding.
    pub b: Vec<(u32, i64)>,
    /// Sampled base offsets of walk `b` relative to walk `a`, in
    /// elements (the offset varies with outer-loop bindings; collisions
    /// are averaged over the samples).
    pub offsets: Vec<i64>,
}

/// Enumerates the element offsets a walk touches: the sum over levels of
/// `k · stride` for every iteration tuple. Returns an empty vector when
/// the walk is too large to enumerate (no correction — conservative).
fn walk_points(levels: &[(u32, i64)]) -> Vec<i64> {
    let mut pts = vec![0i64];
    for &(fresh, step) in levels {
        let mut next = Vec::with_capacity(pts.len() * fresh.max(1) as usize);
        for &p in &pts {
            for k in 0..i64::from(fresh.max(1)) {
                next.push(p.saturating_add(k.saturating_mul(step)));
            }
        }
        pts = next;
        if pts.len() > 8192 {
            return Vec::new();
        }
    }
    pts
}

impl CrossStream {
    /// Extra conflict misses this pair contributes in a cache of `sets`
    /// sets, associativity `assoc`, and `cls` elements per line.
    ///
    /// Direct-mapped only (`assoc == 1`): with two or more ways a
    /// depth-2 collision is absorbed by LRU within the set. Zero when
    /// the walks' reuse distance already exceeds capacity (they miss
    /// regardless), or when either walk was too large to enumerate.
    ///
    /// Per sampled offset, both walks' points map to `(set, line)`
    /// pairs; a set holding `x` distinct lines of one walk and `y` of
    /// the other — minus the lines they genuinely share — sustains
    /// `min(x, y) − shared` ping-pong pairs, each worth two misses per
    /// re-execution.
    pub fn extra_misses(&self, sets: u64, assoc: u32, cls: u32) -> f64 {
        if assoc != 1 || self.offsets.is_empty() {
            return 0.0;
        }
        let sets_f = sets.max(1) as f64;
        if self.distance > sets_f * f64::from(assoc) {
            return 0.0;
        }
        let cls_i = i64::from(cls.max(1));
        let span = (sets.max(1) as i64).saturating_mul(cls_i);
        let a_pts = walk_points(&self.a);
        let b_pts = walk_points(&self.b);
        if a_pts.is_empty() || b_pts.is_empty() {
            return 0.0;
        }
        use std::collections::{HashMap, HashSet};
        let mut total = 0.0f64;
        for &c in &self.offsets {
            let mut by_set: HashMap<i64, (HashSet<i64>, HashSet<i64>)> = HashMap::new();
            for &p in &a_pts {
                let e = by_set.entry(p.rem_euclid(span) / cls_i).or_default();
                e.0.insert(p.div_euclid(cls_i));
            }
            for &p in &b_pts {
                let q = p.saturating_add(c);
                let e = by_set.entry(q.rem_euclid(span) / cls_i).or_default();
                e.1.insert(q.div_euclid(cls_i));
            }
            let mut collisions = 0usize;
            for (la, lb) in by_set.values() {
                let shared = la.intersection(lb).count();
                collisions += la.len().min(lb.len()).saturating_sub(shared);
            }
            total += collisions as f64;
        }
        let avg = total / self.offsets.len() as f64;
        (2.0 * avg * self.rewalks).min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_misses() {
        let h = ReuseHistogram::empty();
        assert_eq!(h.misses_at(1.0), 0.0);
        assert_eq!(h.reuses(), 0.0);
        assert!(h.bins.is_empty());
    }

    #[test]
    fn normalize_sorts_and_merges() {
        let mut h = ReuseHistogram::empty();
        h.push(8.0, 1.0);
        h.push(2.0, 3.0);
        h.push(8.0, 2.0);
        h.push(2.0, -1.0); // dropped
        h.normalize();
        assert_eq!(h.bins, vec![(2.0, 3.0), (8.0, 3.0)]);
    }

    #[test]
    fn misses_at_is_monotone_in_capacity() {
        let mut h = ReuseHistogram::empty();
        h.accesses = 10.0;
        h.cold = 1.0;
        h.push(4.0, 4.0);
        h.push(100.0, 5.0);
        let caps = [1.0, 4.0, 5.0, 100.0, 101.0];
        let misses: Vec<f64> = caps.iter().map(|&c| h.misses_at(c)).collect();
        assert_eq!(misses, vec![10.0, 6.0, 6.0, 1.0, 1.0]);
    }

    #[test]
    fn cliff_survivors_rescues_self_fitting_stream() {
        // A 4096-line stream spread bijectively over 4096 direct-mapped
        // sets, reused at distance 4098 (2 foreign lines between): the
        // fully-associative model thrashes, the set-mapped cache keeps
        // essentially everything.
        let s = StreamBin {
            distance: 4098.0,
            count: 1000.0,
            own_lines: 4096.0,
            inner: vec![
                StreamLevel {
                    fresh: 64.0,
                    line_stride: 1,
                },
                StreamLevel {
                    fresh: 64.0,
                    line_stride: 32,
                },
            ],
            foreign: Vec::new(),
        };
        let surv = s.cliff_survivors(4096, 1);
        assert!(surv > 0.999, "survivors {surv}");
        // With the same stream crammed into an 8× smaller cache the
        // stream self-conflicts — no rescue.
        assert_eq!(s.cliff_survivors(512, 1), 0.0);
        // Within capacity there is nothing to rescue.
        assert_eq!(s.cliff_survivors(8192, 1), 0.0);
    }

    #[test]
    fn cliff_survivors_keeps_foreign_dominated_bins_missing() {
        // Distance dominated by foreign lines (own working set is a
        // sliver): the fully-associative answer stands.
        let s = StreamBin {
            distance: 8192.0,
            count: 100.0,
            own_lines: 64.0,
            inner: vec![StreamLevel {
                fresh: 64.0,
                line_stride: 1,
            }],
            foreign: Vec::new(),
        };
        assert_eq!(s.cliff_survivors(4096, 1), 0.0);
    }

    #[test]
    fn cliff_survivors_discounts_concentrated_foreign_pressure() {
        // Own stream: 4096 lines spread over all 4096 sets, one per set.
        // Foreign: 4096 lines — uniformly spread they fill every set and
        // kill the rescue; crammed into 128 sets they only kill the
        // 128/4096 fraction of the reused sets they actually pressure.
        let uniform = StreamBin {
            distance: 8200.0,
            count: 1000.0,
            own_lines: 4096.0,
            inner: vec![
                StreamLevel {
                    fresh: 64.0,
                    line_stride: 32,
                },
                StreamLevel {
                    fresh: 64.0,
                    line_stride: 1,
                },
            ],
            foreign: Vec::new(),
        };
        assert_eq!(uniform.cliff_survivors(4096, 1), 0.0);
        let mut concentrated = uniform.clone();
        concentrated.foreign = vec![ForeignStream {
            lines: 4096.0,
            inner: vec![
                StreamLevel {
                    fresh: 64.0,
                    line_stride: 2048,
                },
                StreamLevel {
                    fresh: 64.0,
                    line_stride: 32,
                },
            ],
        }];
        // 2048-stride level spans 2 sets, 32-stride level spans 64:
        // the foreign stream covers 128 of 4096 sets.
        let surv = concentrated.cliff_survivors(4096, 1);
        assert!(
            surv > 0.9 && surv < 1.0,
            "concentrated foreign should mostly rescue: {surv}"
        );
    }

    #[test]
    fn cross_stream_counts_lattice_collisions() {
        // Walk a: 63 iterations at 4161-element stride; walk b: 63 at
        // 65. On a 4096-set × 2-element geometry (span 8192 elements)
        // 4161 ≡ 65 + 4096 (mod 8192): the walks share the 65-element
        // lattice and collide in ~half the positions, whichever parity
        // the offset takes.
        let cs = CrossStream {
            array: "B".into(),
            distance: 126.0,
            rewalks: 100.0,
            cap: 1e9,
            a: vec![(63, 4161)],
            b: vec![(63, 65)],
            offsets: vec![-4161, 4096 - 4161],
        };
        let extra = cs.extra_misses(4096, 1, 2);
        // ~31 collisions × 2 misses × 100 rewalks.
        assert!(
            (5000.0..8000.0).contains(&extra),
            "lattice collisions expected: {extra}"
        );
        // Two-way associative absorbs depth-2 collisions.
        assert_eq!(cs.extra_misses(2048, 2, 2), 0.0);
        // Distance beyond capacity: the walks already miss.
        let far = CrossStream {
            distance: 1e9,
            ..cs.clone()
        };
        assert_eq!(far.extra_misses(4096, 1, 2), 0.0);
        // Disjoint lattices produce no collisions.
        let disjoint = CrossStream {
            a: vec![(63, 8192)],
            ..cs
        };
        assert_eq!(disjoint.extra_misses(4096, 1, 2), 0.0);
    }

    #[test]
    fn misses_in_subtracts_cliff_survivors() {
        let mut h = ReuseHistogram::empty();
        h.accesses = 2000.0;
        h.cold = 10.0;
        h.push(4098.0, 1000.0);
        h.streams.push(StreamBin {
            distance: 4098.0,
            count: 1000.0,
            own_lines: 4096.0,
            inner: vec![
                StreamLevel {
                    fresh: 64.0,
                    line_stride: 1,
                },
                StreamLevel {
                    fresh: 64.0,
                    line_stride: 32,
                },
            ],
            foreign: Vec::new(),
        });
        // Fully associative: everything misses.
        assert_eq!(h.misses_at(4096.0), 1010.0);
        // Direct-mapped with a bijective spread: the cliff bin hits.
        let m = h.misses_in(4096, 1);
        assert!(m < 15.0, "misses_in {m}");
        assert!(m >= h.cold);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ReuseHistogram::empty();
        a.accesses = 5.0;
        a.cold = 1.0;
        a.push(4.0, 2.0);
        let mut b = ReuseHistogram::empty();
        b.accesses = 7.0;
        b.cold = 2.0;
        b.push(4.0, 3.0);
        a.merge(&b);
        a.normalize();
        assert_eq!(a.accesses, 12.0);
        assert_eq!(a.cold, 3.0);
        assert_eq!(a.bins, vec![(4.0, 5.0)]);
    }
}
