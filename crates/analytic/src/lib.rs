//! Analytical locality engine: predict cache miss rates from the IR
//! alone — no trace, no simulation.
//!
//! The simulator answers "how many misses?" by replaying every access;
//! this crate answers the same question symbolically, in three stages:
//!
//! * [`reuse`] — per-[`RefGroup`](cmt_locality::model::RefGroup)
//!   reuse analysis over the loop-nest IR (the paper's §3 machinery made
//!   quantitative), producing a config-independent reuse-distance
//!   histogram per reference group;
//! * [`histogram`] — the [`ReuseHistogram`] itself: under LRU an access
//!   hits in a cache of `C` lines iff its reuse distance is `< C`, so
//!   one histogram answers every capacity;
//! * [`model`] — the [`MissModel`] geometry fold, emitting predicted
//!   per-array and per-nest [`CacheStats`](cmt_cache::CacheStats)
//!   compatible with the simulator's, plus [`cost`]'s [`AnalyticCost`]
//!   oracle that lets the compound driver rank permutations by predicted
//!   misses (`CMT_COST=analytic` in `cmt-bench`).
//!
//! Accuracy against the sharded simulator is measured continuously: see
//! `docs/ANALYTIC_MODEL.md` and the committed `BENCH_analytic.json`.
//!
//! # Example
//!
//! ```
//! use cmt_analytic::{nest_reuse, MissModel};
//! use cmt_cache::CacheConfig;
//! use cmt_ir::build::ProgramBuilder;
//! use cmt_ir::expr::Expr;
//!
//! // Matmul, IJK order. One reuse analysis serves every geometry.
//! let mut b = ProgramBuilder::new("mm");
//! let n = b.param("N");
//! let a = b.matrix("A", n);
//! let bb = b.matrix("B", n);
//! let c = b.matrix("C", n);
//! b.loop_("I", 1, n, |b| {
//!     b.loop_("J", 1, n, |b| {
//!         b.loop_("K", 1, n, |b| {
//!             let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
//!             let lhs = b.at(c, [i, j]);
//!             let rhs = Expr::load(b.at(c, [i, j]))
//!                 + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
//!             b.assign(lhs, rhs);
//!         });
//!     });
//! });
//! let p = b.finish();
//!
//! let i860 = MissModel::new(CacheConfig::i860());
//! let reuse = nest_reuse(&p, 0, 64, i860.config().cls_elements());
//! let pred = i860.fold(&reuse);
//! assert_eq!(pred.stats.accesses, 4 * 64 * 64 * 64);
//! assert!(pred.stats.misses > 0);
//! // The same histograms fold under any other geometry for free.
//! let rs6000 = MissModel::new(CacheConfig::rs6000());
//! assert!(rs6000.capacity_lines() > i860.capacity_lines());
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod histogram;
pub mod model;
pub mod reuse;

pub use cost::AnalyticCost;
pub use histogram::{
    sets_spanned, CrossStream, ForeignStream, MissParts, ReuseHistogram, StreamBin, StreamLevel,
};
pub use model::{predict_program, ArrayPrediction, MissModel, NestAttribution, NestPrediction};
pub use reuse::{candidate_misses, nest_reuse, GroupReuse, LevelReuse, NestReuse};
