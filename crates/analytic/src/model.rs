//! Geometry fold: turning config-independent reuse-distance histograms
//! into predicted [`CacheStats`] for a concrete cache.
//!
//! A [`ReuseHistogram`](crate::ReuseHistogram) knows, for every access,
//! the LRU stack distance of its previous touch of the same line. Under
//! LRU an access hits in a fully-associative cache of `C` lines iff its
//! distance is `< C`, so folding a geometry is a single pass over the
//! bins: misses = cold + Σ bins at distance ≥ `size/line`, plus a
//! *self-interference* correction — a capacity-hit reuse still misses
//! when its stream's line stride maps the working set into fewer than
//! `working-set / assoc` cache sets (see
//! [`StreamBin`](crate::histogram::StreamBin)). Cross-array conflict
//! misses remain the model's documented blind spot (see
//! `docs/ANALYTIC_MODEL.md`).

use crate::reuse::{nest_reuse, NestReuse};
use cmt_cache::{CacheConfig, CacheStats};
use cmt_ir::program::Program;
use cmt_obs::{ObsSink, Remark, RemarkKind, TraceArg};

/// Folds cache geometries over reuse-distance histograms.
///
/// ```
/// use cmt_analytic::{nest_reuse, MissModel};
/// use cmt_cache::CacheConfig;
/// use cmt_ir::build::ProgramBuilder;
/// use cmt_ir::expr::Expr;
///
/// // A column-major streaming copy: misses are the cold footprint.
/// let mut b = ProgramBuilder::new("copy");
/// let n = b.param("N");
/// let a = b.matrix("A", n);
/// let c = b.matrix("C", n);
/// b.loop_("J", 1, n, |b| {
///     b.loop_("I", 1, n, |b| {
///         let (i, j) = (b.var("I"), b.var("J"));
///         let lhs = b.at(c, [i, j]);
///         b.assign(lhs, Expr::load(b.at(a, [i, j])));
///     });
/// });
/// let p = b.finish();
///
/// let model = MissModel::new(CacheConfig::i860());
/// let reuse = nest_reuse(&p, 0, 64, model.config().cls_elements());
/// let pred = model.fold(&reuse);
/// assert_eq!(pred.stats.accesses, 2 * 64 * 64);
/// // Streaming at unit stride: ~1 miss per line (64²/4 per array).
/// assert_eq!(pred.stats.misses, 2 * 64 * 64 / 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MissModel {
    config: CacheConfig,
}

/// Predicted stats for one array inside a nest.
#[derive(Clone, Debug)]
pub struct ArrayPrediction {
    /// Array name.
    pub array: String,
    /// Predicted counters (rounded to whole accesses).
    pub stats: CacheStats,
}

/// Predicted stats for one top-level nest, produced by
/// [`MissModel::fold`].
#[derive(Clone, Debug)]
pub struct NestPrediction {
    /// `program/nestN:…` label, same scheme as the profiler's.
    pub label: String,
    /// Whether the underlying reuse analysis enumerated iteration
    /// counts exactly (see [`NestReuse::exact`]).
    pub exact: bool,
    /// Per-array predictions, in first-appearance order.
    pub arrays: Vec<ArrayPrediction>,
    /// Whole-nest counters (the sum of the per-array counters, so the
    /// two views are always consistent).
    pub stats: CacheStats,
}

impl NestPrediction {
    /// Predicted miss rate over all accesses (0 for an empty nest).
    pub fn miss_rate(&self) -> f64 {
        if self.stats.accesses == 0 {
            0.0
        } else {
            self.stats.misses as f64 / self.stats.accesses as f64
        }
    }
}

/// Signed per-correction contributions to one nest's predicted misses
/// under one geometry, produced by [`MissModel::fold_attributed`].
///
/// The terms sum to the folded prediction:
///
/// ```text
/// predicted = baseline + self_interference − cliff_rescue
///           + cross + rounding
/// ```
///
/// so the analytic-vs-simulated error `predicted − simulated` decomposes
/// as `(baseline − simulated)` — the capacity-model residual — plus each
/// correction term. When the analytic engine diverges from simulation,
/// the largest term names the correction to blame.
#[derive(Clone, Debug, PartialEq)]
pub struct NestAttribution {
    /// `program/nestN:…` label, same scheme as the prediction's.
    pub label: String,
    /// Fully-associative LRU misses at capacity (cold included).
    pub baseline: f64,
    /// Set-conflict self-interference surcharge (added).
    pub self_interference: f64,
    /// LRU-cliff rescue discount (stored positive, subtracted).
    pub cliff_rescue: f64,
    /// Cross-group direct-mapped collision surcharge (added).
    pub cross: f64,
    /// Everything the continuous terms cannot express: per-group
    /// cold-floor clamps, per-array integer rounding, and the
    /// misses ≤ accesses cap.
    pub rounding: f64,
    /// The folded whole-nest prediction the terms reconstruct.
    pub predicted: u64,
}

impl NestAttribution {
    /// The signed terms in presentation order, paired with stable names
    /// (used by `cmt-explain` and the report renderer).
    pub fn terms(&self) -> [(&'static str, f64); 5] {
        [
            ("baseline", self.baseline),
            ("self_interference", self.self_interference),
            ("cliff_rescue", -self.cliff_rescue),
            ("cross", self.cross),
            ("rounding", self.rounding),
        ]
    }

    /// Sum of the signed terms — equal (up to float associativity) to
    /// `predicted`.
    pub fn total(&self) -> f64 {
        self.terms().iter().map(|(_, v)| v).sum()
    }
}

impl MissModel {
    /// A miss model for `config`.
    pub fn new(config: CacheConfig) -> MissModel {
        MissModel { config }
    }

    /// The geometry this model folds.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Cache capacity in lines — the distance threshold of the fold.
    pub fn capacity_lines(&self) -> f64 {
        (self.config.size() / self.config.line()) as f64
    }

    /// Number of cache sets (`size / line / assoc`) — the denominator
    /// of the self-interference correction.
    pub fn sets(&self) -> u64 {
        (self.config.size() / self.config.line() / u64::from(self.config.assoc().max(1))).max(1)
    }

    /// Folds this geometry over a nest's reuse analysis, producing
    /// per-array and whole-nest [`CacheStats`]-compatible counters.
    pub fn fold(&self, reuse: &NestReuse) -> NestPrediction {
        self.fold_attributed(reuse).0
    }

    /// [`MissModel::fold`] plus the per-correction [`NestAttribution`]:
    /// the same prediction (identical arithmetic), with each conflict
    /// correction's signed contribution broken out so analytic-vs-
    /// simulated divergence can be blamed on a specific term.
    pub fn fold_attributed(&self, reuse: &NestReuse) -> (NestPrediction, NestAttribution) {
        let (sets, assoc) = (self.sets(), self.config.assoc());
        let mut attr = NestAttribution {
            label: reuse.label.clone(),
            baseline: 0.0,
            self_interference: 0.0,
            cliff_rescue: 0.0,
            cross: 0.0,
            rounding: 0.0,
            predicted: 0,
        };
        // Merge group histograms by array, keeping first-appearance
        // order for deterministic output.
        let mut arrays: Vec<(String, f64, f64, f64)> = Vec::new();
        for g in &reuse.groups {
            let parts = g.histogram.misses_in_parts(sets, assoc);
            let misses = (parts.baseline + parts.conflict - parts.rescued).max(g.histogram.cold);
            attr.baseline += parts.baseline;
            attr.self_interference += parts.conflict;
            attr.cliff_rescue += parts.rescued;
            attr.rounding += parts.clamped;
            let cold = g.histogram.cold;
            match arrays.iter_mut().find(|(name, ..)| *name == g.array) {
                Some((_, acc, ms, cd)) => {
                    *acc += g.accesses;
                    *ms += misses;
                    *cd += cold;
                }
                None => arrays.push((g.array.clone(), g.accesses, misses, cold)),
            }
        }
        // Nest-level cross-group conflicts (direct-mapped only): two
        // same-array walks on the same set lattice ping-pong misses that
        // no per-group histogram records.
        for cs in &reuse.cross {
            let extra = cs.extra_misses(sets, assoc, reuse.cls);
            if extra > 0.0 {
                if let Some((_, _, ms, _)) = arrays.iter_mut().find(|(name, ..)| *name == cs.array)
                {
                    *ms += extra;
                    attr.cross += extra;
                }
            }
        }
        let unrounded: f64 = arrays.iter().map(|(_, _, ms, _)| ms).sum();
        let arrays: Vec<ArrayPrediction> = arrays
            .into_iter()
            .map(|(array, acc, ms, cd)| {
                let accesses = acc.round().max(0.0) as u64;
                let misses = (ms.round().max(0.0) as u64).min(accesses);
                let cold_misses = (cd.round().max(0.0) as u64).min(misses);
                ArrayPrediction {
                    array,
                    stats: CacheStats {
                        accesses,
                        hits: accesses - misses,
                        misses,
                        cold_misses,
                    },
                }
            })
            .collect();
        let mut stats = CacheStats::default();
        for a in &arrays {
            stats += a.stats;
        }
        attr.predicted = stats.misses;
        attr.rounding += stats.misses as f64 - unrounded;
        (
            NestPrediction {
                label: reuse.label.clone(),
                exact: reuse.exact,
                arrays,
                stats,
            },
            attr,
        )
    }
}

/// Predicts every top-level body node of `program` at parameter binding
/// `n` under `model`'s geometry, emitting `analytic.*` remarks, counters,
/// and trace spans into `obs`.
///
/// With a disabled sink this is a pure computation; the predictions are
/// identical either way.
pub fn predict_program(
    program: &Program,
    n: i64,
    model: &MissModel,
    obs: &mut dyn ObsSink,
) -> Vec<NestPrediction> {
    let cls = model.config().cls_elements();
    let mut out = Vec::with_capacity(program.body().len());
    let mut inexact = 0u64;
    for idx in 0..program.body().len() {
        let reuse = nest_reuse(program, idx, n, cls);
        if obs.enabled() {
            obs.trace_begin(
                "analytic.nest",
                &[
                    ("nest", TraceArg::Str(&reuse.label)),
                    ("accesses", TraceArg::F64(reuse.accesses)),
                ],
            );
        }
        let pred = model.fold(&reuse);
        if !pred.exact {
            inexact += 1;
        }
        if obs.enabled() {
            obs.trace_end(
                "analytic.nest",
                &[
                    ("misses", TraceArg::U64(pred.stats.misses)),
                    (
                        "exact",
                        TraceArg::Str(if pred.exact { "yes" } else { "no" }),
                    ),
                ],
            );
            let mut reason = format!(
                "predicted {} misses / {} accesses ({:.2}% miss rate) at {}",
                pred.stats.misses,
                pred.stats.accesses,
                100.0 * pred.miss_rate(),
                model.config(),
            );
            if !pred.exact {
                reason.push_str(" [midpoint-approximated trip counts]");
            }
            obs.remark(
                Remark::new("analytic", pred.label.clone(), RemarkKind::Analysis).reason(reason),
            );
        }
        out.push(pred);
    }
    if obs.enabled() {
        obs.counter("analytic.nests", out.len() as u64);
        obs.counter("analytic.nests_inexact", inexact);
        obs.counter(
            "analytic.predicted_misses",
            out.iter().map(|p| p.stats.misses).sum(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_ir::build::ProgramBuilder;
    use cmt_ir::expr::Expr;
    use cmt_obs::{CollectSink, NullObs};

    fn matmul() -> Program {
        let mut b = ProgramBuilder::new("mm");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let bb = b.matrix("B", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                b.loop_("K", 1, n, |b| {
                    let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
                    let lhs = b.at(c, [i, j]);
                    let rhs = Expr::load(b.at(c, [i, j]))
                        + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                    b.assign(lhs, rhs);
                });
            });
        });
        b.finish()
    }

    #[test]
    fn fold_is_consistent_per_array_vs_nest() {
        let p = matmul();
        let model = MissModel::new(CacheConfig::i860());
        let preds = predict_program(&p, 64, &model, &mut NullObs);
        assert_eq!(preds.len(), 1);
        let pred = &preds[0];
        let sum: u64 = pred.arrays.iter().map(|a| a.stats.misses).sum();
        assert_eq!(pred.stats.misses, sum);
        let acc: u64 = pred.arrays.iter().map(|a| a.stats.accesses).sum();
        assert_eq!(pred.stats.accesses, acc);
        assert_eq!(pred.stats.hits + pred.stats.misses, pred.stats.accesses);
    }

    #[test]
    fn bigger_caches_never_miss_more() {
        let p = matmul();
        let configs = [
            CacheConfig::i860(),
            CacheConfig::decstation(),
            CacheConfig::rs6000(),
        ];
        // Sort by capacity in lines; misses must be non-increasing when
        // line size is equal, and cold misses shrink with line size.
        let mut by_cap: Vec<(f64, u64)> = configs
            .iter()
            .map(|c| {
                let m = MissModel::new(*c);
                let r = nest_reuse(&p, 0, 64, c.cls_elements());
                (m.capacity_lines(), m.fold(&r).stats.misses)
            })
            .collect();
        by_cap.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(by_cap[0].1 > 0);
    }

    #[test]
    fn attribution_terms_sum_to_prediction_on_all_geometries() {
        let p = matmul();
        for config in [
            CacheConfig::rs6000(),
            CacheConfig::i860(),
            CacheConfig::decstation(),
        ] {
            let model = MissModel::new(config);
            let reuse = nest_reuse(&p, 0, 64, config.cls_elements());
            let (pred, attr) = model.fold_attributed(&reuse);
            assert_eq!(attr.predicted, pred.stats.misses, "{config}");
            let total = attr.total();
            let scale = (attr.predicted as f64).max(1.0);
            assert!(
                (total - attr.predicted as f64).abs() <= 1e-6 * scale,
                "{config}: terms sum {total} vs predicted {}",
                attr.predicted
            );
            assert!(attr.baseline >= 0.0 && attr.self_interference >= 0.0);
            assert!(attr.cliff_rescue >= 0.0);
        }
    }

    #[test]
    fn fold_attributed_matches_plain_fold_exactly() {
        let p = matmul();
        for config in [
            CacheConfig::rs6000(),
            CacheConfig::i860(),
            CacheConfig::decstation(),
        ] {
            let model = MissModel::new(config);
            let reuse = nest_reuse(&p, 0, 64, config.cls_elements());
            let plain = model.fold(&reuse);
            let (pred, _) = model.fold_attributed(&reuse);
            assert_eq!(plain.stats, pred.stats, "{config}");
        }
    }

    #[test]
    fn remarks_and_counters_flow_through_obs() {
        let p = matmul();
        let model = MissModel::new(CacheConfig::i860());
        let mut sink = CollectSink::new();
        let preds = predict_program(&p, 64, &model, &mut sink);
        assert_eq!(preds.len(), 1);
        let jsonl = sink.remarks_jsonl();
        assert!(jsonl.contains("\"analytic\""), "{jsonl}");
        assert!(jsonl.contains("predicted"), "{jsonl}");
    }
}
