//! Degenerate nests through the full supervised pipeline.
//!
//! The supervisor must treat pathological shapes — zero-trip loops,
//! single-iteration loops, empty bodies, loop-free programs, and
//! max-depth imperfect nests — as ordinary inputs: commit or degrade,
//! never panic, never emit invalid IR, never change the declared
//! arrays' final state. Every case runs under both [`VerifyMode`]s.

use cmt_ir::affine::Affine;
use cmt_ir::build::ProgramBuilder;
use cmt_ir::expr::Expr;
use cmt_ir::program::Program;
use cmt_locality::model::CostModel;
use cmt_obs::NullObs;
use cmt_resilience::{silence_supervised_panics, supervise_default, Fault, FaultKind, FaultPlan};
use cmt_verify::{fingerprint, VerifyMode, VerifyOptions};

/// `DO I = 1, 0` — the body never executes.
fn zero_trip() -> Program {
    let mut b = ProgramBuilder::new("zero_trip");
    let n = b.param("N");
    let a = b.matrix("A", n);
    b.loop_("I", 1, 0, |b| {
        b.loop_("J", 1, n, |b| {
            let (i, j) = (b.var("I"), b.var("J"));
            let lhs = b.at(a, [i, j]);
            b.assign(lhs, Expr::Const(1.0));
        });
    });
    b.finish()
}

/// `DO I = 3, 3` — exactly one iteration per level.
fn single_iteration() -> Program {
    let mut b = ProgramBuilder::new("single_iter");
    let n = b.param("N");
    let a = b.matrix("A", n);
    b.loop_("I", 3, 3, |b| {
        b.loop_("J", 3, 3, |b| {
            let (i, j) = (b.var("I"), b.var("J"));
            let lhs = b.at(a, [i, j]);
            let rhs = b.at(a, [j, i]);
            b.assign(lhs, Expr::load(rhs) + Expr::Const(1.0));
        });
    });
    b.finish()
}

/// A nest whose loops contain no statements at all.
fn empty_body() -> Program {
    let mut b = ProgramBuilder::new("empty_body");
    let n = b.param("N");
    let _ = b.matrix("A", n);
    b.loop_("I", 1, n, |b| {
        b.loop_("J", 1, n, |_| {});
    });
    b.finish()
}

/// No loops at all: a single top-level statement (a "0-dim nest").
fn loop_free() -> Program {
    let mut b = ProgramBuilder::new("loop_free");
    let n = b.param("N");
    let a = b.matrix("A", n);
    let lhs = b.at(a, [1, 2]);
    b.assign(lhs, Expr::Const(7.0));
    b.finish()
}

/// Maximum-depth (4-dim) imperfect nest: statements at intermediate
/// levels keep the nest imperfect, exercising distribution paths.
fn deep_imperfect() -> Program {
    let mut b = ProgramBuilder::new("deep_imperfect");
    let n = b.param("N");
    let a = b.matrix("A", n);
    let c = b.matrix("C", n);
    b.loop_("I", 1, n, |b| {
        let i = b.var("I");
        let lhs = b.at(a, [Affine::from(i), Affine::constant(1)]);
        b.assign(lhs, Expr::Const(0.0));
        b.loop_("J", 1, n, |b| {
            let (i, j) = (b.var("I"), b.var("J"));
            let lhs = b.at(c, [j, i]);
            b.assign(lhs, Expr::Const(2.0));
            b.loop_("K", 1, n, |b| {
                b.loop_("L", 1, n, |b| {
                    let (i, j) = (b.var("I"), b.var("J"));
                    let (k, l) = (b.var("K"), b.var("L"));
                    let lhs = b.at(a, [l, k]);
                    let rhs = b.at(c, [j, i]);
                    b.assign(lhs, Expr::load(rhs) + Expr::Const(1.0));
                });
            });
        });
    });
    b.finish()
}

fn all_cases() -> Vec<Program> {
    vec![
        zero_trip(),
        single_iteration(),
        empty_body(),
        loop_free(),
        deep_imperfect(),
    ]
}

fn assert_same_declared_arrays(original: &Program, result: &Program) {
    for &n in &[6i64, 9] {
        let a = fingerprint(original, &[n]).expect("original executes");
        let b = fingerprint(result, &[n]).expect("result executes");
        let common = a.arrays.len().min(b.arrays.len());
        assert_eq!(
            &a.arrays[..common],
            &b.arrays[..common],
            "{}: declared arrays changed at N={n}",
            original.name()
        );
    }
}

#[test]
fn degenerate_nests_survive_supervision_under_every_verify_mode() {
    silence_supervised_panics();
    let model = CostModel::new(4);
    for mode in [VerifyMode::Off, VerifyMode::On(VerifyOptions::default())] {
        for original in all_cases() {
            let mut p = original.clone();
            let run =
                supervise_default(&mut p, &model, &mode, &mut FaultPlan::none(), &mut NullObs);
            assert!(
                run.is_committed(),
                "{} under {mode:?} degraded: {:?}",
                original.name(),
                run.failures
            );
            cmt_ir::validate::validate(&p).unwrap_or_else(|e| {
                panic!("{}: invalid IR after supervision: {e}", original.name())
            });
            assert_same_declared_arrays(&original, &p);
        }
    }
}

#[test]
fn faults_on_degenerate_nests_roll_back_cleanly() {
    silence_supervised_panics();
    let model = CostModel::new(4);
    let mode = VerifyMode::On(VerifyOptions::default());
    for original in all_cases() {
        for kind in FaultKind::ALL {
            // Panic at every site: whichever pass actually runs on this
            // shape must degrade transactionally, the rest stay silent.
            let faults: Vec<Fault> = cmt_resilience::FAULT_SITES
                .iter()
                .map(|s| Fault::at(*s, kind))
                .collect();
            let mut plan = FaultPlan::of(faults);
            let mut p = original.clone();
            let run = supervise_default(&mut p, &model, &mode, &mut plan, &mut NullObs);
            cmt_ir::validate::validate(&p)
                .unwrap_or_else(|e| panic!("{}: invalid IR after faults: {e}", original.name()));
            assert_same_declared_arrays(&original, &p);
            if run.faults_fired > 0 {
                assert!(
                    run.degraded(),
                    "{} with {kind:?}: a fired fault must surface as degradation",
                    original.name()
                );
            }
        }
    }
}
