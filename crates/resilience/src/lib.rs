//! Supervised, fault-injectable optimization pipeline with transactional
//! rollback and graceful degradation.
//!
//! The compound transformation algorithm is meant to run as a production
//! compiler pass over *arbitrary* loop nests, so a single pathological
//! nest must never abort a corpus run. This crate wraps the
//! `cmt-locality` pipeline in a supervisor that makes every
//! transformation step a transaction:
//!
//! * **[`supervise`]** runs compound → scalar-replace → (optional) tile
//!   under `catch_unwind`, with deterministic step/fuel budgets
//!   ([`Budget`]) and, under [`cmt_verify::VerifyMode::On`], the
//!   differential verifier attached to every step. On panic, budget
//!   exhaustion, structural-validation failure, or verifier divergence
//!   the program **rolls back** to its last verified-good snapshot (or
//!   the original, per [`Degradation`]) and the run continues, emitting
//!   `resilience.*` counters and a `degraded:` remark.
//! * **[`FaultPlan`]** deterministically injects panics, IR corruption,
//!   budget exhaustion, and forced verifier divergence at the named
//!   sites in [`FAULT_SITES`], seeded by the in-repo SplitMix64 — every
//!   chaos scenario replays bit-for-bit from its seed.
//! * **[`quarantine`]** writes self-contained reproducer artifacts for
//!   corpus items that keep failing, built on the verify crate's
//!   delta-debugging minimizer ([`cmt_verify::minimize_with`]).
//!
//! The hardened parallel corpus runner (worker-panic containment,
//! bounded retry) lives in `cmt-bench`'s `runner` module; the chaos
//! sweep over the 256-seed verify corpus lives in the `chaos_corpus`
//! binary and `cmt-bench`'s integration tests. See `docs/ROBUSTNESS.md`
//! for the full state machine and artifact formats.
//!
//! # Example
//!
//! A scripted panic in the permutation pass degrades the nest instead of
//! killing the run:
//!
//! ```
//! use cmt_ir::build::ProgramBuilder;
//! use cmt_ir::expr::Expr;
//! use cmt_locality::model::CostModel;
//! use cmt_obs::NullObs;
//! use cmt_resilience::{
//!     silence_supervised_panics, supervise_default, Fault, FaultKind, FaultPlan,
//! };
//! use cmt_verify::VerifyMode;
//!
//! silence_supervised_panics();
//! let mut b = ProgramBuilder::new("copy");
//! let n = b.param("N");
//! let a = b.matrix("A", n);
//! let c = b.matrix("C", n);
//! b.loop_("I", 1, n, |b| {
//!     b.loop_("J", 1, n, |b| {
//!         let (i, j) = (b.var("I"), b.var("J"));
//!         let lhs = b.at(c, [i, j]);
//!         b.assign(lhs, Expr::load(b.at(a, [i, j])));
//!     });
//! });
//! let mut program = b.finish();
//! let original = program.clone();
//!
//! let mut faults = FaultPlan::of(vec![Fault::at("permute", FaultKind::Panic)]);
//! let run = supervise_default(
//!     &mut program,
//!     &CostModel::new(4),
//!     &VerifyMode::Off,
//!     &mut faults,
//!     &mut NullObs,
//! );
//! assert!(run.degraded());          // the panic was contained…
//! assert_eq!(program, original);    // …and the nest rolled back.
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod quarantine;
pub mod supervisor;

pub use fault::{Fault, FaultKind, FaultPlan, FAULT_SITES};
pub use quarantine::{write_quarantine, QuarantineRecord};
pub use supervisor::{
    corrupt_ir, silence_supervised_panics, supervise, supervise_default, Budget, Deadline,
    Degradation, FailureReason, PipelineSpec, StageFailure, SupervisePolicy, SupervisedRun,
};
