//! The pipeline supervisor: transactional, budgeted, fault-contained
//! execution of the compound optimization pipeline.
//!
//! [`supervise`] runs the full optimization pipeline (compound →
//! scalar replacement → optional tiling) over a *clone* of the input
//! program, under `catch_unwind`, with deterministic step budgets and —
//! when [`VerifyMode::On`] — the differential verifier attached to every
//! step. The committed program state only ever advances through
//! verified-good snapshots:
//!
//! * every applied compound step is structurally validated and
//!   (optionally) differentially verified before its `after` snapshot
//!   becomes the new *last-good* state;
//! * a panic, budget exhaustion, validation failure, or verifier
//!   divergence aborts the stage and **rolls the program back** to the
//!   last-good snapshot (or the original, per [`Degradation`]);
//! * the run then continues with the next stage — one pathological nest
//!   degrades, the corpus run survives.
//!
//! Degradations surface as `resilience.*` counters and a
//! `resilience`-pass remark whose reason starts with `degraded:`; see
//! `docs/ROBUSTNESS.md` for the state machine.
//!
//! Supervision is not free: the provenance snapshots needed for
//! rollback are cloned even under [`VerifyMode::Off`], and the stage
//! runs against an internal buffer sink, so per-nest trace spans are
//! not forwarded (remarks and counters are, on commit).

use crate::fault::{FaultKind, FaultPlan};
use cmt_ir::affine::Affine;
use cmt_ir::expr::Expr;
use cmt_ir::ids::{ArrayId, StmtId};
use cmt_ir::node::Node;
use cmt_ir::program::Program;
use cmt_ir::stmt::{ArrayRef, Stmt};
use cmt_ir::validate::validate;
use cmt_locality::compound::{compound_traced, CompoundOptions};
use cmt_locality::model::CostModel;
use cmt_locality::provenance::{ProvenanceSink, TransformStep};
use cmt_locality::report::TransformReport;
use cmt_locality::scalar::{scalar_replace_observed, ScalarStats};
use cmt_locality::tile::tile_loop;
use cmt_obs::{CollectSink, NullObs, ObsSink, Remark, RemarkKind};
use cmt_verify::{fingerprint, DiffVerifier, VerifyMode};
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::Once;

/// Deterministic work budgets for one supervised run. Fuel is counted
/// in *applied transformation steps* (plus one unit per simple stage),
/// never wall-clock, so exhaustion is reproducible on any machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Fuel shared by the whole run.
    pub total_steps: u64,
    /// Fuel any single pass (`permute`, `fuse-all`, …) may consume.
    pub per_pass_steps: u64,
}

impl Default for Budget {
    fn default() -> Self {
        // Far above anything a real program needs (corpus programs
        // apply a handful of steps), so exhaustion means runaway work.
        Budget {
            total_steps: 256,
            per_pass_steps: 64,
        }
    }
}

/// A cooperative wall-clock deadline for one supervised run.
///
/// Unlike [`Budget`] fuel (deterministic, counted in steps), a deadline
/// is a *latency* bound: the optimization service hands every request a
/// deadline and the supervisor checks it cooperatively before each
/// committed step and each simple stage. An expired deadline aborts the
/// current stage with [`FailureReason::DeadlineExceeded`] and rolls
/// back exactly like any other failure — the pipeline never blocks past
/// its budget, and the caller still gets a (degraded) answer.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: std::time::Instant,
}

impl Deadline {
    /// A deadline `d` from now. `Duration::ZERO` is already expired —
    /// useful for deterministically exercising the degraded path.
    pub fn after(d: std::time::Duration) -> Self {
        Deadline {
            at: std::time::Instant::now() + d,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        std::time::Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> std::time::Duration {
        self.at.saturating_duration_since(std::time::Instant::now())
    }
}

/// Where a failed stage rolls back to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Degradation {
    /// Keep the work of every step that verified clean before the
    /// failure (the default).
    #[default]
    LastGood,
    /// Discard the whole stage: roll back to the stage's input.
    Original,
}

/// Knobs for the supervisor.
#[derive(Clone, Debug)]
pub struct SupervisePolicy {
    /// Step/fuel budgets.
    pub budget: Budget,
    /// Rollback target on failure.
    pub degradation: Degradation,
    /// Run the IR structural validator after every step and stage.
    pub validate_ir: bool,
    /// Optional wall-clock deadline, checked cooperatively before each
    /// step and stage (see [`Deadline`]). `None` means unbounded.
    pub deadline: Option<Deadline>,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy {
            budget: Budget::default(),
            degradation: Degradation::default(),
            validate_ir: true,
            deadline: None,
        }
    }
}

/// Which stages the supervised pipeline runs.
#[derive(Clone, Debug)]
pub struct PipelineSpec {
    /// Options for the compound transformation stage.
    pub compound: CompoundOptions,
    /// Run scalar replacement after the compound stage.
    pub scalar_replace: bool,
    /// Optionally tile `(nest, depth, tile, hoist_to)` after scalar
    /// replacement. A [`cmt_locality::tile::TileError`] is a graceful
    /// skip, not a failure.
    pub tile: Option<(usize, usize, i64, usize)>,
}

impl Default for PipelineSpec {
    fn default() -> Self {
        PipelineSpec {
            compound: CompoundOptions::default(),
            scalar_replace: true,
            tile: None,
        }
    }
}

/// Why a stage was aborted and rolled back.
#[derive(Clone, Debug)]
pub enum FailureReason {
    /// The stage panicked (genuinely, or via an injected fault).
    Panic {
        /// `true` when a [`FaultPlan`] scripted the panic.
        injected: bool,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The deterministic fuel budget ran out.
    BudgetExhausted {
        /// Site charging the step that exceeded the budget.
        site: String,
    },
    /// The structural validator rejected the stage's output.
    InvalidIr {
        /// Site that produced the invalid IR.
        site: String,
        /// The validator's error.
        error: String,
    },
    /// The request's wall-clock deadline expired mid-run.
    DeadlineExceeded {
        /// Site at which the cooperative check observed expiry.
        site: String,
    },
    /// The differential verifier rejected the rewrite.
    Divergence {
        /// Site that produced the diverging rewrite.
        site: String,
        /// Human-readable divergence detail.
        detail: String,
        /// `true` when a [`FaultPlan`] forced the verdict.
        injected: bool,
    },
}

impl FailureReason {
    /// Stable counter suffix for this failure class
    /// (`resilience.<label>`).
    pub fn counter_label(&self) -> &'static str {
        match self {
            FailureReason::Panic { .. } => "panics",
            FailureReason::BudgetExhausted { .. } => "budget_exhausted",
            FailureReason::DeadlineExceeded { .. } => "deadline_exceeded",
            FailureReason::InvalidIr { .. } => "invalid_ir",
            FailureReason::Divergence { .. } => "divergences",
        }
    }
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureReason::Panic { injected, message } => {
                let tag = if *injected { "injected panic" } else { "panic" };
                write!(f, "{tag}: {message}")
            }
            FailureReason::BudgetExhausted { site } => {
                write!(f, "fuel budget exhausted at {site}")
            }
            FailureReason::DeadlineExceeded { site } => {
                write!(f, "deadline exceeded at {site}")
            }
            FailureReason::InvalidIr { site, error } => {
                write!(f, "invalid IR after {site}: {error}")
            }
            FailureReason::Divergence {
                site,
                detail,
                injected,
            } => {
                let tag = if *injected {
                    "injected divergence"
                } else {
                    "divergence"
                };
                write!(f, "{tag} at {site}: {detail}")
            }
        }
    }
}

/// One degraded stage of a supervised run.
#[derive(Clone, Debug)]
pub struct StageFailure {
    /// The stage that failed: `"compound"`, `"scalar-replace"`, `"tile"`.
    pub stage: &'static str,
    /// Why it failed.
    pub reason: FailureReason,
    /// Where the program rolled back to: `"last-good"` or `"original"`.
    pub rollback: &'static str,
}

/// Outcome of one supervised pipeline run.
#[derive(Clone, Debug, Default)]
pub struct SupervisedRun {
    /// The compound stage's report, when that stage committed.
    pub report: Option<TransformReport>,
    /// Scalar-replacement stats, when that stage ran and committed.
    pub scalar: Option<ScalarStats>,
    /// Whether the tile stage applied a tiling.
    pub tiled: bool,
    /// Every degraded stage, in pipeline order (empty on a clean run).
    pub failures: Vec<StageFailure>,
    /// Transformation steps that committed (validated + verified).
    pub steps_committed: usize,
    /// Deterministic fuel consumed.
    pub fuel_spent: u64,
    /// Faults from the plan that actually fired.
    pub faults_fired: usize,
}

impl SupervisedRun {
    /// `true` when every stage committed without rollback.
    pub fn is_committed(&self) -> bool {
        self.failures.is_empty()
    }

    /// `true` when at least one stage degraded.
    pub fn degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// One-line human summary — what remark reasons and escalation
    /// drivers print about this run.
    pub fn summary(&self) -> String {
        let health = if self.is_committed() {
            "committed clean".to_string()
        } else {
            format!("degraded ({} stage(s) rolled back)", self.failures.len())
        };
        format!(
            "{health}: {} step(s) committed, tiled={}, fuel {} spent",
            self.steps_committed, self.tiled, self.fuel_spent
        )
    }
}

/// Panic payload the supervisor throws to unwind out of a doomed stage.
/// Never escapes [`supervise`]: the surrounding `catch_unwind` absorbs
/// it and converts the recorded [`FailureReason`] into a rollback.
struct SupervisorAbort;

/// Installs a process-wide panic hook that suppresses the default
/// "thread panicked" message for the supervisor's own control-flow
/// panics (genuine pass panics still print). Idempotent; chaos tests
/// and the chaos runner call this once to keep their output readable.
pub fn silence_supervised_panics() {
    static SILENCE: Once = Once::new();
    SILENCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SupervisorAbort>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

/// Makes `program` structurally invalid in a way [`validate`] is
/// guaranteed to catch on *any* program: appends a statement referencing
/// an undeclared array. Used by [`FaultKind::CorruptIr`] injection to
/// prove the validator wiring end to end.
pub fn corrupt_ir(program: &mut Program) {
    program.body_mut().push(Node::Stmt(Stmt::new(
        StmtId(u32::MAX),
        ArrayRef::new(ArrayId(u32::MAX), vec![Affine::constant(1)]),
        Expr::Const(0.0),
    )));
}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The [`ProvenanceSink`] driving per-step supervision inside the
/// compound stage: fault injection, fuel accounting, structural
/// validation, differential verification, and last-good snapshotting.
struct StepSupervisor<'a> {
    faults: &'a mut FaultPlan,
    policy: &'a SupervisePolicy,
    verifier: Option<DiffVerifier>,
    fuel_total: u64,
    fuel_per_pass: HashMap<&'static str, u64>,
    fuel_spent: u64,
    last_good: Option<Program>,
    steps_committed: usize,
    failure: Option<FailureReason>,
}

impl StepSupervisor<'_> {
    fn abort(&mut self, reason: FailureReason) -> ! {
        self.failure = Some(reason);
        panic_any(SupervisorAbort)
    }
}

impl ProvenanceSink for StepSupervisor<'_> {
    fn enabled(&self) -> bool {
        true
    }

    fn step(&mut self, step: &TransformStep<'_>, before: &Program, after: &Program) {
        let site = step.pass;

        // 1. Fault injection: behave as if the pass itself misbehaved.
        match self.faults.fire(site) {
            Some(FaultKind::Panic) => self.abort(FailureReason::Panic {
                injected: true,
                message: format!("injected panic at {site}"),
            }),
            Some(FaultKind::CorruptIr) => {
                // Corrupt a clone of the step output and push it through
                // the real validator, proving detection end to end.
                let mut corrupted = after.clone();
                corrupt_ir(&mut corrupted);
                match validate(&corrupted) {
                    Err(e) => self.abort(FailureReason::InvalidIr {
                        site: site.to_string(),
                        error: format!("injected corruption detected: {e}"),
                    }),
                    Ok(()) => self.abort(FailureReason::InvalidIr {
                        site: site.to_string(),
                        error: "injected corruption escaped the validator".to_string(),
                    }),
                }
            }
            Some(FaultKind::ExhaustBudget) => self.fuel_total = 0,
            Some(FaultKind::ForceDivergence) => self.abort(FailureReason::Divergence {
                site: site.to_string(),
                detail: "injected divergence".to_string(),
                injected: true,
            }),
            None => {}
        }

        // 2. Cooperative deadline check: latency bound alongside fuel.
        if let Some(d) = self.policy.deadline {
            if d.expired() {
                self.abort(FailureReason::DeadlineExceeded {
                    site: site.to_string(),
                });
            }
        }

        // 3. Fuel: one unit per applied step, against both budgets.
        if self.fuel_total == 0 {
            self.abort(FailureReason::BudgetExhausted {
                site: site.to_string(),
            });
        }
        self.fuel_total -= 1;
        self.fuel_spent += 1;
        let left = *self
            .fuel_per_pass
            .get(site)
            .unwrap_or(&self.policy.budget.per_pass_steps);
        if left == 0 {
            self.abort(FailureReason::BudgetExhausted {
                site: site.to_string(),
            });
        }
        self.fuel_per_pass.insert(site, left - 1);

        // 4. Structural validation of the step output.
        if self.policy.validate_ir {
            if let Err(e) = validate(after) {
                self.abort(FailureReason::InvalidIr {
                    site: site.to_string(),
                    error: e.to_string(),
                });
            }
        }

        // 5. Differential verification (VerifyMode::On only).
        if let Some(v) = &mut self.verifier {
            let seen = v.report.divergences.len();
            v.check_step(step.pass, step.nest_index, step.reversed, before, after);
            if v.report.divergences.len() > seen {
                let detail = v
                    .report
                    .divergences
                    .last()
                    .map(|d| d.kind.to_string())
                    .unwrap_or_default();
                self.abort(FailureReason::Divergence {
                    site: site.to_string(),
                    detail,
                    injected: false,
                });
            }
        }

        // 6. Commit: this snapshot is the new rollback target.
        self.last_good = Some(after.clone());
        self.steps_committed += 1;
    }
}

/// Compares final array state of the declaration-prefix arrays the two
/// programs share, at each parameter value. This is the whole-stage
/// safety net for passes (like scalar replacement) that append
/// temporaries — their extra arrays, reads, and stores are expected,
/// but the original arrays' final contents must be bit-identical.
fn stage_divergence(before: &Program, after: &Program, param_values: &[i64]) -> Option<String> {
    for &v in param_values {
        let params = vec![v; before.params().len()];
        let orig = match fingerprint(before, &params) {
            Ok(f) => f,
            Err(e) => return Some(format!("execution of stage input failed at N={v}: {e}")),
        };
        let cand = match fingerprint(after, &params) {
            Ok(f) => f,
            Err(e) => return Some(format!("execution of stage output failed at N={v}: {e}")),
        };
        for (k, (a, b)) in orig.arrays.iter().zip(&cand.arrays).enumerate() {
            if a != b {
                return Some(format!(
                    "array {} final state differs at N={v}",
                    before.arrays()[k].name()
                ));
            }
        }
    }
    None
}

fn flush_buffer(obs: &mut dyn ObsSink, buf: CollectSink) {
    let CollectSink {
        remarks,
        decisions,
        metrics,
    } = buf;
    for r in remarks {
        obs.remark(r);
    }
    for d in decisions {
        obs.decision(d);
    }
    for (name, v) in metrics.counters() {
        obs.counter(name, v);
    }
}

/// Runs a whole-stage transaction for the simple (non-step-granular)
/// stages: fault injection at entry, one fuel unit, `catch_unwind`
/// around the pass, structural validation and array-state equivalence
/// on the output. On `Ok` the program advances; on `Err` it is
/// untouched (the stage ran on a clone).
#[allow(clippy::too_many_arguments)]
fn run_simple_stage<T>(
    stage: &'static str,
    program: &mut Program,
    faults: &mut FaultPlan,
    policy: &SupervisePolicy,
    fuel: &mut u64,
    spent: &mut u64,
    mode: &VerifyMode,
    obs: &mut dyn ObsSink,
    f: impl FnOnce(&mut Program, &mut dyn ObsSink) -> T,
) -> Result<T, FailureReason> {
    let injected = faults.fire(stage);
    match injected {
        Some(FaultKind::ForceDivergence) => {
            return Err(FailureReason::Divergence {
                site: stage.to_string(),
                detail: "injected divergence".to_string(),
                injected: true,
            });
        }
        Some(FaultKind::ExhaustBudget) => *fuel = 0,
        _ => {}
    }
    if *fuel == 0 {
        return Err(FailureReason::BudgetExhausted {
            site: stage.to_string(),
        });
    }
    if let Some(d) = policy.deadline {
        if d.expired() {
            return Err(FailureReason::DeadlineExceeded {
                site: stage.to_string(),
            });
        }
    }
    *fuel -= 1;
    *spent += 1;

    let before = program.clone();
    let mut work = program.clone();
    let mut buf = CollectSink::new();
    let panic_injected = matches!(injected, Some(FaultKind::Panic));
    let result = catch_unwind(AssertUnwindSafe(|| {
        if panic_injected {
            panic_any(SupervisorAbort);
        }
        f(&mut work, &mut buf)
    }));
    let out = match result {
        Ok(v) => v,
        Err(payload) => {
            let message = if panic_injected {
                format!("injected panic at {stage}")
            } else {
                payload_message(payload.as_ref())
            };
            return Err(FailureReason::Panic {
                injected: panic_injected,
                message,
            });
        }
    };
    if matches!(injected, Some(FaultKind::CorruptIr)) {
        corrupt_ir(&mut work);
    }
    if policy.validate_ir {
        if let Err(e) = validate(&work) {
            return Err(FailureReason::InvalidIr {
                site: stage.to_string(),
                error: if matches!(injected, Some(FaultKind::CorruptIr)) {
                    format!("injected corruption detected: {e}")
                } else {
                    e.to_string()
                },
            });
        }
    }
    if let VerifyMode::On(vopts) = mode {
        if let Some(detail) = stage_divergence(&before, &work, &vopts.param_values) {
            return Err(FailureReason::Divergence {
                site: stage.to_string(),
                detail,
                injected: false,
            });
        }
    }
    *program = work;
    if obs.enabled() {
        flush_buffer(obs, buf);
    }
    Ok(out)
}

fn record_degradation(
    run: &mut SupervisedRun,
    obs: &mut dyn ObsSink,
    name: &str,
    stage: &'static str,
    reason: FailureReason,
    rollback: &'static str,
) {
    if obs.enabled() {
        obs.remark(
            Remark::new("resilience", format!("{name}/{stage}"), RemarkKind::Missed)
                .reason(format!("degraded: {reason}; rolled back to {rollback}")),
        );
        obs.counter("resilience.degraded", 1);
        obs.counter(&format!("resilience.{}", reason.counter_label()), 1);
        obs.counter("resilience.rollbacks", 1);
    }
    run.failures.push(StageFailure {
        stage,
        reason,
        rollback,
    });
}

/// Runs the supervised pipeline over `program` in place.
///
/// Stages run in order: compound (step-granular transactions), scalar
/// replacement, optional tiling. A stage failure rolls the program back
/// per `policy` and the run continues; the returned [`SupervisedRun`]
/// lists every degradation. The program is **never** left in a torn
/// state: all mutation happens on clones that are only committed whole.
///
/// Under [`VerifyMode::On`], every committed compound step has passed
/// the differential verifier, and simple stages have passed the
/// array-state equivalence check — so even a degraded run's final
/// program is cmt-verify-clean with respect to the input.
pub fn supervise(
    program: &mut Program,
    model: &CostModel,
    spec: &PipelineSpec,
    mode: &VerifyMode,
    policy: &SupervisePolicy,
    faults: &mut FaultPlan,
    obs: &mut dyn ObsSink,
) -> SupervisedRun {
    let mut run = SupervisedRun::default();
    let name = program.name().to_string();
    let observed = obs.enabled();
    if observed {
        obs.counter("resilience.supervised", 1);
    }

    // ---- Stage 1: compound (per-step transactions) ----
    let original = program.clone();
    let mut work = program.clone();
    let verifier = match mode {
        VerifyMode::On(vopts) => Some(DiffVerifier::new(vopts.clone())),
        VerifyMode::Off => None,
    };
    let mut sup = StepSupervisor {
        faults,
        policy,
        verifier,
        fuel_total: policy.budget.total_steps,
        fuel_per_pass: HashMap::new(),
        fuel_spent: 0,
        last_good: None,
        steps_committed: 0,
        failure: None,
    };
    let mut buf = CollectSink::new();
    let mut null = NullObs;
    let result = catch_unwind(AssertUnwindSafe(|| {
        let inner: &mut dyn ObsSink = if observed { &mut buf } else { &mut null };
        compound_traced(&mut work, model, &spec.compound, inner, &mut sup)
    }));
    let mut fuel = sup.fuel_total;
    let mut spent = sup.fuel_spent;
    run.steps_committed = sup.steps_committed;
    let failure = sup.failure.take();
    let last_good = sup.last_good.take();
    if let Some(v) = sup.verifier.take() {
        if observed {
            obs.counter("resilience.verify_steps", v.report.steps_checked as u64);
            for r in v.remarks {
                obs.remark(r);
            }
        }
    }
    match result {
        Ok(report) => {
            *program = work;
            run.report = Some(report);
            if observed {
                flush_buffer(obs, buf);
            }
        }
        Err(payload) => {
            let reason = failure.unwrap_or_else(|| FailureReason::Panic {
                injected: false,
                message: payload_message(payload.as_ref()),
            });
            let (mut candidate, mut rollback) = match (policy.degradation, last_good) {
                (Degradation::LastGood, Some(good)) => (good, "last-good"),
                _ => (original.clone(), "original"),
            };
            // Safety net: a rollback target must itself be valid. The
            // last-good chain is validated step by step, so this only
            // fires if the invariant machinery itself is broken.
            if validate(&candidate).is_err() {
                candidate = original.clone();
                rollback = "original";
            }
            *program = candidate;
            record_degradation(&mut run, obs, &name, "compound", reason, rollback);
        }
    }

    // ---- Stage 2: scalar replacement ----
    if spec.scalar_replace {
        match run_simple_stage(
            "scalar-replace",
            program,
            faults,
            policy,
            &mut fuel,
            &mut spent,
            mode,
            obs,
            |p, o| scalar_replace_observed(p, o),
        ) {
            Ok(stats) => run.scalar = Some(stats),
            Err(reason) => {
                record_degradation(&mut run, obs, &name, "scalar-replace", reason, "last-good");
            }
        }
    }

    // ---- Stage 3: tiling (optional) ----
    if let Some((nest, depth, tile, hoist_to)) = spec.tile {
        match run_simple_stage(
            "tile",
            program,
            faults,
            policy,
            &mut fuel,
            &mut spent,
            mode,
            obs,
            |p, _| tile_loop(p, nest, depth, tile, hoist_to).is_ok(),
        ) {
            Ok(applied) => run.tiled = applied,
            Err(reason) => {
                record_degradation(&mut run, obs, &name, "tile", reason, "last-good");
            }
        }
    }

    run.fuel_spent = spent;
    run.faults_fired = faults.fired();
    if observed {
        obs.counter("resilience.steps_committed", run.steps_committed as u64);
        if run.faults_fired > 0 {
            obs.counter("resilience.faults_fired", run.faults_fired as u64);
        }
        if run.is_committed() {
            obs.counter("resilience.committed", 1);
        }
    }
    run
}

/// [`supervise`] with the default pipeline and policy.
pub fn supervise_default(
    program: &mut Program,
    model: &CostModel,
    mode: &VerifyMode,
    faults: &mut FaultPlan,
    obs: &mut dyn ObsSink,
) -> SupervisedRun {
    supervise(
        program,
        model,
        &PipelineSpec::default(),
        mode,
        &SupervisePolicy::default(),
        faults,
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use cmt_ir::build::ProgramBuilder;
    use cmt_verify::VerifyOptions;

    fn matmul() -> Program {
        let mut b = ProgramBuilder::new("mm");
        let n = b.param("N");
        let a = b.matrix("A", n);
        let bb = b.matrix("B", n);
        let c = b.matrix("C", n);
        b.loop_("I", 1, n, |b| {
            b.loop_("J", 1, n, |b| {
                b.loop_("K", 1, n, |b| {
                    let (i, j, k) = (b.var("I"), b.var("J"), b.var("K"));
                    let lhs = b.at(c, [i, j]);
                    let rhs = Expr::load(b.at(c, [i, j]))
                        + Expr::load(b.at(a, [i, k])) * Expr::load(b.at(bb, [k, j]));
                    b.assign(lhs, rhs);
                });
            });
        });
        b.finish()
    }

    fn unsupervised(program: &mut Program) {
        let model = CostModel::new(4);
        cmt_locality::compound::compound(program, &model);
        cmt_locality::scalar::scalar_replace(program);
    }

    #[test]
    fn fault_free_run_matches_unsupervised_pipeline() {
        silence_supervised_panics();
        let mut expected = matmul();
        unsupervised(&mut expected);

        for mode in [VerifyMode::Off, VerifyMode::On(VerifyOptions::default())] {
            let mut p = matmul();
            let run = supervise_default(
                &mut p,
                &CostModel::new(4),
                &mode,
                &mut FaultPlan::none(),
                &mut NullObs,
            );
            assert!(run.is_committed(), "{:?}", run.failures);
            assert!(run.steps_committed >= 1);
            assert_eq!(p, expected, "supervision must be transparent");
        }
    }

    #[test]
    fn injected_panic_rolls_back_to_original() {
        silence_supervised_panics();
        let original = matmul();
        let mut p = original.clone();
        let mut faults = FaultPlan::of(vec![Fault::at("permute", FaultKind::Panic)]);
        let policy = SupervisePolicy {
            degradation: Degradation::Original,
            ..Default::default()
        };
        let spec = PipelineSpec {
            scalar_replace: false,
            ..Default::default()
        };
        let mut sink = CollectSink::new();
        let run = supervise(
            &mut p,
            &CostModel::new(4),
            &spec,
            &VerifyMode::Off,
            &policy,
            &mut faults,
            &mut sink,
        );
        assert!(run.degraded());
        assert_eq!(run.failures[0].stage, "compound");
        assert!(matches!(
            run.failures[0].reason,
            FailureReason::Panic { injected: true, .. }
        ));
        assert_eq!(p, original, "rollback must restore the original");
        assert_eq!(sink.metrics.counter_value("resilience.degraded"), 1);
        assert!(sink
            .remarks
            .iter()
            .any(|r| r.pass == "resilience" && r.reason.starts_with("degraded:")));
    }

    #[test]
    fn forced_divergence_degrades_to_verify_clean_state() {
        silence_supervised_panics();
        let original = matmul();
        let mut p = original.clone();
        let mut faults = FaultPlan::of(vec![Fault::at("permute", FaultKind::ForceDivergence)]);
        let run = supervise_default(
            &mut p,
            &CostModel::new(4),
            &VerifyMode::On(VerifyOptions::default()),
            &mut faults,
            &mut NullObs,
        );
        assert!(run.degraded());
        // The rolled-back program must be semantically the original.
        assert_eq!(stage_divergence(&original, &p, &[6]), None);
        validate(&p).unwrap();
    }

    #[test]
    fn budget_exhaustion_fires_deterministically() {
        silence_supervised_panics();
        let original = matmul();
        let mut p = original.clone();
        let policy = SupervisePolicy {
            budget: Budget {
                total_steps: 0,
                per_pass_steps: 64,
            },
            ..Default::default()
        };
        let run = supervise(
            &mut p,
            &CostModel::new(4),
            &PipelineSpec {
                scalar_replace: false,
                ..Default::default()
            },
            &VerifyMode::Off,
            &policy,
            &mut FaultPlan::none(),
            &mut NullObs,
        );
        assert!(run.degraded());
        assert!(matches!(
            run.failures[0].reason,
            FailureReason::BudgetExhausted { .. }
        ));
        assert_eq!(p, original);
    }

    #[test]
    fn corrupt_ir_is_caught_by_the_validator() {
        silence_supervised_panics();
        let mut p = matmul();
        let mut faults = FaultPlan::of(vec![Fault::at("permute", FaultKind::CorruptIr)]);
        let run = supervise_default(
            &mut p,
            &CostModel::new(4),
            &VerifyMode::Off,
            &mut faults,
            &mut NullObs,
        );
        assert!(run.degraded());
        assert!(matches!(
            run.failures[0].reason,
            FailureReason::InvalidIr { .. }
        ));
        validate(&p).unwrap();
    }

    #[test]
    fn scalar_stage_failure_keeps_compound_result() {
        silence_supervised_panics();
        let mut expected = matmul();
        cmt_locality::compound::compound(&mut expected, &CostModel::new(4));

        let mut p = matmul();
        let mut faults = FaultPlan::of(vec![Fault::at("scalar-replace", FaultKind::Panic)]);
        let run = supervise_default(
            &mut p,
            &CostModel::new(4),
            &VerifyMode::Off,
            &mut faults,
            &mut NullObs,
        );
        assert!(run.degraded());
        assert_eq!(run.failures[0].stage, "scalar-replace");
        assert!(run.scalar.is_none());
        assert_eq!(p, expected, "compound stage's commit must survive");
    }

    #[test]
    fn corrupt_ir_helper_always_invalidates() {
        let mut p = matmul();
        assert!(validate(&p).is_ok());
        corrupt_ir(&mut p);
        assert!(validate(&p).is_err());
    }

    #[test]
    fn tile_error_is_a_skip_not_a_failure() {
        silence_supervised_panics();
        let mut p = matmul();
        // hoist_to > depth is a BadPosition TileError: graceful skip.
        let spec = PipelineSpec {
            scalar_replace: false,
            tile: Some((0, 9, 4, 9)),
            ..Default::default()
        };
        let run = supervise(
            &mut p,
            &CostModel::new(4),
            &spec,
            &VerifyMode::Off,
            &SupervisePolicy::default(),
            &mut FaultPlan::none(),
            &mut NullObs,
        );
        assert!(run.is_committed(), "{:?}", run.failures);
        assert!(!run.tiled);
    }

    #[test]
    fn expired_deadline_degrades_and_rolls_back() {
        silence_supervised_panics();
        let mut p = matmul();
        let original = p.clone();
        let policy = SupervisePolicy {
            deadline: Some(Deadline::after(std::time::Duration::ZERO)),
            ..Default::default()
        };
        let run = supervise(
            &mut p,
            &CostModel::new(4),
            &PipelineSpec::default(),
            &VerifyMode::Off,
            &policy,
            &mut FaultPlan::none(),
            &mut NullObs,
        );
        assert!(run.degraded());
        assert!(
            run.failures
                .iter()
                .any(|f| matches!(f.reason, FailureReason::DeadlineExceeded { .. })),
            "{:?}",
            run.failures
        );
        // Deadline expiry is a rollback like any other failure.
        assert_eq!(p, original);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        silence_supervised_panics();
        let mut expected = matmul();
        unsupervised(&mut expected);
        let mut p = matmul();
        let policy = SupervisePolicy {
            deadline: Some(Deadline::after(std::time::Duration::from_secs(3600))),
            ..Default::default()
        };
        let run = supervise(
            &mut p,
            &CostModel::new(4),
            &PipelineSpec::default(),
            &VerifyMode::Off,
            &policy,
            &mut FaultPlan::none(),
            &mut NullObs,
        );
        assert!(run.is_committed(), "{:?}", run.failures);
        assert_eq!(p, expected);
    }
}
