//! Deterministic fault injection for the supervised pipeline.
//!
//! A [`FaultPlan`] is a small, seed-derived script of faults to fire at
//! named pipeline sites. The supervisor consults the plan at every
//! transformation step and stage boundary; when a fault fires, the
//! supervisor behaves exactly as if the underlying pass had misbehaved
//! in the scripted way — panicked, produced structurally corrupt IR,
//! burned through its fuel budget, or produced a semantically diverging
//! rewrite. Because the plan is a pure function of its `u64` seed (built
//! on the in-repo [`SplitMix64`]), every chaos run is replayable
//! bit-for-bit on any platform.

use cmt_obs::SplitMix64;
use std::fmt;

/// The pipeline sites a fault can be scripted against. These are the
/// pass names the compound driver reports through its provenance hooks
/// (`permute`, `fuse-all`, `distribute`, `fuse`) plus the supervised
/// post-stages (`scalar-replace`, `tile`).
pub const FAULT_SITES: [&str; 6] = [
    "permute",
    "fuse-all",
    "distribute",
    "fuse",
    "scalar-replace",
    "tile",
];

/// What a scripted fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The pass panics mid-rewrite.
    Panic,
    /// The pass produces structurally invalid IR (caught by the
    /// pre/post structural validator).
    CorruptIr,
    /// The pass burns the remaining fuel budget in one step.
    ExhaustBudget,
    /// The pass produces a rewrite the differential verifier rejects.
    ForceDivergence,
}

impl FaultKind {
    /// All kinds, for seeded plan construction.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Panic,
        FaultKind::CorruptIr,
        FaultKind::ExhaustBudget,
        FaultKind::ForceDivergence,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Panic => "panic",
            FaultKind::CorruptIr => "corrupt-ir",
            FaultKind::ExhaustBudget => "exhaust-budget",
            FaultKind::ForceDivergence => "force-divergence",
        };
        f.write_str(s)
    }
}

/// One scripted fault: fire `kind` at the `skip`+1-th visit to `site`.
#[derive(Clone, Debug)]
pub struct Fault {
    /// Site name (one of [`FAULT_SITES`]).
    pub site: String,
    /// What happens when the fault fires.
    pub kind: FaultKind,
    /// Visits to `site` to let pass before firing.
    pub skip: u32,
    fired: bool,
}

impl Fault {
    /// A fault that fires on the first visit to `site`.
    pub fn at(site: impl Into<String>, kind: FaultKind) -> Fault {
        Fault {
            site: site.into(),
            kind,
            skip: 0,
            fired: false,
        }
    }

    /// Same, but lets `skip` visits pass first.
    pub fn after(site: impl Into<String>, kind: FaultKind, skip: u32) -> Fault {
        Fault {
            skip,
            ..Fault::at(site, kind)
        }
    }
}

/// A deterministic script of faults for one supervised run.
///
/// The plan is *consumed* as it fires: each [`Fault`] fires at most
/// once, so a fresh clone (or a re-seeded plan) is needed to replay the
/// same chaos scenario.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults ever fire.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan holding exactly these faults.
    pub fn of(faults: Vec<Fault>) -> FaultPlan {
        FaultPlan { faults }
    }

    /// Derives a 1–3 fault plan from `seed`. Same seed ⇒ same plan, on
    /// every platform.
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = rng.gen_range_usize(1, 3);
        let faults = (0..n)
            .map(|_| {
                let site = *rng.choose(&FAULT_SITES);
                let kind = *rng.choose(&FaultKind::ALL);
                let skip = rng.gen_range_usize(0, 2) as u32;
                Fault::after(site, kind, skip)
            })
            .collect();
        FaultPlan { faults }
    }

    /// Derives the per-item plan for item `item_seed` of a corpus run
    /// scripted by `plan_seed`. The derivation mixes both seeds through
    /// SplitMix64, so the plan for a given item is independent of worker
    /// scheduling and of every other item — the property that keeps a
    /// chaos sweep byte-identical for any `CMT_JOBS`.
    pub fn seeded_for(plan_seed: u64, item_seed: u64) -> FaultPlan {
        let mut mix = SplitMix64::seed_from_u64(plan_seed ^ item_seed.rotate_left(17));
        FaultPlan::seeded(mix.next_u64())
    }

    /// `true` when the plan holds no faults at all (fired or not).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// How many faults have fired so far.
    pub fn fired(&self) -> usize {
        self.faults.iter().filter(|f| f.fired).count()
    }

    /// The scripted faults (fired and pending).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Consults the plan at a visit to `site`: decrements the first
    /// matching pending fault's skip count, and fires it (at most once)
    /// when the count is spent.
    pub fn fire(&mut self, site: &str) -> Option<FaultKind> {
        let fault = self
            .faults
            .iter_mut()
            .find(|f| !f.fired && f.site == site)?;
        if fault.skip > 0 {
            fault.skip -= 1;
            return None;
        }
        fault.fired = true;
        Some(fault.kind)
    }

    /// One-line human-readable description, for logs and artifacts.
    pub fn describe(&self) -> String {
        if self.faults.is_empty() {
            return "no faults".to_string();
        }
        self.faults
            .iter()
            .map(|f| {
                format!(
                    "{}@{}+{}{}",
                    f.kind,
                    f.site,
                    f.skip,
                    if f.fired { "!" } else { "" }
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7).describe();
        let b = FaultPlan::seeded(7).describe();
        assert_eq!(a, b);
        let c = FaultPlan::seeded(8).describe();
        assert_ne!(a, c, "different seeds should (here) differ");
    }

    #[test]
    fn fire_respects_skip_and_fires_once() {
        let mut plan = FaultPlan::of(vec![Fault::after("permute", FaultKind::Panic, 2)]);
        assert_eq!(plan.fire("permute"), None);
        assert_eq!(plan.fire("fuse"), None, "site mismatch never fires");
        assert_eq!(plan.fire("permute"), None);
        assert_eq!(plan.fire("permute"), Some(FaultKind::Panic));
        assert_eq!(plan.fire("permute"), None, "fires at most once");
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn per_item_plans_do_not_depend_on_order() {
        let a1 = FaultPlan::seeded_for(99, 5).describe();
        let a2 = FaultPlan::seeded_for(99, 5).describe();
        assert_eq!(a1, a2);
    }

    #[test]
    fn sites_cover_every_supervised_pass() {
        for site in FAULT_SITES {
            assert!(!site.is_empty());
        }
        assert!(FAULT_SITES.contains(&"permute"));
        assert!(FAULT_SITES.contains(&"scalar-replace"));
        assert!(FAULT_SITES.contains(&"tile"));
    }
}
