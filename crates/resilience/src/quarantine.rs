//! Quarantine artifacts: self-contained reproducers for corpus items
//! whose supervised pipeline run degraded.
//!
//! When the chaos runner (or a hardened corpus sweep) sees an item fail
//! repeatedly, it writes one `quarantine_seed{seed}.txt` file under the
//! run's `quarantine/` directory holding everything needed to replay
//! the failure offline: the item seed, the fault plan that was active,
//! every stage failure, and the (minimized) input program as
//! re-parseable source. The minimization itself reuses the verify
//! crate's delta-debugging core ([`cmt_verify::minimize_with`]) with a
//! "supervised run still degrades" predicate supplied by the caller.

use crate::supervisor::StageFailure;
use cmt_ir::pretty::program_to_source;
use cmt_ir::program::Program;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Everything recorded about one quarantined corpus item.
#[derive(Clone, Debug)]
pub struct QuarantineRecord<'a> {
    /// Generator seed of the quarantined item.
    pub seed: u64,
    /// Human-readable description of the active fault plan
    /// ([`crate::FaultPlan::describe`]), or how to re-derive it.
    pub fault_plan: String,
    /// Stage failures from the supervised run.
    pub failures: &'a [StageFailure],
    /// The (minimized) input program that still degrades.
    pub program: &'a Program,
    /// Free-form context line, e.g. the replay command.
    pub note: String,
}

/// Writes the quarantine artifact to
/// `dir/quarantine_seed{seed}.txt`, creating `dir` first, and returns
/// the path. Content is fully deterministic for a deterministic record.
pub fn write_quarantine(dir: &Path, rec: &QuarantineRecord<'_>) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("quarantine_seed{}.txt", rec.seed));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "cmt-resilience quarantine reproducer")?;
    writeln!(f, "seed: {}", rec.seed)?;
    writeln!(f, "fault plan: {}", rec.fault_plan)?;
    if !rec.note.is_empty() {
        writeln!(f, "note: {}", rec.note)?;
    }
    writeln!(f)?;
    writeln!(f, "== stage failures ==")?;
    if rec.failures.is_empty() {
        writeln!(f, "(none recorded)")?;
    }
    for fail in rec.failures {
        writeln!(
            f,
            "{}: {} (rolled back to {})",
            fail.stage, fail.reason, fail.rollback
        )?;
    }
    writeln!(f)?;
    writeln!(f, "== input program (minimized) ==")?;
    writeln!(f, "{}", program_to_source(rec.program).trim_end())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::FailureReason;
    use cmt_verify::generate;

    #[test]
    fn artifact_is_written_and_self_describing() {
        let dir = std::env::temp_dir().join(format!("cmt_quarantine_test_{}", std::process::id()));
        let program = generate(42);
        let failures = vec![StageFailure {
            stage: "compound",
            reason: FailureReason::Panic {
                injected: true,
                message: "injected panic at permute".to_string(),
            },
            rollback: "original",
        }];
        let rec = QuarantineRecord {
            seed: 42,
            fault_plan: "panic@permute+0!".to_string(),
            failures: &failures,
            program: &program,
            note: "chaos_corpus --fault-seed 1".to_string(),
        };
        let path = write_quarantine(&dir, &rec).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("seed: 42"));
        assert!(text.contains("injected panic at permute"));
        assert!(text.contains("== input program (minimized) =="));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
