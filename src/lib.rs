//! Umbrella crate for the Carr–McKinley–Tseng data-locality reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! one import root. See the individual crates for the real APIs:
//! [`cmt_ir`], [`cmt_dependence`], [`cmt_locality`], [`cmt_cache`],
//! [`cmt_analytic`], [`cmt_interp`], [`cmt_suite`], [`cmt_obs`],
//! [`cmt_verify`], [`cmt_resilience`].
pub use cmt_analytic as analytic;
pub use cmt_bench as bench;
pub use cmt_cache as cache;
pub use cmt_dependence as dependence;
pub use cmt_interp as interp;
pub use cmt_ir as ir;
pub use cmt_locality as locality;
pub use cmt_obs as obs;
pub use cmt_profile as profile;
pub use cmt_resilience as resilience;
pub use cmt_suite as suite;
pub use cmt_verify as verify;
