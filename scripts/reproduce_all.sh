#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
# Usage: scripts/reproduce_all.sh [--quick]
#   --quick  uses reduced problem sizes (minutes instead of tens of minutes)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=${1:-}
if [ "$QUICK" = "--quick" ]; then
  FIG2_N=128; FIG3_N=128; FIG7_N=200; T1_N=32; T3_N=192; T4_N=96
else
  FIG2_N=544; FIG3_N=320; FIG7_N=600; T1_N=64; T3_N=576; T4_N=""
fi

mkdir -p results
# The figure/table binaries also drop machine-readable observability
# artifacts ({name}.remarks.jsonl + {name}.metrics.json) wherever
# CMT_OBS_DIR points.
export CMT_OBS_DIR=results
run() {
  local name=$1; shift
  echo ">>> $name"
  cargo run --release -q -p cmt-bench --bin "$name" "$@" | tee "results/$name.txt"
  echo
}

cargo build --release -q -p cmt-bench

run fig2_matmul "$FIG2_N"
run fig3_adi "$FIG3_N"
run fig7_cholesky "$FIG7_N"
run table1_erlebacher "$T1_N"
run table2_memory_order
run table3_performance "$T3_N"
if [ -n "$T4_N" ]; then run table4_hit_rates "$T4_N"; else run table4_hit_rates; fi
run table5_access_properties
run fig8_9_histograms
run ablation_table
run ext_multilevel_tiling 160

echo "All artifacts written to results/ (text + remarks JSONL + metrics JSON)."
