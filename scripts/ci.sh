#!/usr/bin/env bash
# Full offline CI gate: build, test, format check, and an observability
# smoke run. No network access required (the workspace has no external
# dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo ">>> cargo build --release --workspace"
cargo build --release --workspace

echo ">>> cargo test --release --workspace"
cargo test -q --release --workspace

echo ">>> cargo fmt --check"
cargo fmt --all --check

echo ">>> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo ">>> cargo test --doc"
cargo test -q --doc --workspace

echo ">>> verify-corpus smoke (32 seeds, step-level differential checks)"
# Replays the first 32 committed fuzz seeds through the verifying
# compound driver: every applied transformation step is executed
# before/after and compared bit-exactly, and permutations are replayed
# over the dependence vectors. Non-zero exit (plus a minimized
# reproducer under the temp dir) on any divergence.
VERIFY_DIR=$(mktemp -d)
cargo run --release -q -p cmt-verify --bin verify_corpus -- --seeds 32 --out "$VERIFY_DIR"
rm -rf "$VERIFY_DIR"

echo ">>> smoke-perf (cache_sim equivalence + determinism + regression gates)"
# Quick-mode bench over all four engines (legacy, flat scalar, flat
# batched, set-sharded): fails on an engine-equivalence or CMT_JOBS
# determinism mismatch, and on a geomean-speedup regression below 70%
# of the committed BENCH_cache_sim.json (CMT_BENCH_GATE_FRAC default —
# loose enough that quick-mode noise on a shared runner passes, tight
# enough that an engine pessimization fails). The JSON goes to a temp
# dir so the committed baseline stays untouched. CMT_SHARDS=1 pins the
# *timed* sharded arm to the direct single-shard path the committed
# baseline was measured on (quick-mode streams are far too short to
# amortize per-flush thread dispatch); stats equivalence inside the
# bench still covers multi-shard configurations.
PERF_DIR=$(mktemp -d)
CMT_JOBS=2 CMT_SHARDS=1 CMT_BENCH_QUICK=1 CMT_BENCH_JSON="$PERF_DIR/cache_sim.json" \
  CMT_BENCH_GATE="$PWD/BENCH_cache_sim.json" \
  cargo bench -q -p cmt-bench --bench cache_sim
test -s "$PERF_DIR/cache_sim.json" || { echo "missing bench baseline JSON" >&2; exit 1; }
rm -rf "$PERF_DIR"

echo ">>> observability smoke (fig2_matmul artifacts + trace + report + baseline diff)"
# A traced run of fig2_matmul must produce all four artifacts, the
# report must render from them, and the deterministic fields (counters,
# non-wall-clock histograms, remarks) must match the committed
# results/baseline/ exactly — a counter drift here is a behavior change
# and fails the build. Trace/report land in results/ci so the workflow
# can upload them as an inspectable artifact.
SMOKE_DIR=results/ci
rm -rf "$SMOKE_DIR"
CMT_OBS_DIR="$SMOKE_DIR" CMT_TRACE=1 \
  cargo run --release -q -p cmt-bench --bin fig2_matmul 64 > /dev/null
for f in fig2_matmul.remarks.jsonl fig2_matmul.metrics.json fig2_matmul.trace.json; do
  test -s "$SMOKE_DIR/$f" || { echo "missing artifact: $f" >&2; exit 1; }
done
grep -q '"pass":"permute"' "$SMOKE_DIR/fig2_matmul.remarks.jsonl"
grep -q '"counters"' "$SMOKE_DIR/fig2_matmul.metrics.json"
grep -q '"traceEvents"' "$SMOKE_DIR/fig2_matmul.trace.json"
cargo run --release -q -p cmt-bench --bin cmt-report -- fig2_matmul --dir "$SMOKE_DIR"
test -s "$SMOKE_DIR/fig2_matmul.report.md" || { echo "missing report" >&2; exit 1; }
cargo run --release -q -p cmt-bench --bin obs_diff -- results/baseline "$SMOKE_DIR" fig2_matmul

echo ">>> profiling smoke (sampled sweep, escalation, agreement + cost gates)"
# Sampled cache-simulation profiling over the first 32 verify-corpus
# seeds plus the paper kernels (n=64, every-16th-window policy), with
# top-5 escalation: full-simulation confirm per flagged nest, then one
# supervised optimization run per flagged program. --check re-profiles
# everything under full simulation and asserts the sampled top-5
# ranking matches ground truth exactly; --max-cost asserts the sampled
# pass simulated ≤ 10% of the corpus accesses. Both gates are
# deterministic (corpus, seeds, and sampling phases are fixed) — they
# fail on accuracy or sampled work volume, never on timing. The
# wall-clock in BENCH_profile.json is informational only; the JSON
# goes to the smoke dir so the committed BENCH_profile.json stays
# untouched. profile.json/report land in results/ci for upload.
CMT_JOBS=4 CMT_OBS_DIR="$SMOKE_DIR" cargo run --release -q -p cmt-bench --bin cmt-profile -- \
  --seeds 32 --check --min-agreement 1.0 --max-cost 0.10 \
  --bench-json "$SMOKE_DIR/BENCH_profile.json"
test -s "$SMOKE_DIR/profile_corpus.profile.json" || { echo "missing profile artifact" >&2; exit 1; }
grep -q '"profile.escalated":5' "$SMOKE_DIR/profile_corpus.metrics.json" \
  || { echo "expected 5 escalated nests" >&2; exit 1; }
cargo run --release -q -p cmt-bench --bin cmt-report -- profile_corpus --dir "$SMOKE_DIR"
test -s "$SMOKE_DIR/profile_corpus.report.md" || { echo "missing profile report" >&2; exit 1; }

echo ">>> smoke-analytic (analytic model vs simulator, committed BENCH gate)"
# First gate the committed full-corpus accuracy report (256 seeds +
# paper kernels): it must parse and satisfy the same thresholds the
# live run is held to. Then a live differential sweep over the first
# 32 verify-corpus seeds plus the paper kernels: predict every nest
# symbolically on all three geometries, simulate the same corpus in
# full, and fail on tie-aware top-5 hotspot-ranking agreement < 0.9 or
# mean per-nest relative miss error > 0.25 on any geometry. Both gates
# are deterministic. Artifacts land in results/ci for upload; the
# report's "Analytic vs simulated" section renders from them.
cargo run --release -q -p cmt-bench --bin cmt-analytic -- --check BENCH_analytic.json
CMT_JOBS=4 CMT_OBS_DIR="$SMOKE_DIR" cargo run --release -q -p cmt-bench --bin cmt-analytic -- \
  --seeds 32 --min-agreement 0.9 --max-error 0.25 --name analytic_corpus
test -s "$SMOKE_DIR/analytic_corpus.analytic.json" || { echo "missing analytic artifact" >&2; exit 1; }
cargo run --release -q -p cmt-bench --bin cmt-report -- analytic_corpus --dir "$SMOKE_DIR"
grep -q '## Analytic vs simulated' "$SMOKE_DIR/analytic_corpus.report.md" \
  || { echo "report missing analytic section" >&2; exit 1; }

echo ">>> smoke-explain (decision provenance, oracle disagreement + regret gates)"
# First gate the committed full-corpus provenance summary (256 seeds +
# paper kernels): it must parse and satisfy the same thresholds the
# live run is held to. Then a live sweep over the first 32 seeds plus
# the paper kernels: run the compound driver under both rank oracles
# with full decision capture, join the streams, simulate both
# transformed corpora, and fail on an oracle-disagreement rate > 0.20
# or LoopCost regret vs best-of-both > 0.05. Both gates are
# deterministic. The explain.json artifact lands in results/ci; the
# report's "Decisions" section renders from it.
cargo run --release -q -p cmt-bench --bin cmt-explain -- --check BENCH_explain.json
CMT_JOBS=4 CMT_OBS_DIR="$SMOKE_DIR" cargo run --release -q -p cmt-bench --bin cmt-explain -- \
  --seeds 32 --max-disagreement 0.20 --max-regret 0.05 --name explain_corpus
test -s "$SMOKE_DIR/explain_corpus.explain.json" || { echo "missing explain artifact" >&2; exit 1; }
cargo run --release -q -p cmt-bench --bin cmt-report -- explain_corpus --dir "$SMOKE_DIR"
grep -q '## Decisions' "$SMOKE_DIR/explain_corpus.report.md" \
  || { echo "report missing decisions section" >&2; exit 1; }

echo ">>> clippy unwrap gate (bench + resilience + serve failure paths stay panic-free)"
cargo clippy -q --no-deps -p cmt-bench -p cmt-resilience -p cmt-serve -- -D clippy::unwrap_used

echo ">>> chaos smoke (32 seeds, seeded fault plans, supervised rollback)"
# Sweeps the first 32 verify-corpus seeds through the supervised
# pipeline with per-item fault plans derived from a fixed seed: panics,
# IR corruption, budget exhaustion, and forced divergences must all be
# contained (clean exit), degraded items must land as minimized
# quarantine reproducers under results/ci so the workflow uploads them.
CMT_JOBS=4 cargo run --release -q -p cmt-bench --bin chaos_corpus -- \
  --seeds 32 --fault-seed 7 --out "$SMOKE_DIR"
test -s "$SMOKE_DIR/chaos_summary.txt" || { echo "missing chaos summary" >&2; exit 1; }
grep -q '^total: 32 swept' "$SMOKE_DIR/chaos_summary.txt"
# Fault seed 7 deterministically degrades at least one item; its
# reproducer must exist.
if grep -q ' degraded \[' "$SMOKE_DIR/chaos_summary.txt"; then
  ls "$SMOKE_DIR"/quarantine/quarantine_seed*.txt > /dev/null \
    || { echo "degraded items but no quarantine artifacts" >&2; exit 1; }
fi

echo ">>> smoke-serve (TCP service under fault-injected load, drain on SIGTERM)"
# Starts the memoizing compile server on a free port and drives the
# 32-seed corpus + paper kernels through it: 4 concurrent clients, two
# passes (the second replays the first through the memo cache), and a
# deterministic fault plan per request (seed 7). Gates: every request
# answered structurally (zero malformed replies / transport failures),
# second-pass hit rate ≥ 0.5, and the deterministic fields of the
# committed BENCH_server.json (reply-class counts, hit/shed rates) —
# wall-clock latency drift is informational only, so a slow runner
# cannot fail the gate. `--deadline-ms 0` disables the wall-clock
# budget for the same reason: fidelity counts must not depend on host
# speed. SIGTERM then exercises the drain path; the flushed server
# artifacts must exist. The binary runs directly (not under `cargo
# run`) so the signal reaches the server process.
SERVE_PORT_FILE=$(mktemp)
rm -f "$SERVE_PORT_FILE"
target/release/cmt-serve --port 0 --port-file "$SERVE_PORT_FILE" \
  --deadline-ms 0 --obs-dir "$SMOKE_DIR" --name serve_smoke > /dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do test -s "$SERVE_PORT_FILE" && break; sleep 0.1; done
test -s "$SERVE_PORT_FILE" || { echo "cmt-serve did not start" >&2; kill "$SERVE_PID" 2>/dev/null; exit 1; }
CMT_OBS_DIR="$SMOKE_DIR" CMT_BENCH_GATE="$PWD/BENCH_server.json" \
  cargo run --release -q -p cmt-bench --bin cmt-serve-bench -- \
  --connect "127.0.0.1:$(cat "$SERVE_PORT_FILE")" --seeds 32 --clients 4 --passes 2 \
  --fault-seed 7 --min-hit 0.5 --bench-json "$SMOKE_DIR/BENCH_server.json" \
  --artifact serve_smoke
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "cmt-serve exited non-zero" >&2; exit 1; }
rm -f "$SERVE_PORT_FILE"
for f in serve_smoke.metrics.json serve_smoke.remarks.jsonl serve_smoke.server.json; do
  test -s "$SMOKE_DIR/$f" || { echo "missing serve artifact: $f" >&2; exit 1; }
done
grep -q '"server.requests"' "$SMOKE_DIR/serve_smoke.metrics.json"
cargo run --release -q -p cmt-bench --bin cmt-report -- serve_smoke --dir "$SMOKE_DIR"
grep -q '## Service' "$SMOKE_DIR/serve_smoke.report.md" \
  || { echo "report missing service section" >&2; exit 1; }

echo "CI OK"
